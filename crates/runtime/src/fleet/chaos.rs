//! Deterministic chaos harness: seeded frame-level fault injection and
//! env-armable worker crash/stall points.
//!
//! Two halves, one seed:
//!
//! * [`FaultInjector`] wraps any [`FrameTransport`] and — when armed —
//!   drops, delays, garbles/truncates frames or kills the connection
//!   after N frames, with every decision drawn from a [`FleetRng`]
//!   seeded from `ChaosConfig::seed` and a per-connection counter. The
//!   same seed therefore yields the same fault schedule run-to-run.
//!   Every injected fault is **connection-fatal or stream-corrupting,
//!   never silent**: pipes to shard workers have no read timeout, so a
//!   silently swallowed frame would wedge the drain forever, whereas a
//!   failed `send`/`recv` surfaces as `Drained::Broken` and goes through
//!   the ordinary supervisor retry path.
//! * Worker-side crash/stall points ([`worker_chaos`]) arm via
//!   `REPRO_CHAOS_*` environment variables and fire inside the slot
//!   loop, exercising crash-mid-slot and heartbeat-stall recovery in
//!   real subprocesses. Decisions mix the process id into the seed so a
//!   *restarted* worker rolls fresh faults and the fleet makes forward
//!   progress; result bytes are unaffected by construction (slots are
//!   seeded pure functions).
//!
//! Environment contract (everything disarmed unless `REPRO_CHAOS_SEED`
//! is set):
//!
//! | Variable | Meaning |
//! |---|---|
//! | `REPRO_CHAOS_SEED` | master seed; arms the harness |
//! | `REPRO_CHAOS_DROP` | per-mille chance a frame send/recv fails |
//! | `REPRO_CHAOS_GARBLE` | per-mille chance a frame body is corrupted |
//! | `REPRO_CHAOS_DELAY` | per-mille chance a frame is delayed |
//! | `REPRO_CHAOS_DELAY_MS` | delay duration (default 20 ms) |
//! | `REPRO_CHAOS_KILL_AFTER` | kill each connection after N frames |
//! | `REPRO_CHAOS_WORKER_CRASH` | per-mille chance a worker exits(3) before delivering a slot |
//! | `REPRO_CHAOS_WORKER_STALL` | per-mille chance a worker goes silent mid-slot |
//! | `REPRO_CHAOS_WORKER_STALL_MS` | stall duration (default 1500 ms) |

use super::FleetRng;
use crate::remote::transport::FrameTransport;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Frame-fault schedule for a [`FaultInjector`]. Rates are per-mille
/// (integer, so the config stays `Eq` and embeddable in `Exec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Master seed; combined with a per-connection counter.
    pub seed: u64,
    /// Per-mille chance each `send`/`recv` fails (connection-fatal).
    pub drop_per_mille: u32,
    /// Per-mille chance a frame body is bit-flipped and truncated (the
    /// receiver sees a protocol violation and abandons the stream).
    pub garble_per_mille: u32,
    /// Per-mille chance a frame is delayed by [`delay_ms`](Self::delay_ms).
    pub delay_per_mille: u32,
    /// Injected delay duration in milliseconds.
    pub delay_ms: u64,
    /// Fail the connection outright after this many frames.
    pub kill_after: Option<u64>,
}

impl ChaosConfig {
    /// A config with the given seed and no faults armed (builders add
    /// them).
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 0,
            garble_per_mille: 0,
            delay_per_mille: 0,
            delay_ms: 20,
            kill_after: None,
        }
    }

    /// Set the per-mille frame-drop rate.
    pub fn with_drop(mut self, per_mille: u32) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Set the per-mille frame-garble rate.
    pub fn with_garble(mut self, per_mille: u32) -> Self {
        self.garble_per_mille = per_mille;
        self
    }

    /// Set the per-mille frame-delay rate and duration.
    pub fn with_delay(mut self, per_mille: u32, ms: u64) -> Self {
        self.delay_per_mille = per_mille;
        self.delay_ms = ms;
        self
    }

    /// Kill each connection after `n` frames.
    pub fn with_kill_after(mut self, n: u64) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// Read the chaos schedule from `REPRO_CHAOS_*` environment
    /// variables; `None` (fully disarmed) unless `REPRO_CHAOS_SEED` is
    /// set. Unparsable values disarm their fault rather than erroring —
    /// chaos is a test harness, not a production control surface.
    pub fn from_env() -> Option<Self> {
        let seed = env_u64("REPRO_CHAOS_SEED")?;
        let mut cfg = ChaosConfig::seeded(seed);
        cfg.drop_per_mille = env_u64("REPRO_CHAOS_DROP").unwrap_or(0).min(1000) as u32;
        cfg.garble_per_mille = env_u64("REPRO_CHAOS_GARBLE").unwrap_or(0).min(1000) as u32;
        cfg.delay_per_mille = env_u64("REPRO_CHAOS_DELAY").unwrap_or(0).min(1000) as u32;
        cfg.delay_ms = env_u64("REPRO_CHAOS_DELAY_MS").unwrap_or(cfg.delay_ms);
        cfg.kill_after = env_u64("REPRO_CHAOS_KILL_AFTER");
        Some(cfg)
    }

    /// Does this schedule actually inject anything?
    pub fn armed(&self) -> bool {
        self.drop_per_mille > 0
            || self.garble_per_mille > 0
            || self.delay_per_mille > 0
            || self.kill_after.is_some()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

fn chaos_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, format!("[chaos] {what}"))
}

/// Monotone per-process connection counter: each wrapped connection gets
/// its own fault stream, so concurrent shards/peers fault independently
/// but reproducibly.
static CONN_SEQ: AtomicU64 = AtomicU64::new(0);

struct InjectorState {
    cfg: ChaosConfig,
    rng: FleetRng,
    frames: u64,
}

/// A [`FrameTransport`] wrapper that injects deterministic faults.
/// Disarmed (`cfg == None` or a no-fault config), it is a pure
/// passthrough.
pub struct FaultInjector<T: FrameTransport> {
    inner: T,
    state: Option<InjectorState>,
}

impl<T: FrameTransport> FaultInjector<T> {
    /// Wrap `inner`; `cfg: None` (or a config with no faults armed)
    /// yields a passthrough.
    pub fn new(inner: T, cfg: Option<ChaosConfig>) -> Self {
        let state = cfg.filter(|c| c.armed()).map(|cfg| {
            let conn = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
            InjectorState {
                cfg,
                rng: FleetRng::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                frames: 0,
            }
        });
        FaultInjector { inner, state }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

/// Corrupt a frame body in place: flip bits at both ends and truncate
/// the tail, so the receiver's decoder sees a structurally broken frame
/// (bad tag / short buffer), never a silently-wrong result payload.
fn garble(body: &[u8]) -> Vec<u8> {
    let mut g = body.to_vec();
    if let Some(first) = g.first_mut() {
        *first ^= 0xA5;
    }
    if let Some(last) = g.last_mut() {
        *last ^= 0x5A;
    }
    let keep = (g.len() - g.len() / 3).max(1);
    g.truncate(keep);
    g
}

impl<T: FrameTransport> FrameTransport for FaultInjector<T> {
    fn send(&mut self, body: &[u8]) -> io::Result<()> {
        if let Some(st) = &mut self.state {
            st.frames += 1;
            if st.cfg.kill_after.is_some_and(|n| st.frames > n) {
                return Err(chaos_err("connection killed (frame budget exhausted)"));
            }
            if st.rng.chance(st.cfg.drop_per_mille) {
                return Err(chaos_err("outbound frame dropped"));
            }
            if st.rng.chance(st.cfg.delay_per_mille) {
                std::thread::sleep(Duration::from_millis(st.cfg.delay_ms));
            }
            if st.rng.chance(st.cfg.garble_per_mille) {
                return self.inner.send(&garble(body));
            }
        }
        self.inner.send(body)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        if let Some(st) = &mut self.state {
            st.frames += 1;
            if st.cfg.kill_after.is_some_and(|n| st.frames > n) {
                return Err(chaos_err("connection killed (frame budget exhausted)"));
            }
            // Faults roll before the read: a "dropped" inbound frame is
            // a dead connection (the caller discards the transport, so
            // the undrained stream is never observed).
            if st.rng.chance(st.cfg.drop_per_mille) {
                return Err(chaos_err("inbound frame dropped"));
            }
            if st.rng.chance(st.cfg.delay_per_mille) {
                std::thread::sleep(Duration::from_millis(st.cfg.delay_ms));
            }
            let got = self.inner.recv()?;
            if let Some(body) = got {
                if st.rng.chance(st.cfg.garble_per_mille) {
                    return Ok(Some(garble(&body)));
                }
                return Ok(Some(body));
            }
            return Ok(None);
        }
        self.inner.recv()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn peer(&self) -> String {
        match &self.state {
            Some(_) => format!("{} [chaos]", self.inner.peer()),
            None => self.inner.peer(),
        }
    }
}

// --- worker-side crash/stall points ---------------------------------------

/// Env-armed crash/stall schedule for the worker slot loop.
#[derive(Debug, Clone, Copy)]
pub struct WorkerChaos {
    seed: u64,
    crash_per_mille: u32,
    stall_per_mille: u32,
    stall_ms: u64,
}

impl WorkerChaos {
    /// Deterministic per-slot decision stream. The process id is mixed
    /// in so a restarted worker re-rolls — otherwise a slot whose roll
    /// says "crash" would crash every replacement worker and the fleet
    /// could never finish. Byte-identity of results is independent of
    /// these rolls (seeded pure slots).
    fn roll(&self, slot_seed: u64, salt: u64) -> FleetRng {
        let mut s = self.seed ^ salt;
        let a = super::splitmix64(&mut s);
        let mut s2 = a ^ (std::process::id() as u64) ^ slot_seed;
        FleetRng::seed_from_u64(super::splitmix64(&mut s2))
    }

    /// Should the worker exit(3) instead of delivering this slot?
    pub fn roll_crash(&self, slot_seed: u64) -> bool {
        self.roll(slot_seed, 0xC4A5).chance(self.crash_per_mille)
    }

    /// Should the worker go silent (heartbeats included) before
    /// delivering this slot? Returns the stall duration.
    pub fn roll_stall(&self, slot_seed: u64) -> Option<Duration> {
        if self.roll(slot_seed, 0x57A1).chance(self.stall_per_mille) {
            Some(Duration::from_millis(self.stall_ms))
        } else {
            None
        }
    }
}

/// The worker-side chaos schedule, armed from the environment once per
/// process; `None` when `REPRO_CHAOS_SEED` is unset or no worker fault
/// rate is configured.
pub fn worker_chaos() -> Option<&'static WorkerChaos> {
    static CHAOS: OnceLock<Option<WorkerChaos>> = OnceLock::new();
    CHAOS
        .get_or_init(|| {
            let seed = env_u64("REPRO_CHAOS_SEED")?;
            let crash = env_u64("REPRO_CHAOS_WORKER_CRASH").unwrap_or(0).min(1000) as u32;
            let stall = env_u64("REPRO_CHAOS_WORKER_STALL").unwrap_or(0).min(1000) as u32;
            if crash == 0 && stall == 0 {
                return None;
            }
            Some(WorkerChaos {
                seed,
                crash_per_mille: crash,
                stall_per_mille: stall,
                stall_ms: env_u64("REPRO_CHAOS_WORKER_STALL_MS").unwrap_or(1500),
            })
        })
        .as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::transport::MemTransport;
    use crate::wire;

    fn staged(frames: &[&[u8]]) -> MemTransport {
        let mut buf = Vec::new();
        for f in frames {
            wire::write_frame(&mut buf, f).unwrap();
        }
        MemTransport::new(buf)
    }

    #[test]
    fn disarmed_injector_is_a_passthrough() {
        let mut t = FaultInjector::new(staged(&[b"alpha", b"beta"]), None);
        t.send(b"req").unwrap();
        assert_eq!(t.recv().unwrap().unwrap(), b"alpha");
        assert_eq!(t.recv().unwrap().unwrap(), b"beta");
        assert!(t.recv().unwrap().is_none());
        let out = t.into_inner().output;
        let mut r = &out[..];
        assert_eq!(wire::read_frame(&mut r).unwrap().unwrap(), b"req");
        // A seeded config with zero rates is also disarmed.
        let z = FaultInjector::new(staged(&[]), Some(ChaosConfig::seeded(1)));
        assert!(z.state.is_none());
    }

    #[test]
    fn full_drop_rate_fails_immediately_and_deterministically() {
        let cfg = Some(ChaosConfig::seeded(9).with_drop(1000));
        let mut t = FaultInjector::new(staged(&[b"x"]), cfg);
        let e = t.send(b"req").unwrap_err();
        assert!(e.to_string().contains("[chaos]"), "{e}");
        let mut t = FaultInjector::new(staged(&[b"x"]), cfg);
        assert!(t.recv().is_err());
    }

    #[test]
    fn kill_after_budget_fails_the_connection() {
        let cfg = Some(ChaosConfig::seeded(3).with_kill_after(2));
        let mut t = FaultInjector::new(staged(&[b"a", b"b", b"c"]), cfg);
        assert_eq!(t.recv().unwrap().unwrap(), b"a");
        assert_eq!(t.recv().unwrap().unwrap(), b"b");
        let e = t.recv().unwrap_err();
        assert!(e.to_string().contains("frame budget"), "{e}");
    }

    #[test]
    fn garbled_frames_are_structurally_corrupt_not_silently_wrong() {
        let cfg = Some(ChaosConfig::seeded(5).with_garble(1000));
        let mut t = FaultInjector::new(staged(&[b"hello world"]), cfg);
        let got = t.recv().unwrap().unwrap();
        assert_ne!(got, b"hello world");
        assert!(got.len() < b"hello world".len(), "garble truncates");
    }

    #[test]
    fn same_seed_gives_same_fault_schedule() {
        // Two injector pairs created from a fresh connection-counter
        // parity: drive many frames and compare which indices fail.
        let cfg = ChaosConfig::seeded(77).with_drop(200);
        let schedule = |conn_seed: u64| -> Vec<bool> {
            let mut rng = FleetRng::seed_from_u64(cfg.seed ^ conn_seed);
            (0..100).map(|_| rng.chance(cfg.drop_per_mille)).collect()
        };
        assert_eq!(schedule(0), schedule(0));
        assert_ne!(schedule(0), schedule(1));
    }

    #[test]
    fn env_config_arms_only_with_seed() {
        // Serialised via a lock-free convention: these env vars are not
        // used elsewhere in the test binary.
        std::env::remove_var("REPRO_CHAOS_SEED");
        assert!(ChaosConfig::from_env().is_none());
        std::env::set_var("REPRO_CHAOS_SEED", "42");
        std::env::set_var("REPRO_CHAOS_DROP", "15");
        let cfg = ChaosConfig::from_env().unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.drop_per_mille, 15);
        assert!(cfg.armed());
        std::env::remove_var("REPRO_CHAOS_SEED");
        std::env::remove_var("REPRO_CHAOS_DROP");
    }
}
