//! Acceptance suite for the experiment service daemon: results served
//! through a real `repro serve` process must be **byte-identical** to
//! direct execution for every experiment driver, a repeated submission
//! must be answered from the content-addressed cache without
//! re-simulation (observable via the daemon's hit/executed counters),
//! concurrent identical submissions must coalesce onto one execution
//! (single-flight), the disk tier must survive a daemon restart, and
//! failures/cancellations/queue-bounds must propagate as typed errors —
//! never as wrong bytes.
//!
//! The daemon is a real process on an ephemeral loopback port, spawned
//! through `bench::remote::LocalService` (the same announce-line harness
//! as the worker cluster), speaking the versioned service protocol end to
//! end: submit frame → cache/queue/scheduler → backend execution →
//! result blob → client decode.

use bench::remote::LocalService;
use bench::shard::{FailJob, Mm1ReplicationJob};
use des::Workload;
use sim_runtime::service::cache::decode_blob;
use sim_runtime::{
    Disposition, Exec, ExecError, JobState, ServiceError, StoppingRule, TaskManifest,
};
use wsn::experiments::ablations::seed_ablation;
use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::experiments::validation::run_validation;
use wsn::CpuModelParams;

fn repro_bin() -> &'static str {
    env!("CARGO_BIN_EXE_repro")
}

/// A unique scratch directory for one test's disk cache.
fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "repro-service-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn mm1_manifest(horizon: f64, reps: u64, seed: u64) -> TaskManifest {
    let job = Mm1ReplicationJob {
        horizon,
        warmup: horizon * 0.1,
        mu_grid: vec![2.0, 5.0],
    };
    let segments = (0..job.mu_grid.len())
        .map(|point| sim_runtime::Segment {
            point,
            base_rep: 0,
            count: reps as usize,
        })
        .collect();
    TaskManifest::for_job(&job, segments, &|p, r| seed ^ ((p as u64) << 32) ^ r)
}

#[test]
fn service_spawns_announces_and_shuts_down() {
    let dir = unique_dir("spawn");
    let svc = LocalService::spawn(
        repro_bin(),
        &["--threads", "1", "--cache-dir", dir.to_str().unwrap()],
    )
    .expect("daemon spawns");
    assert!(svc.addr().starts_with("127.0.0.1:"), "{}", svc.addr());
    let exec = svc.exec(2);
    assert!(exec.is_service());
    assert!(exec.label().contains("service"));
    let stats = svc.client().stats().expect("stats verb");
    assert_eq!(stats.submitted, 0);
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every experiment driver, executed through the daemon, must produce
/// results equal to direct in-process execution — and a second identical
/// run must be answered from the cache (no further backend executions).
#[test]
fn every_driver_served_is_identical_to_direct_execution() {
    let dir = unique_dir("drivers");
    let svc = LocalService::spawn(
        repro_bin(),
        &["--threads", "2", "--cache-dir", dir.to_str().unwrap()],
    )
    .expect("daemon spawns");
    let served = svc.exec(2);

    // CPU comparison, fixed and adaptive.
    let grid = [0.001, 0.3, 1.0];
    let cpu = |exec: Exec, rule: Option<StoppingRule>| {
        run_cpu_comparison(
            0.3,
            &grid,
            &CpuComparisonConfig {
                horizon: 150.0,
                replications: 2,
                exec,
                rule,
                ..Default::default()
            },
        )
    };
    assert_eq!(
        cpu(Exec::in_process(2), None),
        cpu(served.clone(), None),
        "cpu fixed diverged"
    );
    let rule = StoppingRule::relative(0.08).with_budget(2, 8, 2);
    assert_eq!(
        cpu(Exec::in_process(1), Some(rule)),
        cpu(served.clone(), Some(rule)),
        "cpu adaptive diverged"
    );

    // Node sweep: closed (deterministic), open fixed, open adaptive.
    let node = |exec: Exec, workload: Workload, rule: Option<StoppingRule>, reps: u32| {
        run_node_sweep(
            workload,
            &[1e-9, 0.01, 1.0],
            &NodeSweepConfig {
                horizon: 100.0,
                replications: reps,
                exec,
                open_rule: rule,
                ..Default::default()
            },
        )
    };
    assert_eq!(
        node(
            Exec::in_process(2),
            Workload::Closed { interval: 1.0 },
            None,
            1
        ),
        node(served.clone(), Workload::Closed { interval: 1.0 }, None, 1),
        "closed node sweep diverged"
    );
    assert_eq!(
        node(Exec::in_process(1), Workload::Open { rate: 1.0 }, None, 3),
        node(served.clone(), Workload::Open { rate: 1.0 }, None, 3),
        "open node sweep diverged"
    );
    let open_rule = StoppingRule::relative(0.08).with_budget(3, 9, 3);
    assert_eq!(
        node(
            Exec::in_process(1),
            Workload::Open { rate: 1.0 },
            Some(open_rule),
            3
        ),
        node(
            served.clone(),
            Workload::Open { rate: 1.0 },
            Some(open_rule),
            3
        ),
        "adaptive node sweep diverged"
    );

    // Validation, fixed closed + adaptive open.
    let vgrid = [1e-9, 0.01, 1.0];
    assert_eq!(
        run_validation(
            Workload::Closed { interval: 1.0 },
            &vgrid,
            100.0,
            9,
            &Exec::in_process(2),
            None
        ),
        run_validation(
            Workload::Closed { interval: 1.0 },
            &vgrid,
            100.0,
            9,
            &served,
            None
        ),
        "closed validation diverged"
    );
    let vrule = StoppingRule::relative(0.1).with_budget(3, 9, 3);
    assert_eq!(
        run_validation(
            Workload::Open { rate: 1.0 },
            &vgrid,
            100.0,
            9,
            &Exec::in_process(1),
            Some(&vrule)
        ),
        run_validation(
            Workload::Open { rate: 1.0 },
            &vgrid,
            100.0,
            9,
            &served,
            Some(&vrule)
        ),
        "adaptive validation diverged"
    );

    // Seed ablation (prefix-folded replication grid).
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    assert_eq!(
        seed_ablation(&params, 150.0, &[3, 8], 0xCAFE, &Exec::in_process(2)),
        seed_ablation(&params, 150.0, &[3, 8], 0xCAFE, &served),
        "seed ablation diverged"
    );

    // Uncolored mm1 through the raw run_job path.
    let job = Mm1ReplicationJob {
        horizon: 120.0,
        warmup: 12.0,
        mu_grid: vec![2.0, 5.0, 10.0],
    };
    let reps = [3u64, 1, 4];
    let seed_of = |p: usize, r: u64| 77u64 ^ ((p as u64) << 32) ^ r;
    assert_eq!(
        Exec::in_process(1)
            .runner()
            .run_job(&job, &reps, &seed_of)
            .unwrap(),
        served.runner().run_job(&job, &reps, &seed_of).unwrap(),
        "mm1 run_job diverged"
    );

    // Every dispatch so far executed exactly once; repeat the whole CPU
    // fixed sweep and the budget must be paid entirely by the cache.
    // (Cache hits may already have happened above: e.g. an adaptive
    // sweep's first round re-issues the same manifest as a fixed run of
    // the same size — exactly the cross-caller dedup the service exists
    // for.) Repeating a whole driver now must be answered entirely from
    // the cache: identical results, zero further executions.
    let mut client = svc.client();
    let before = client.stats().unwrap();
    assert!(before.executed > 0);
    assert_eq!(
        cpu(Exec::in_process(2), None),
        cpu(served.clone(), None),
        "cached cpu fixed diverged"
    );
    let after = client.stats().unwrap();
    assert_eq!(
        after.executed, before.executed,
        "repeat run must not re-execute anything"
    );
    assert!(
        after.hits() > before.hits(),
        "repeat run must hit the cache"
    );

    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeat_submission_is_answered_from_cache_with_identical_bytes() {
    let svc = LocalService::spawn(repro_bin(), &["--threads", "1", "--no-disk-cache"])
        .expect("daemon spawns");
    let m = mm1_manifest(100.0, 2, 0xAB);
    let mut client = svc.client();
    let (job1, d1) = client.submit(&m, 1).unwrap();
    assert_eq!(d1, Disposition::Queued);
    let bytes1 = client.fetch_blob(job1).unwrap();
    let (job2, d2) = client.submit(&m, 1).unwrap();
    assert_eq!(d2, Disposition::HitMem, "repeat must be a memory hit");
    assert_ne!(job2, job1, "each submission gets its own job id");
    let bytes2 = client.fetch_blob(job2).unwrap();
    assert_eq!(bytes1, bytes2, "cached bytes must equal executed bytes");
    // The blob decodes to one result per slot.
    assert_eq!(decode_blob(&bytes1).unwrap().len(), m.total_slots());
    let s = client.stats().unwrap();
    assert_eq!((s.executed, s.hits_mem), (1, 1));
    svc.shutdown();
}

#[test]
fn concurrent_identical_submissions_coalesce_single_flight() {
    // One dispatcher + a slow blocker job in front: the identical pair
    // behind it cannot have completed when the second submission arrives,
    // so coalescing is deterministic, not a timing accident.
    let svc = LocalService::spawn(
        repro_bin(),
        &["--threads", "1", "--dispatchers", "1", "--no-disk-cache"],
    )
    .expect("daemon spawns");
    let blocker = mm1_manifest(150_000.0, 1, 0xB10C);
    let target = mm1_manifest(80.0, 2, 0x51F);

    let mut c1 = svc.client();
    let mut c2 = svc.client();
    let (_blocker_job, d) = c1.submit(&blocker, 1).unwrap();
    assert_eq!(d, Disposition::Queued);
    let (a, da) = c1.submit(&target, 1).unwrap();
    let (b, db) = c2.submit(&target, 1).unwrap();
    assert_eq!(da, Disposition::Queued);
    assert_eq!(db, Disposition::Coalesced, "identical in-flight submission");
    assert_eq!(a, b, "both callers share one job");
    // Both connections fetch the same bytes from the one execution.
    let h1 = std::thread::spawn(move || c1.fetch_blob(a).unwrap());
    let bytes2 = c2.fetch_blob(b).unwrap();
    let bytes1 = h1.join().unwrap();
    assert_eq!(bytes1, bytes2);
    let mut c3 = svc.client();
    let s = c3.stats().unwrap();
    assert_eq!(s.coalesced, 1);
    assert_eq!(
        s.executed, 2,
        "blocker + one target execution (the coalesced submission adds none)"
    );
    svc.shutdown();
}

#[test]
fn disk_cache_survives_a_daemon_restart() {
    let dir = unique_dir("restart");
    let m = mm1_manifest(90.0, 2, 0xD15C);
    let bytes_first;
    {
        let svc = LocalService::spawn(
            repro_bin(),
            &["--threads", "1", "--cache-dir", dir.to_str().unwrap()],
        )
        .expect("daemon spawns");
        let mut client = svc.client();
        let (job, _) = client.submit(&m, 1).unwrap();
        bytes_first = client.fetch_blob(job).unwrap();
        svc.shutdown();
    }
    // A brand-new daemon process over the same cache directory answers
    // from disk without executing anything.
    let svc = LocalService::spawn(
        repro_bin(),
        &["--threads", "1", "--cache-dir", dir.to_str().unwrap()],
    )
    .expect("daemon respawns");
    let mut client = svc.client();
    let (job, d) = client.submit(&m, 1).unwrap();
    assert_eq!(d, Disposition::HitDisk);
    assert_eq!(client.fetch_blob(job).unwrap(), bytes_first);
    let s = client.stats().unwrap();
    assert_eq!((s.executed, s.hits_disk), (0, 1));
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn task_errors_propagate_losslessly_and_are_never_cached() {
    let svc = LocalService::spawn(repro_bin(), &["--threads", "1", "--no-disk-cache"])
        .expect("daemon spawns");
    let job = FailJob {
        fail_point: 1,
        fail_rep: 1,
    };
    let segments = (0..3)
        .map(|point| sim_runtime::Segment {
            point,
            base_rep: 0,
            count: 3,
        })
        .collect();
    let m = TaskManifest::for_job(&job, segments, &|_, _| 0);
    let mut client = svc.client();
    let (id, _) = client.submit(&m, 1).unwrap();
    match client.fetch_blob(id) {
        Err(ServiceError::Exec(ExecError::Task {
            flat_index,
            point,
            replication,
            ..
        })) => assert_eq!((flat_index, point, replication), (4, 1, 1)),
        other => panic!("expected the boundary task error, got {other:?}"),
    }
    assert_eq!(client.status(id).unwrap(), JobState::Failed);
    // And through the backend seam the error is indistinguishable from a
    // local one.
    let err = svc
        .exec(1)
        .runner()
        .run_job(&job, &[3, 3, 3], &|_, _| 0)
        .unwrap_err();
    match err {
        ExecError::Task {
            flat_index,
            point,
            replication,
            ..
        } => assert_eq!((flat_index, point, replication), (4, 1, 1)),
        other => panic!("unexpected {other:?}"),
    }
    // Failures are not cached: resubmission queues fresh work.
    let (_id3, d) = client.submit(&m, 1).unwrap();
    assert_eq!(d, Disposition::Queued);
    svc.shutdown();
}

#[test]
fn status_cancel_and_queue_bound_verbs() {
    let svc = LocalService::spawn(
        repro_bin(),
        &[
            "--threads",
            "1",
            "--dispatchers",
            "1",
            "--queue-capacity",
            "1",
            "--no-disk-cache",
        ],
    )
    .expect("daemon spawns");
    let mut client = svc.client();
    // A long blocker occupies the single dispatcher...
    let blocker = mm1_manifest(150_000.0, 1, 0xB10C2);
    let (blocker_id, _) = client.submit(&blocker, 1).unwrap();
    // ...give the dispatcher a moment to claim it, freeing the queue slot.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match client.status(blocker_id).unwrap() {
            JobState::Running | JobState::Done => break,
            _ if std::time::Instant::now() > deadline => panic!("blocker never claimed"),
            _ => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    // One job fits the queue; a second distinct one is rejected loudly.
    let (queued_id, d) = client.submit(&mm1_manifest(60.0, 1, 1), 1).unwrap();
    assert_eq!(d, Disposition::Queued);
    assert_eq!(client.status(queued_id).unwrap(), JobState::Queued);
    match client.submit(&mm1_manifest(60.0, 1, 2), 1) {
        Err(ServiceError::Protocol(msg)) => assert!(msg.contains("queue full"), "{msg}"),
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    // Cancel the queued job; fetching it reports the cancellation.
    client.cancel(queued_id).unwrap();
    assert_eq!(client.status(queued_id).unwrap(), JobState::Cancelled);
    match client.fetch_blob(queued_id) {
        Err(ServiceError::Exec(e)) => assert!(e.to_string().contains("cancelled"), "{e}"),
        other => panic!("expected cancellation error, got {other:?}"),
    }
    // Cancelling the running blocker is refused with its state.
    match client.cancel(blocker_id) {
        Err(ServiceError::Protocol(msg)) => assert!(msg.contains("running"), "{msg}"),
        other => panic!("expected running-state refusal, got {other:?}"),
    }
    let s = client.stats().unwrap();
    assert_eq!((s.rejected, s.cancelled), (1, 1));
    svc.shutdown();
}
