//! P-invariants (place invariants) via exact rational elimination.
//!
//! A P-invariant is a non-negative integer weighting `y` of places with
//! `yᵀ·C = 0`, where `C` is the token-flow incidence matrix. Along any firing
//! sequence the weighted token sum `yᵀ·m` is conserved — e.g. in the paper's
//! CPU model (Fig. 3) the CPU-state places `Stand_By + P1 + Idle + Active`
//! always hold exactly one token, which is the formal statement of "the CPU
//! is in exactly one power state".
//!
//! Color filters and guards can only *restrict* firings, so invariants of
//! the underlying uncolored net remain valid for the colored one.

use crate::net::Net;

/// One place invariant: non-negative weights per place, not all zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PInvariant {
    /// Weight per place (dense, one entry per place).
    pub weights: Vec<i64>,
}

impl PInvariant {
    /// The conserved quantity `Σ weights[p] * tokens[p]` for a marking given
    /// as a count vector.
    pub fn value(&self, counts: &[usize]) -> i64 {
        self.weights
            .iter()
            .zip(counts.iter())
            .map(|(&w, &c)| w * c as i64)
            .sum()
    }

    /// Places with non-zero weight.
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The incidence matrix `C[p][t] = produced(p,t) - consumed(p,t)`.
pub fn incidence_matrix(net: &Net) -> Vec<Vec<i64>> {
    let np = net.num_places();
    let nt = net.num_transitions();
    let mut c = vec![vec![0i64; nt]; np];
    for (ti, tid) in net.transition_ids().enumerate() {
        let t = net.transition(tid);
        for arc in &t.inputs {
            c[arc.place.index()][ti] -= arc.multiplicity as i64;
        }
        for arc in &t.outputs {
            c[arc.place.index()][ti] += arc.multiplicity as i64;
        }
    }
    c
}

/// Compute a generating set of non-negative P-invariants using the classic
/// Farkas / Martinez-Silva algorithm (exact i128 arithmetic, with row
/// normalization by gcd to control growth).
///
/// Returns minimal-support invariants; exponential in the worst case but
/// instantaneous for nets of this paper's size.
pub fn p_invariants(net: &Net) -> Vec<PInvariant> {
    let c = incidence_matrix(net);
    let np = net.num_places();
    let nt = net.num_transitions();

    // Working rows: [ B | D ] where B starts as I (np x np) and D = C.
    // Invariants are rows whose D-part becomes all-zero.
    #[derive(Clone)]
    struct Row {
        b: Vec<i128>,
        d: Vec<i128>,
    }
    let mut rows: Vec<Row> = (0..np)
        .map(|p| Row {
            b: (0..np).map(|i| i128::from(i == p)).collect(),
            d: c[p].iter().map(|&x| x as i128).collect(),
        })
        .collect();

    for col in 0..nt {
        let mut next: Vec<Row> = Vec::new();
        // Keep rows already zero in this column.
        let (zeros, nonzeros): (Vec<Row>, Vec<Row>) = rows.into_iter().partition(|r| r.d[col] == 0);
        next.extend(zeros);
        // Combine every positive row with every negative row.
        let pos: Vec<&Row> = nonzeros.iter().filter(|r| r.d[col] > 0).collect();
        let neg: Vec<&Row> = nonzeros.iter().filter(|r| r.d[col] < 0).collect();
        for rp in &pos {
            for rn in &neg {
                let a = rp.d[col].unsigned_abs();
                let bq = rn.d[col].unsigned_abs();
                let g = gcd(a, bq);
                let (ma, mb) = ((bq / g) as i128, (a / g) as i128);
                let mut b: Vec<i128> =
                    rp.b.iter()
                        .zip(rn.b.iter())
                        .map(|(&x, &y)| ma * x + mb * y)
                        .collect();
                let mut d: Vec<i128> =
                    rp.d.iter()
                        .zip(rn.d.iter())
                        .map(|(&x, &y)| ma * x + mb * y)
                        .collect();
                normalize(&mut b, &mut d);
                next.push(Row { b, d });
            }
        }
        // Drop non-minimal rows (support-superset elimination keeps the
        // basis small and canonical).
        let mut minimal: Vec<Row> = Vec::new();
        'outer: for r in &next {
            let sup = support_of(&r.b);
            for m in &minimal {
                if is_subset(&support_of(&m.b), &sup) {
                    continue 'outer;
                }
            }
            minimal.retain(|m| !is_subset(&sup, &support_of(&m.b)));
            minimal.push(r.clone());
        }
        rows = minimal;
    }

    rows.into_iter()
        .filter(|r| r.d.iter().all(|&x| x == 0) && r.b.iter().any(|&x| x != 0))
        .map(|r| PInvariant {
            weights: r.b.iter().map(|&x| x as i64).collect(),
        })
        .collect()
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn normalize(b: &mut [i128], d: &mut [i128]) {
    let mut g: u128 = 0;
    for &x in b.iter().chain(d.iter()) {
        g = gcd(g, x.unsigned_abs());
    }
    if g > 1 {
        for x in b.iter_mut() {
            *x /= g as i128;
        }
        for x in d.iter_mut() {
            *x /= g as i128;
        }
    }
}

fn support_of(v: &[i128]) -> Vec<usize> {
    v.iter()
        .enumerate()
        .filter(|(_, &x)| x != 0)
        .map(|(i, _)| i)
        .collect()
}

fn is_subset(a: &[usize], b: &[usize]) -> bool {
    a.iter().all(|x| b.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::timing::Timing;

    #[test]
    fn two_place_cycle_has_conservation_invariant() {
        let mut b = NetBuilder::new("cycle");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        b.transition("pq", Timing::exponential(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("qp", Timing::exponential(1.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let invs = p_invariants(&net);
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].weights, vec![1, 1]);
        // Conserved value = 1 token.
        assert_eq!(invs[0].value(&net.initial_marking().count_vector()), 1);
    }

    #[test]
    fn open_net_has_no_invariant() {
        let mut b = NetBuilder::new("open");
        let q = b.place("q").build();
        b.transition("gen", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("sink", Timing::exponential(1.0))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        // q's count changes with gen; no non-negative weighting survives.
        assert!(p_invariants(&net).is_empty());
    }

    #[test]
    fn weighted_invariant_found() {
        // t consumes 2 from p, produces 1 in q; u consumes 1 from q,
        // produces 2 in p. Invariant: 1*p + 2*q.
        let mut b = NetBuilder::new("weighted");
        let p = b.place("p").tokens(2).build();
        let q = b.place("q").build();
        b.transition("t", Timing::exponential(1.0))
            .input(p, 2)
            .output(q, 1)
            .build();
        b.transition("u", Timing::exponential(1.0))
            .input(q, 1)
            .output(p, 2)
            .build();
        let net = b.build().unwrap();
        let invs = p_invariants(&net);
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].weights, vec![1, 2]);
    }

    #[test]
    fn disjoint_cycles_give_two_invariants() {
        let mut b = NetBuilder::new("two_cycles");
        let a1 = b.place("a1").tokens(1).build();
        let a2 = b.place("a2").build();
        let b1 = b.place("b1").tokens(1).build();
        let b2 = b.place("b2").build();
        b.transition("a12", Timing::exponential(1.0))
            .input(a1, 1)
            .output(a2, 1)
            .build();
        b.transition("a21", Timing::exponential(1.0))
            .input(a2, 1)
            .output(a1, 1)
            .build();
        b.transition("b12", Timing::exponential(1.0))
            .input(b1, 1)
            .output(b2, 1)
            .build();
        b.transition("b21", Timing::exponential(1.0))
            .input(b2, 1)
            .output(b1, 1)
            .build();
        let net = b.build().unwrap();
        let mut invs = p_invariants(&net);
        invs.sort_by_key(|i| i.support());
        assert_eq!(invs.len(), 2);
        assert_eq!(invs[0].support(), vec![0, 1]);
        assert_eq!(invs[1].support(), vec![2, 3]);
    }

    #[test]
    fn incidence_matrix_shape_and_values() {
        let mut b = NetBuilder::new("inc");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        b.transition("t", Timing::exponential(1.0))
            .input(p, 2)
            .output(q, 3)
            .build();
        let net = b.build().unwrap();
        let c = incidence_matrix(&net);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], vec![-2]);
        assert_eq!(c[1], vec![3]);
    }
}
