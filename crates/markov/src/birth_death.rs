//! Birth–death chains: closed-form steady state.
//!
//! The paper's Fig. 2 depicts the CPU job process as a birth–death chain
//! (states `p01, p02, …` under arrival rate λ and service rate μ) with the
//! standby/power-up states grafted on via supplementary variables. This
//! module provides the plain birth–death machinery for the queueing part.

/// Steady-state distribution of a finite birth–death chain with `n+1`
/// states, birth rates `lambda[i]` (`i -> i+1`, length `n`) and death rates
/// `mu[i]` (`i+1 -> i`, length `n`).
///
/// `pi_k ∝ Π_{i<k} lambda[i]/mu[i]`.
pub fn steady_state(lambda: &[f64], mu: &[f64]) -> Vec<f64> {
    assert_eq!(lambda.len(), mu.len(), "need equal-length rate vectors");
    assert!(mu.iter().all(|&m| m > 0.0), "death rates must be positive");
    assert!(
        lambda.iter().all(|&l| l >= 0.0),
        "birth rates must be non-negative"
    );
    let n = lambda.len();
    let mut pi = Vec::with_capacity(n + 1);
    pi.push(1.0f64);
    for i in 0..n {
        let prev = *pi.last().unwrap();
        pi.push(prev * lambda[i] / mu[i]);
    }
    let total: f64 = pi.iter().sum();
    for p in pi.iter_mut() {
        *p /= total;
    }
    pi
}

/// Mean state index under the steady-state distribution (e.g. mean queue
/// length for an M/M/1/K chain).
pub fn mean_state(pi: &[f64]) -> f64 {
    pi.iter().enumerate().map(|(i, &p)| i as f64 * p).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1k_matches_geometric() {
        // lambda=1, mu=2, K=6 states 0..=6.
        let k = 6;
        let lambda = vec![1.0; k];
        let mu = vec![2.0; k];
        let pi = steady_state(&lambda, &mu);
        let rho: f64 = 0.5;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            assert!((p - rho.powi(i as i32) / norm).abs() < 1e-12);
        }
    }

    #[test]
    fn single_state_chain() {
        let pi = steady_state(&[], &[]);
        assert_eq!(pi, vec![1.0]);
    }

    #[test]
    fn state_dependent_rates() {
        // M/M/2-like: service rate doubles with 2 in system.
        let pi = steady_state(&[1.0, 1.0], &[1.0, 2.0]);
        // pi ∝ [1, 1, 0.5]; total 2.5.
        assert!((pi[0] - 0.4).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
        assert!((pi[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_state_weighted() {
        assert!((mean_state(&[0.5, 0.25, 0.25]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "death rates must be positive")]
    fn zero_death_rate_rejected() {
        let _ = steady_state(&[1.0], &[0.0]);
    }
}
