//! Parameter-sweep grids and the sweep-level view of the shared executor.
//!
//! Every figure in the paper is a sweep over the Power-Down Threshold. A
//! single simulation trajectory is inherently sequential, so the right
//! parallel axes are across sweep points *and* replications — both levels
//! are one flattened task stream on the [`sim_runtime`] executor (see
//! `sim_runtime::Runner`), whose backend seam (`sim_runtime::exec`) runs
//! the same stream in-process or across `repro --worker` subprocesses.
//! This module keeps the published PDT grids and a thin order-preserving
//! `parallel_map` compatibility wrapper for single-level closure sweeps
//! (closures are address-space-bound, so `parallel_map` is always
//! in-process; the portable experiment drivers in [`crate::experiments`]
//! shard).

pub use sim_runtime::default_threads;

/// The PDT grid of the paper's Figs. 14/15 x-axis (seconds): clustered
/// sample points around the 0.00177 s intra-cycle gap and the 1.00177 s
/// inter-cycle gap, spanning 1 ns to 100 s.
pub const FIG14_15_PDT_GRID: [f64; 24] = [
    1.0e-9, 9.0e-7, 1.0e-6, 1.1e-6, 1.9e-6, 9.0e-6, 0.0017, 0.00176, 0.00177, 0.00178, 0.0019,
    0.005, 0.01, 0.05, 0.1, 0.5, 0.9, 1.0, 1.00177, 1.002, 1.1, 5.0, 10.0, 100.0,
];

/// The PDT grid of Figs. 4–9 (0.001 then 0.05..=1.0 in 0.05 steps).
pub fn fig4_9_pdt_grid() -> Vec<f64> {
    let mut grid = vec![0.001];
    for i in 1..=20 {
        grid.push(i as f64 * 0.05);
    }
    grid
}

/// Map `f` over `inputs` using `threads` worker threads; the output
/// preserves input order. `f` must be `Sync` (called concurrently).
///
/// Compatibility shim over [`sim_runtime::Runner::map`] — a one-replication-
/// per-point grid on the shared work-stealing executor. Sweeps that also
/// average replications per point should schedule the whole
/// `(point × replication)` grid instead (`Runner::grid`), as the experiment
/// drivers in [`crate::experiments`] do.
pub fn parallel_map<T, R, F>(inputs: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    sim_runtime::Runner::new(threads).map(inputs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_constants_sane() {
        assert_eq!(FIG14_15_PDT_GRID.len(), 24);
        // Strictly increasing.
        for w in FIG14_15_PDT_GRID.windows(2) {
            assert!(w[0] < w[1], "grid must be increasing: {w:?}");
        }
        // Contains the two knees.
        assert!(FIG14_15_PDT_GRID.contains(&0.00177));
        assert!(FIG14_15_PDT_GRID.contains(&1.00177));

        let g = fig4_9_pdt_grid();
        assert_eq!(g.len(), 21);
        assert_eq!(g[0], 0.001);
        assert!((g[20] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, 8, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_map_single_thread_fallback() {
        let inputs = [1, 2, 3];
        let out = parallel_map(&inputs, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_empty_input() {
        let inputs: [u32; 0] = [];
        let out: Vec<u32> = parallel_map(&inputs, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_uneven_work() {
        // Work items with wildly different costs still land in order.
        let inputs: Vec<u64> = (0..32).collect();
        let out = parallel_map(&inputs, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, inputs);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
