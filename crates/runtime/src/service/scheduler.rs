//! The scheduler half of the service: dispatcher threads that claim
//! queued jobs and execute them on the configured
//! [`ExecBackend`](crate::exec::ExecBackend).
//!
//! Dispatchers are plain threads (no async runtime in the offline vendor
//! tree): each one blocks on the service's work condvar, claims the oldest
//! queued job, executes it **outside** the service lock — a dispatch may
//! run for minutes across shards or remote peers — and publishes the
//! terminal state. Parallelism *within* a job comes from the backend
//! (threads, worker subprocesses, TCP peers); parallelism *across* jobs
//! comes from running several dispatchers.

use super::cache::{encode_blob, CacheKey};
use super::protocol::JobId;
use super::Service;
use crate::exec::TaskManifest;
use std::sync::Arc;

/// One claimed unit of work.
pub(crate) struct Claimed {
    pub(crate) job: JobId,
    pub(crate) manifest: TaskManifest,
    pub(crate) key: CacheKey,
}

/// The dispatcher thread body: claim → execute → publish, until the
/// service stops.
pub(super) fn dispatcher_loop(service: &Service) {
    while let Some(claimed) = service.next_claim() {
        execute(service, claimed);
    }
}

/// Execute one claimed job on the service's backend and publish the
/// outcome (result blob into both cache tiers, or the executor error).
pub(super) fn execute(service: &Service, claimed: Claimed) {
    let Claimed { job, manifest, key } = claimed;
    let outcome = service
        .registry()
        .decode(&manifest.kind, &manifest.payload)
        .map_err(crate::exec::ExecError::from)
        .and_then(|decoded| {
            service
                .backend()
                .run_segments(decoded.as_ref(), &manifest, None)
        });
    match outcome {
        Ok(slots) => {
            let blob = Arc::new(encode_blob(&slots));
            service.publish_done(job, key, blob);
        }
        Err(e) => service.publish_failed(job, e),
    }
}
