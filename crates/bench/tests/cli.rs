//! CLI contract tests for the `repro` binary: conflicting executor flags
//! are an explicit error, environment-derived conflicts resolve by the
//! documented precedence with a warning, and the service verbs validate
//! their arguments before touching the network.

use std::process::Command;

fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    // Isolate from any ambient executor / fault-policy / chaos
    // configuration.
    cmd.env_remove("REPRO_SHARDS")
        .env_remove("REPRO_HOSTS")
        .env_remove("REPRO_SERVICE")
        .env_remove("REPRO_THREADS")
        .env_remove("REPRO_RETRY")
        .env_remove("REPRO_IO_TIMEOUT")
        .env_remove("REPRO_POOL")
        .env_remove("REPRO_BATCH")
        .env_remove("REPRO_ENGINE")
        .env_remove("REPRO_CHAOS_SEED");
    cmd
}

fn run(cmd: &mut Command) -> (i32, String, String) {
    let out = cmd.output().expect("repro runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn conflicting_executor_flags_are_an_explicit_error() {
    for flags in [
        vec!["--shards", "2", "--hosts", "127.0.0.1:1"],
        vec!["--shards", "2", "--service", "127.0.0.1:1"],
        vec!["--hosts", "127.0.0.1:1", "--service", "127.0.0.1:2"],
    ] {
        let (code, _out, err) = run(repro().args(&flags).arg("params"));
        assert_eq!(code, 2, "flags {flags:?} must be rejected: {err}");
        assert!(
            err.contains("conflicting executor flags"),
            "flags {flags:?}: {err}"
        );
        assert!(
            err.contains("service > hosts > shards"),
            "the precedence must be documented in the error: {err}"
        );
    }
}

#[test]
fn explicit_inprocess_shards_zero_conflicts_with_nothing() {
    // `--shards 0` explicitly selects in-process execution; pairing it
    // with `--hosts` is not a conflict (`params` makes no dispatch, so
    // the unreachable host is never contacted).
    let (code, _out, err) = run(repro()
        .args(["--shards", "0", "--hosts", "127.0.0.1:1"])
        .arg("params"));
    assert_eq!(code, 0, "{err}");
}

#[test]
fn env_derived_conflict_warns_and_applies_precedence() {
    // REPRO_SHARDS from the environment + --hosts on the CLI: hosts win,
    // loudly. `params` performs no grid dispatch, so nothing connects.
    let (code, _out, err) = run(repro()
        .env("REPRO_SHARDS", "2")
        .args(["--hosts", "127.0.0.1:9"])
        .arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(
        err.contains("warning: multiple executors configured"),
        "{err}"
    );
    assert!(err.contains("precedence service > hosts > shards"), "{err}");
    assert!(
        err.contains("executor: remote(hosts=1"),
        "hosts must win over env shards: {err}"
    );

    // Same thing with a service address from the environment: it beats
    // both.
    let (code, _out, err) = run(repro()
        .env("REPRO_SHARDS", "2")
        .env("REPRO_SERVICE", "127.0.0.1:9")
        .arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(err.contains("executor: service("), "{err}");
}

#[test]
fn no_conflict_single_selector_stays_quiet() {
    let (code, _out, err) = run(repro().args(["--shards", "2"]).arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(!err.contains("warning: multiple executors"), "{err}");
    assert!(err.contains("executor: sharded(shards=2"), "{err}");
}

#[test]
fn service_verbs_validate_arguments_before_connecting() {
    // Missing --service.
    let (code, _out, err) = run(repro().args(["status", "1"]));
    assert_eq!(code, 2);
    assert!(err.contains("--service"), "{err}");
    // Missing job id.
    let (code, _out, err) = run(repro().args(["fetch", "--service", "127.0.0.1:1"]));
    assert_eq!(code, 2);
    assert!(err.contains("job id"), "{err}");
    // Unknown submit spec.
    let (code, _out, err) = run(repro().args(["submit", "--service", "127.0.0.1:1", "mm2"]));
    assert_eq!(code, 2);
    assert!(err.contains("unknown job spec"), "{err}");
    // serve without --listen.
    let (code, _out, err) = run(repro().arg("serve"));
    assert_eq!(code, 2);
    assert!(err.contains("--listen"), "{err}");
    // serve with conflicting backend flags.
    let (code, _out, err) = run(repro().args([
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--hosts",
        "127.0.0.1:1",
    ]));
    assert_eq!(code, 2);
    assert!(err.contains("conflicting executor flags"), "{err}");
}

#[test]
fn serve_mode_ignores_the_client_service_env_var() {
    // Regression: REPRO_SERVICE addresses clients at a daemon; a daemon
    // being started in the same shell must keep its explicit --shards
    // backend rather than having it silently discarded by the env var.
    use std::io::{BufRead, BufReader};
    let mut child = repro()
        .env("REPRO_SERVICE", "127.0.0.1:9")
        .args(["serve", "--listen", "127.0.0.1:0", "--shards", "2"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    // The backend line is announced on stderr before the daemon binds.
    let mut line = String::new();
    BufReader::new(child.stderr.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let _ = child.kill();
    let _ = child.wait();
    assert!(
        line.contains("backend: sharded(shards=2"),
        "daemon must keep its explicit backend: {line}"
    );
    assert!(!line.contains("service"), "{line}");
}

#[test]
fn fault_flags_reject_garbage_values() {
    for (flags, needle) in [
        (vec!["--retry", "many"], "--retry needs"),
        (vec!["--retry"], "--retry needs"),
        (vec!["--io-timeout", "-1"], "--io-timeout needs"),
        (vec!["--io-timeout", "soon"], "--io-timeout needs"),
        (vec!["--pool", "maybe"], "--pool needs"),
        (vec!["--batch", "0"], "--batch needs"),
        (vec!["--batch", "wide"], "--batch needs"),
        (vec!["--batch"], "--batch needs"),
    ] {
        let (code, _out, err) = run(repro().args(&flags).arg("params"));
        assert_eq!(code, 2, "flags {flags:?} must be rejected: {err}");
        assert!(err.contains(needle), "flags {flags:?}: {err}");
    }
    // The same validation applies to serve mode.
    let (code, _out, err) =
        run(repro().args(["serve", "--listen", "127.0.0.1:0", "--cache-budget", "lots"]));
    assert_eq!(code, 2);
    assert!(err.contains("--cache-budget needs"), "{err}");
}

#[test]
fn engine_flag_accepts_both_engines_and_rejects_garbage() {
    // Both engine names are accepted in run mode.
    for engine in ["interp", "lowered"] {
        let (code, _out, err) = run(repro().args(["--engine", engine]).arg("params"));
        assert_eq!(code, 0, "--engine {engine}: {err}");
    }
    // Anything else (or a missing value) is a usage error.
    for flags in [vec!["--engine", "bogus"], vec!["--engine"]] {
        let (code, _out, err) = run(repro().args(&flags).arg("params"));
        assert_eq!(code, 2, "flags {flags:?} must be rejected: {err}");
        assert!(err.contains("--engine needs interp or lowered"), "{err}");
    }
    // Serve mode validates the same way.
    let (code, _out, err) =
        run(repro().args(["serve", "--listen", "127.0.0.1:0", "--engine", "fast"]));
    assert_eq!(code, 2);
    assert!(err.contains("--engine needs interp or lowered"), "{err}");
}

#[test]
fn fault_env_vars_apply_and_flags_override_with_a_warning() {
    // Environment alone applies silently.
    let (code, _out, err) = run(repro().env("REPRO_RETRY", "5").arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(!err.contains("warning: REPRO_RETRY"), "{err}");
    // A differing explicit flag wins, loudly.
    let (code, _out, err) = run(repro()
        .env("REPRO_RETRY", "5")
        .args(["--retry", "0"])
        .arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(
        err.contains("REPRO_RETRY=5 overridden by explicit flag (0)"),
        "{err}"
    );
    // Agreeing sources stay quiet.
    let (code, _out, err) = run(repro()
        .env("REPRO_IO_TIMEOUT", "30")
        .args(["--io-timeout", "30"])
        .arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(!err.contains("overridden"), "{err}");
}

#[test]
fn batch_knob_resolves_flag_over_env_and_shows_in_the_label() {
    // Environment alone applies silently and shows up in the executor
    // label.
    let (code, _out, err) = run(repro().env("REPRO_BATCH", "8").arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(!err.contains("warning: REPRO_BATCH"), "{err}");
    assert!(err.contains("batch=8"), "{err}");
    // A differing explicit flag wins, loudly.
    let (code, _out, err) = run(repro()
        .env("REPRO_BATCH", "8")
        .args(["--batch", "4"])
        .arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(
        err.contains("REPRO_BATCH=8 overridden by explicit flag (4)"),
        "{err}"
    );
    assert!(err.contains("batch=4"), "{err}");
    // The default (scalar) keeps the label untouched.
    let (code, _out, err) = run(repro().arg("params"));
    assert_eq!(code, 0, "{err}");
    assert!(!err.contains("batch="), "{err}");
    // Serve mode accepts the same knob and announces it.
    use std::io::{BufRead, BufReader};
    let mut child = repro()
        .args(["serve", "--listen", "127.0.0.1:0", "--batch", "6"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    BufReader::new(child.stderr.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let _ = child.kill();
    let _ = child.wait();
    assert!(line.contains("batch=6"), "{line}");
}

#[test]
fn cache_gc_deletes_corrupt_entries_and_reports() {
    let dir = std::env::temp_dir().join(format!("repro-cli-cache-gc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("deadbeef.res"), b"not a cache entry").unwrap();
    let (code, out, err) = run(repro().args([
        "cache",
        "gc",
        "--cache-dir",
        dir.to_str().unwrap(),
        "--budget",
        "1m",
    ]));
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("deleted 1 corrupt"), "{out}");
    assert!(
        !dir.join("deadbeef.res").exists(),
        "corrupt entry must be deleted"
    );
    // A verb other than gc (or none) is a usage error.
    let (code, _out, err) = run(repro().arg("cache"));
    assert_eq!(code, 2);
    assert!(err.contains("usage: repro cache gc"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreachable_service_fails_fast_with_a_clear_error() {
    // Nothing listens on port 1: the client verb must fail with exit 1
    // and a reachability message, not hang.
    let (code, _out, err) = run(repro().args(["stats", "--service", "127.0.0.1:1"]));
    assert_eq!(code, 1);
    assert!(err.contains("cannot reach service"), "{err}");
}
