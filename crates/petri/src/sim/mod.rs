//! Discrete-event simulation of EDSPN/SCPN nets.
//!
//! The public entry point is [`Simulator`]: configure it once (net, horizon,
//! rewards), then call [`Simulator::run`] with as many seeds as you need —
//! each run is an independent, reproducible trajectory. `Simulator` is
//! `Sync`, so [`crate::replicate`] fans runs out across threads.
//!
//! # Semantics
//!
//! * Enabled **immediate** transitions fire before simulated time advances
//!   (vanishing markings), highest priority first; equal-priority conflicts
//!   are resolved probabilistically by weight.
//! * **Timed** transitions sample a firing delay when they become enabled;
//!   the [`crate::timing::MemoryPolicy`] governs what happens to the clock
//!   when a transition is disabled before firing.
//! * Two timed transitions scheduled for the same instant fire in
//!   **transition-definition order** (lowest [`crate::ids::TransitionId`]
//!   first). This is load-bearing for threshold models: the paper's optimal
//!   `Power_Down_Threshold` sits *exactly* on a job-arrival boundary, and
//!   definition order decides whether the CPU sleeps at the boundary.
//! * Rewards are integrated exactly between events (token counts and
//!   predicates are piecewise-constant in time).

mod batch;
mod engine;
mod lower;
mod lowered;
pub mod profile;
mod reference;
mod rewards;
mod trace;

pub use batch::BatchSimulator;
pub use engine::{EngineKind, SimConfig, SimOutput, Simulator};
pub use rewards::{RewardId, RewardSpec, RewardSpecError};
pub use trace::TraceEvent;
