//! The supervised execution fleet: warm worker/peer pools, a unified
//! fault policy, and a deterministic chaos harness.
//!
//! PRs 3–5 grew three distribution tiers (shard subprocesses, remote TCP
//! peers, the service daemon) that all treated their fleets as
//! disposable: every dispatch spawned/connected from scratch, retry and
//! timeout knobs were hard-coded per backend, and a fleet that lost its
//! last member failed the job outright. This module centralises the
//! missing machinery:
//!
//! * [`pool`] — a process-global [`WorkerPool`](pool::WorkerPool) that
//!   keeps `repro --worker` subprocesses and remote TCP connections warm
//!   across dispatches (checkout/return semantics, health probes on
//!   checkout, max-dispatch recycling), so a flood of small service jobs
//!   reuses one fleet instead of respawning it per job.
//! * [`FaultPolicy`] + [`supervisor`] — one configurable retry budget /
//!   IO timeout / exponential-backoff-with-jitter policy shared by every
//!   tier, plus a quarantine table for repeat offenders and the opt-in
//!   shrink-to-zero fallback that degrades to in-process execution
//!   (loudly, and counted in [`FleetStats`]) instead of failing.
//! * [`chaos`] — a seeded [`FaultInjector`](chaos::FaultInjector) that
//!   wraps any [`FrameTransport`](crate::remote::transport::FrameTransport)
//!   and drops/delays/garbles frames deterministically, plus env-armable
//!   crash/stall points in the worker slot loop. The chaos test suite
//!   uses it to prove byte-identical gathers under every failure mode.
//!
//! Determinism note: replication slots are seeded pure functions, so
//! *which* worker runs a slot (or how many times it is retried) can never
//! change the bytes it produces. The fleet layer therefore only has to
//! preserve the existing gather-order invariants (results land by flat
//! index; the lowest-flat-index error wins) to keep every recovery path
//! bit-identical to a fault-free run.

pub mod chaos;
pub mod pool;
pub mod supervisor;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Unified fault-handling policy shared by every execution tier.
///
/// Replaces the per-backend hard-coded defaults (the remote backend's
/// retry budget of 2 and 15 s IO timeout; the sharded backend's
/// no-retry behaviour). Backoff between retries is exponential with
/// deterministic jitter drawn from a seeded [`FleetRng`] — same
/// construction as `petri-core`'s `SimRng` (xoshiro256++ seeded via
/// SplitMix64), reimplemented here because `petri-core` depends on this
/// crate, not the other way around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Read/write timeout on remote sockets; `None` disables timeouts
    /// (pipes to shard subprocesses have no read timeout either way —
    /// worker death is detected as EOF).
    pub io_timeout: Option<Duration>,
    /// How many times a failed dispatch (worker crash, dead peer,
    /// unspawnable subprocess) is retried before giving up.
    pub retry_budget: usize,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// When the fleet shrinks to zero (every retry exhausted, every
    /// peer quarantined), run the undelivered slots in-process instead
    /// of failing the job. Off by default: tests and callers that want
    /// failures surfaced as errors keep them; chaos runs and hardened
    /// daemons opt in.
    pub fallback: bool,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            io_timeout: Some(Duration::from_secs(15)),
            retry_budget: 2,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            backoff_seed: 0x5EED_F1EE7,
            fallback: false,
        }
    }
}

impl FaultPolicy {
    /// Replace the retry budget.
    pub fn with_retry_budget(mut self, budget: usize) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Replace the IO timeout (`None` disables).
    pub fn with_io_timeout(mut self, t: Option<Duration>) -> Self {
        self.io_timeout = t;
        self
    }

    /// Opt in or out of the shrink-to-zero in-process fallback.
    pub fn with_fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Replace the backoff window.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Replace the jitter seed.
    pub fn with_backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Deterministic backoff delay before retry `attempt` (0-based) of
    /// the work unit identified by `salt`: exponential growth capped at
    /// [`backoff_cap`](Self::backoff_cap), with seeded jitter in the
    /// upper half of the window so concurrent retries de-correlate
    /// without a wall-clock or OS entropy source.
    pub fn backoff_delay(&self, attempt: usize, salt: u64) -> Duration {
        let base = self.backoff_base.as_millis() as u64;
        let cap = self.backoff_cap.as_millis() as u64;
        let exp = base
            .saturating_mul(1u64.checked_shl(attempt.min(32) as u32).unwrap_or(u64::MAX))
            .min(cap.max(1));
        let mut rng = FleetRng::seed_from_u64(
            self.backoff_seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt as u64,
        );
        let jitter = rng.next_below(exp / 2 + 1);
        let delay = Duration::from_millis(exp / 2 + jitter);
        // Every retry tier (sharded, remote, supervisor) sleeps exactly
        // what this returns, so one recording site covers them all.
        crate::telemetry::telemetry()
            .histogram("fleet_backoff_wait_ns")
            .record_duration(delay);
        delay
    }
}

// --- deterministic RNG ----------------------------------------------------

/// SplitMix64 step: the seed expander used by both `petri-core`'s
/// `SimRng` and this mirror.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ seeded via SplitMix64 — the fleet's deterministic RNG
/// for backoff jitter and chaos-fault scheduling. Mirrors the
/// construction of `petri_core::rng::SimRng` (which cannot be imported
/// here without a dependency cycle).
#[derive(Debug, Clone)]
pub struct FleetRng {
    s: [u64; 4],
}

impl FleetRng {
    /// Expand one `u64` seed into the full generator state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        FleetRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform-ish draw in `[0, n)` (`0` when `n == 0`). Modulo bias is
    /// irrelevant at jitter/chaos granularity.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli draw with probability `per_mille / 1000`.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.next_below(1000) < per_mille as u64
    }
}

// --- process-global degradation counters ----------------------------------

/// Process-global fleet health counters, surfaced through the service
/// `stats` verb so degradation is loud rather than silent.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Worker subprocesses spawned (cold starts).
    pub spawned: AtomicU64,
    /// Dispatches served by a pooled (warm) worker or peer connection.
    pub pool_hits: AtomicU64,
    /// Workers restarted after a crash / broken pipe.
    pub restarts: AtomicU64,
    /// Remote peers reconnected after a dead connection.
    pub reconnects: AtomicU64,
    /// Offenders placed in quarantine after repeated failures.
    pub quarantined: AtomicU64,
    /// Jobs (or job remainders) that degraded to in-process execution
    /// because the fleet shrank to zero.
    pub fallbacks: AtomicU64,
    /// Pooled members retired by the max-dispatch / idle-age recycling
    /// policy.
    pub recycled: AtomicU64,
}

/// Plain-value snapshot of [`FleetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// See [`FleetStats::spawned`].
    pub spawned: u64,
    /// See [`FleetStats::pool_hits`].
    pub pool_hits: u64,
    /// See [`FleetStats::restarts`].
    pub restarts: u64,
    /// See [`FleetStats::reconnects`].
    pub reconnects: u64,
    /// See [`FleetStats::quarantined`].
    pub quarantined: u64,
    /// See [`FleetStats::fallbacks`].
    pub fallbacks: u64,
    /// See [`FleetStats::recycled`].
    pub recycled: u64,
}

impl FleetSnapshot {
    /// Every counter as `(name, value)`, in declaration order — the one
    /// source the gateway's `/metrics` extras and the bench's per-phase
    /// delta reports both render from.
    pub fn fields(&self) -> [(&'static str, u64); 7] {
        [
            ("spawned", self.spawned),
            ("pool_hits", self.pool_hits),
            ("restarts", self.restarts),
            ("reconnects", self.reconnects),
            ("quarantined", self.quarantined),
            ("fallbacks", self.fallbacks),
            ("recycled", self.recycled),
        ]
    }

    /// Counter movement since `baseline` (saturating): the fleet counters
    /// are process-global and never reset, so phase-scoped reporting —
    /// e.g. each `service_ab` phase — subtracts a snapshot taken at the
    /// phase boundary instead of reading absolutes.
    pub fn delta_since(&self, baseline: &FleetSnapshot) -> FleetSnapshot {
        FleetSnapshot {
            spawned: self.spawned.saturating_sub(baseline.spawned),
            pool_hits: self.pool_hits.saturating_sub(baseline.pool_hits),
            restarts: self.restarts.saturating_sub(baseline.restarts),
            reconnects: self.reconnects.saturating_sub(baseline.reconnects),
            quarantined: self.quarantined.saturating_sub(baseline.quarantined),
            fallbacks: self.fallbacks.saturating_sub(baseline.fallbacks),
            recycled: self.recycled.saturating_sub(baseline.recycled),
        }
    }
}

impl FleetStats {
    /// Atomically read every counter.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            spawned: self.spawned.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-global fleet counters.
pub fn fleet_stats() -> &'static FleetStats {
    static STATS: OnceLock<FleetStats> = OnceLock::new();
    STATS.get_or_init(FleetStats::default)
}

/// The fleet's [`MetricsSource`](crate::telemetry::MetricsSource):
/// samples [`fleet_stats`] as `fleet_*`-prefixed counter pairs. The
/// global [`telemetry()`](crate::telemetry::telemetry) handle registers
/// this at init so every `/metrics` scrape carries the fleet counters
/// from one source of truth.
pub fn fleet_metrics_source() -> Vec<(&'static str, u64)> {
    let s = fleet_stats().snapshot();
    vec![
        ("fleet_spawned", s.spawned),
        ("fleet_pool_hits", s.pool_hits),
        ("fleet_restarts", s.restarts),
        ("fleet_reconnects", s.reconnects),
        ("fleet_quarantined", s.quarantined),
        ("fleet_fallbacks", s.fallbacks),
        ("fleet_recycled", s.recycled),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let p = FaultPolicy::default();
        let a = p.backoff_delay(0, 7);
        let b = p.backoff_delay(0, 7);
        assert_eq!(a, b, "same (seed, salt, attempt) must give same delay");
        assert_ne!(
            p.backoff_delay(0, 7),
            p.backoff_delay(0, 8),
            "different salts must de-correlate"
        );
        // Exponential window: attempt n delay lies in [2^n*base/2, 2^n*base].
        for attempt in 0..4 {
            let d = p.backoff_delay(attempt, 1).as_millis() as u64;
            let window = 100u64 << attempt;
            assert!(d >= window / 2 && d <= window, "attempt {attempt}: {d}ms");
        }
        // Capped far beyond the doubling range.
        assert!(p.backoff_delay(40, 1) <= p.backoff_cap);
    }

    #[test]
    fn fleet_rng_is_reproducible() {
        let mut a = FleetRng::seed_from_u64(42);
        let mut b = FleetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FleetRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
        // chance(0) never fires; chance(1000) always fires.
        assert!(!a.chance(0));
        assert!(a.chance(1000));
    }

    #[test]
    fn policy_builders_compose() {
        let p = FaultPolicy::default()
            .with_retry_budget(5)
            .with_io_timeout(None)
            .with_fallback(true)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(8))
            .with_backoff_seed(9);
        assert_eq!(p.retry_budget, 5);
        assert_eq!(p.io_timeout, None);
        assert!(p.fallback);
        assert!(p.backoff_delay(20, 0) <= Duration::from_millis(8));
    }
}
