//! # markov — Markov-chain substrate
//!
//! The "other side" of the paper's comparison: everything needed to build
//! and solve the Markov models that Shareef & Zhu (2010) pit against their
//! Petri nets.
//!
//! * [`linalg`] — dense matrices, LU solve (self-contained).
//! * [`ctmc`] — continuous-time chains: GTH direct solve and uniformized
//!   power iteration.
//! * [`dtmc`] — discrete-time chains: power iteration (Cesàro-averaged) and
//!   direct solve.
//! * [`uniformization`] — transient CTMC solutions.
//! * [`birth_death`] — closed-form birth–death steady states (the queueing
//!   skeleton of the paper's Fig. 2).
//! * [`absorption`] — hitting times/probabilities (battery-lifetime
//!   analysis, the paper's motivating metric).
//! * [`mm1`] — M/M/1 closed forms (the no-power-management limit).
//! * [`supplementary`] — **equations (1)–(6) of the paper**: the
//!   supplementary-variable solution of the power-managed CPU.
//! * [`phase`] — Erlang phase-type expansion of the deterministic timers
//!   (the ABL-ERLANG ablation: how many exponential stages a true Markov
//!   chain needs to mimic a deterministic delay).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod absorption;
pub mod birth_death;
pub mod ctmc;
pub mod dtmc;
pub mod linalg;
pub mod mm1;
pub mod phase;
pub mod supplementary;
pub mod uniformization;

pub use absorption::{absorb, Absorption, AbsorptionError};
pub use ctmc::{Ctmc, CtmcError};
pub use dtmc::{Dtmc, DtmcError};
pub use linalg::Matrix;
pub use mm1::Mm1;
pub use phase::{solve_phase_cpu, PhaseCpuConfig, PhaseCpuSolution};
pub use supplementary::{CpuMarkovParams, CpuMarkovSolution, CpuPowerRates};
