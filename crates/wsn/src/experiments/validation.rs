//! Substrate cross-validation sweep: the Petri-net node model against the
//! independent DES oracle at every threshold, as a machine-checkable CSV.
//!
//! This is the evidence behind the claim that our TimeNET replacement
//! implements the intended semantics: two independently written simulators
//! agreeing across the full parameter range. The sweep is a portable
//! [`ValidationJob`] on the executor seam, so it runs unchanged (and
//! byte-identically) in-process or across worker shards; the open
//! (stochastic) model can additionally run **adaptive** replications per
//! point until both energy estimates settle, instead of trusting a single
//! run.

use super::jobs::{decode_obs, ValidationJob, VALIDATION_WATCH};
use des::Workload;
use serde::{Deserialize, Serialize};
use sim_runtime::{Exec, StoppingRule};

/// One row of the validation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Power-Down Threshold (s).
    pub pdt: f64,
    /// Petri-net total energy (J), averaged over the row's replications.
    pub petri_j: f64,
    /// DES total energy (J), averaged over the row's replications.
    pub des_j: f64,
    /// Relative difference `|petri - des| / des` of the averages.
    pub rel_diff: f64,
    /// Petri CPU wake-ups (mean).
    pub petri_wakeups: f64,
    /// DES CPU wake-ups (mean).
    pub des_wakeups: f64,
    /// Replications averaged into this row.
    pub replications: u64,
    /// Whether the adaptive rule settled (always `true` in fixed mode).
    pub converged: bool,
}

/// Run the validation sweep over a threshold grid for one workload.
///
/// The closed workload is deterministic in both substrates, so rows should
/// agree to numerical precision and always use a single replication. For
/// the open workload, `rule: None` reproduces the historical single-run
/// rows exactly (the `--fixed-reps` escape hatch), while `rule: Some(_)`
/// runs adaptive replications per point until the 95 % CI of both the
/// Petri and DES energy estimates meets the rule.
pub fn run_validation(
    workload: Workload,
    grid: &[f64],
    horizon: f64,
    seed: u64,
    exec: &Exec,
    rule: Option<&StoppingRule>,
) -> Vec<ValidationRow> {
    let job = ValidationJob {
        workload,
        horizon,
        grid: grid.to_vec(),
    };
    let row = |pdt: f64, obs: &[f64], replications: u64, converged: bool| ValidationRow {
        pdt,
        petri_j: obs[0],
        des_j: obs[1],
        rel_diff: (obs[0] - obs[1]).abs() / obs[1],
        petri_wakeups: obs[2],
        des_wakeups: obs[3],
        replications,
        converged,
    };
    match (workload, rule) {
        (Workload::Open { .. }, Some(rule)) => {
            let adaptive = exec
                .runner()
                .run_adaptive_job(&job, grid.len(), rule, &VALIDATION_WATCH, &|_p, r| {
                    petri_core::rng::SimRng::child_seed(seed, r)
                })
                .unwrap_or_else(|e| panic!("adaptive validation sweep failed: {e}"));
            grid.iter()
                .zip(adaptive)
                .map(|(&pdt, p)| {
                    let means: Vec<f64> = p.stats.iter().map(|w| w.mean()).collect();
                    row(pdt, &means, p.replications, p.converged)
                })
                .collect()
        }
        _ => {
            // One exact (closed) or historical single-seed (open) run per
            // point: the constant seed table reproduces the pre-adaptive
            // sweep bit for bit.
            let reps = vec![1u64; grid.len()];
            let per_point = exec
                .runner()
                .run_job(&job, &reps, &|_p, _r| seed)
                .unwrap_or_else(|e| panic!("validation sweep failed: {e}"));
            grid.iter()
                .zip(per_point)
                .map(|(&pdt, slots)| {
                    let obs =
                        decode_obs(&slots[0], "validation slot").unwrap_or_else(|e| panic!("{e}"));
                    row(pdt, &obs, 1, true)
                })
                .collect()
        }
    }
}

/// Render the sweep as CSV.
pub fn render_validation_csv(rows: &[ValidationRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("pdt,petri_j,des_j,rel_diff,petri_wakeups,des_wakeups,replications\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{:.4},{:.4},{:.6},{:.1},{:.1},{}",
            r.pdt, r.petri_j, r.des_j, r.rel_diff, r.petri_wakeups, r.des_wakeups, r.replications
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec2() -> Exec {
        Exec::in_process(2)
    }

    #[test]
    fn closed_model_rows_agree_tightly() {
        let rows = run_validation(
            Workload::Closed { interval: 1.0 },
            &[1e-9, 0.00177, 0.1, 10.0],
            300.0,
            1,
            &exec2(),
            None,
        );
        for r in &rows {
            assert!(r.rel_diff < 0.005, "pdt={}: {:?}", r.pdt, r);
            assert!((r.petri_wakeups - r.des_wakeups).abs() <= 1.0, "{r:?}");
            assert_eq!(r.replications, 1);
            assert!(r.converged);
        }
    }

    #[test]
    fn open_model_rows_agree_statistically() {
        // Single runs with independent seeds: agreement is statistical
        // (relative Monte-Carlo std of a 5000 s energy estimate ≈ 2-3 %).
        let rows = run_validation(
            Workload::Open { rate: 1.0 },
            &[0.00177, 0.1],
            5000.0,
            7,
            &exec2(),
            None,
        );
        for r in &rows {
            assert!(r.rel_diff < 0.08, "pdt={}: {:?}", r.pdt, r);
        }
    }

    #[test]
    fn open_model_adaptive_tightens_the_gap() {
        // Averaging until the CI settles must agree at least as well as the
        // loose single-run bound, while recording its replication spend.
        let rule = StoppingRule::relative(0.05).with_budget(3, 24, 3);
        let rows = run_validation(
            Workload::Open { rate: 1.0 },
            &[0.00177, 0.1],
            800.0,
            7,
            &exec2(),
            Some(&rule),
        );
        for r in &rows {
            assert!(r.replications >= 3 && r.replications <= 24, "{r:?}");
            assert!(r.rel_diff < 0.15, "{r:?}");
        }
        // Deterministic across thread counts, replication budget included.
        let again = run_validation(
            Workload::Open { rate: 1.0 },
            &[0.00177, 0.1],
            800.0,
            7,
            &Exec::in_process(1),
            Some(&rule),
        );
        assert_eq!(rows, again);
    }

    #[test]
    fn csv_renders_all_rows() {
        let rows = run_validation(
            Workload::Closed { interval: 1.0 },
            &[0.01],
            100.0,
            1,
            &Exec::in_process(1),
            None,
        );
        let csv = render_validation_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("pdt,"));
        assert!(csv.contains("replications"));
    }
}
