//! Paired A/B measurement of the scalar stepping engines, on the shared
//! [`bench::ab`] harness: adjacent interleaved blocks, alternating order,
//! median of per-pair ratios — robust to the drift of noisy shared-CPU
//! hosts. Writes `BENCH_engine.json`-ready numbers to stdout.
//!
//! Two sweeps per net:
//! * `interp vs reference` — the incremental interpreter against the
//!   from-scratch reference engine (the historical headline number).
//! * `lowered vs interp` — the compiled micro-op programs against the
//!   interpreter they replaced as the default.
//!
//! ```text
//! cargo run --release -p bench --bin engine_ab [pairs_per_net]
//! ```

use petri_core::prelude::*;
use std::time::Instant;

#[derive(Clone, Copy)]
enum Engine {
    Lowered,
    Interp,
    Reference,
}

fn mm1_net() -> Net {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    b.build().unwrap()
}

fn tandem_net(n: usize) -> Net {
    let mut b = NetBuilder::new("tandem");
    let places: Vec<_> = (0..n).map(|i| b.place(format!("p{i}")).build()).collect();
    b.transition("source", Timing::exponential(1.0))
        .output(places[0], 1)
        .build();
    for i in 0..n - 1 {
        b.transition(format!("t{i}"), Timing::exponential(2.0))
            .input(places[i], 1)
            .output(places[i + 1], 1)
            .build();
    }
    b.transition("sink", Timing::exponential(2.0))
        .input(places[n - 1], 1)
        .build();
    b.build().unwrap()
}

/// Time `runs` simulation runs, returning ns/run and a checksum of total
/// firings (keeps the optimizer honest and proves the engines agree).
fn time_block(sim: &Simulator<'_>, seed0: u64, runs: u64, engine: Engine) -> (f64, u64) {
    let t0 = Instant::now();
    let mut firings = 0u64;
    for i in 0..runs {
        let out = match engine {
            Engine::Lowered => sim.run_lowered(seed0 + i).unwrap(),
            Engine::Interp => sim.run_interp(seed0 + i).unwrap(),
            Engine::Reference => sim.run_reference(seed0 + i).unwrap(),
        };
        firings += out.total_firings();
    }
    (t0.elapsed().as_nanos() as f64 / runs as f64, firings)
}

/// One paired sweep: engine `a` against engine `b` (speedup = b/a).
fn measure(
    label: &str,
    sim: &Simulator<'_>,
    runs_per_block: u64,
    pairs: usize,
    (a, b): (Engine, Engine),
    arm: &str,
) {
    let stats = bench::ab::run_paired(
        pairs,
        |p| time_block(sim, (p as u64) * runs_per_block + 1, runs_per_block, a),
        |p| time_block(sim, (p as u64) * runs_per_block + 1, runs_per_block, b),
    );
    println!(
        "{label:<20} {arm:<22} base {:9.3} ms  new {:9.3} ms  median paired speedup {:5.2}x",
        stats.b_ns / 1e6,
        stats.a_ns / 1e6,
        stats.speedup,
    );
}

fn sweep(label: &str, sim: &Simulator<'_>, runs_per_block: u64, pairs: usize) {
    measure(
        label,
        sim,
        runs_per_block,
        pairs,
        (Engine::Interp, Engine::Reference),
        "interp vs reference",
    );
    measure(
        label,
        sim,
        runs_per_block,
        pairs,
        (Engine::Lowered, Engine::Interp),
        "lowered vs interp",
    );
}

fn main() {
    let pairs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("paired A/B, {pairs} pairs per net (median of adjacent-block ratios)");

    let net = mm1_net();
    let sim = Simulator::new(&net, SimConfig::for_horizon(10_000.0));
    sweep("mm1/10k_seconds", &sim, 3, pairs);

    for n in [4usize, 16, 64] {
        let net = tandem_net(n);
        let sim = Simulator::new(&net, SimConfig::for_horizon(1000.0));
        sweep(
            &format!("tandem/{n}"),
            &sim,
            if n == 64 { 1 } else { 4 },
            pairs,
        );
    }

    let model = wsn::build_cpu_model(&wsn::CpuModelParams::paper_defaults(0.1, 0.3));
    let sim = Simulator::new(&model.net, SimConfig::for_horizon(1000.0));
    sweep("fig3_cpu_1000s", &sim, 6, pairs);
}
