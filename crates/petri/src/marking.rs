//! Markings: the global token state of a net.
//!
//! A [`Marking`] is stored as a dense per-place count vector plus a colored
//! side-table: only places that can ever hold a non-[`Color::NONE`] token
//! (decided once, at [`crate::builder::NetBuilder::build`] time, by a
//! color-flow fixpoint) materialize a FIFO [`TokenBag`]. On the paper's
//! uncolored nets every token operation — `count`, `count_matching`,
//! `deposit`, `withdraw` with [`ColorFilter::Any`] — is an O(1) integer
//! operation on the count vector, and [`Marking::canonical_key`] is simply
//! that vector, which is what makes the simulator's enabling checks and the
//! reachability explorer's hashing cheap.
//!
//! The simulator mutates a single marking in place; analysis code clones
//! markings to explore the reachability graph. FIFO order within a colored
//! place is a simulation artifact and must not distinguish states, so the
//! canonical key sorts colors within each place.

use crate::ids::PlaceId;
use crate::token::{Color, ColorFilter, TokenBag};
use std::sync::Arc;

/// The token distribution over all places of a net.
#[derive(Debug, Clone)]
pub struct Marking {
    /// Total tokens per place — the single source of truth for counts.
    counts: Vec<u32>,
    /// Which places materialize a color bag. Shared between all markings of
    /// one net (refcounted, never mutated after construction).
    colored: Arc<[bool]>,
    /// FIFO color bags; maintained only for places with `colored[p]`, empty
    /// otherwise (their tokens are implicitly all [`Color::NONE`]).
    bags: Vec<TokenBag>,
    /// Number of non-[`Color::NONE`] tokens currently present, maintained on
    /// deposit/withdraw. Zero ⇔ the marking is semantically uncolored, which
    /// selects the dense [`Marking::canonical_key`] encoding regardless of
    /// layout.
    colored_tokens: u32,
}

impl Marking {
    /// A marking with `n` empty places, all of which may hold colors (the
    /// fully general layout; nets build masked markings via
    /// [`crate::net::Net::initial_marking`]).
    pub fn empty(n: usize) -> Self {
        Marking::empty_masked(vec![true; n].into())
    }

    /// A marking with one empty place per mask entry; places whose mask is
    /// `false` are stored count-only.
    pub(crate) fn empty_masked(colored: Arc<[bool]>) -> Self {
        let n = colored.len();
        Marking {
            counts: vec![0; n],
            colored,
            bags: vec![TokenBag::new(); n],
            colored_tokens: 0,
        }
    }

    /// Build from explicit bags. All places are treated as colored; used by
    /// tests and external constructions that bypass a net.
    pub fn from_bags(places: Vec<TokenBag>) -> Self {
        let mut m = Marking::empty(places.len());
        for (i, bag) in places.into_iter().enumerate() {
            m.counts[i] = bag.len() as u32;
            m.colored_tokens += bag.iter().filter(|&c| c != Color::NONE).count() as u32;
            m.bags[i] = bag;
        }
        m
    }

    /// Number of places.
    #[inline]
    pub fn num_places(&self) -> usize {
        self.counts.len()
    }

    /// Total tokens in place `p`.
    #[inline]
    pub fn count(&self, p: PlaceId) -> usize {
        self.counts[p.index()] as usize
    }

    /// Total tokens in place `p` as the raw dense count (engine hot path).
    #[inline]
    pub(crate) fn count_raw(&self, p: u32) -> u32 {
        self.counts[p as usize]
    }

    /// The dense count vector (engine and compiled-guard hot path).
    #[inline]
    pub(crate) fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Tokens of color `c` in place `p`.
    #[inline]
    pub fn count_color(&self, p: PlaceId, c: Color) -> usize {
        let i = p.index();
        if self.colored[i] {
            self.bags[i].count_color(c)
        } else if c == Color::NONE {
            self.counts[i] as usize
        } else {
            0
        }
    }

    /// Tokens in `p` matching `filter`.
    #[inline]
    pub fn count_matching(&self, p: PlaceId, filter: &ColorFilter) -> usize {
        let i = p.index();
        match filter {
            ColorFilter::Any => self.counts[i] as usize,
            _ if self.colored[i] => self.bags[i].count_matching(filter),
            _ if filter.matches(Color::NONE) => self.counts[i] as usize,
            _ => 0,
        }
    }

    /// Deposit one token of color `c` into `p`.
    ///
    /// For count-only places the builder's color-flow analysis guarantees
    /// `c == Color::NONE`; that invariant is checked in debug builds.
    #[inline]
    pub fn deposit(&mut self, p: PlaceId, c: Color) {
        let i = p.index();
        // Saturating: counts cap at u32::MAX, which always exceeds the
        // engines' (clamped) token limit, so overflow surfaces as
        // SimError::TokenOverflow instead of a silent wrap.
        self.counts[i] = self.counts[i].saturating_add(1);
        if self.colored[i] {
            self.colored_tokens += (c != Color::NONE) as u32;
            self.bags[i].push(c);
        } else {
            debug_assert_eq!(
                c,
                Color::NONE,
                "colored token deposited into place {i} that the color-flow \
                 analysis marked count-only"
            );
        }
    }

    /// Remove the oldest token in `p` matching `filter`.
    #[inline]
    pub fn withdraw(&mut self, p: PlaceId, filter: &ColorFilter) -> Option<Color> {
        let i = p.index();
        if self.colored[i] {
            let taken = self.bags[i].take_matching(filter);
            if let Some(c) = taken {
                self.counts[i] -= 1;
                self.colored_tokens -= (c != Color::NONE) as u32;
            }
            taken
        } else if self.counts[i] > 0 && filter.matches(Color::NONE) {
            self.counts[i] -= 1;
            Some(Color::NONE)
        } else {
            None
        }
    }

    /// Bulk-deposit `n` plain tokens into a count-only place (engine fast
    /// path; the caller guarantees the place is count-only).
    #[inline]
    pub(crate) fn add_plain(&mut self, p: u32, n: u32) -> u32 {
        debug_assert!(!self.colored[p as usize]);
        let c = &mut self.counts[p as usize];
        // Saturating for the same reason as `deposit`.
        *c = c.saturating_add(n);
        *c
    }

    /// Bulk-withdraw `n` plain tokens from a count-only place (engine fast
    /// path; the caller guarantees enabledness, i.e. `count >= n`).
    #[inline]
    pub(crate) fn sub_plain(&mut self, p: u32, n: u32) {
        debug_assert!(!self.colored[p as usize]);
        debug_assert!(self.counts[p as usize] >= n);
        self.counts[p as usize] -= n;
    }

    /// Iterate the colors currently in place `p` (FIFO order; count-only
    /// places yield `Color::NONE` `count` times).
    pub fn colors(&self, p: PlaceId) -> impl Iterator<Item = Color> + '_ {
        let i = p.index();
        let (bag_iter, plain) = if self.colored[i] {
            (Some(self.bags[i].iter()), 0)
        } else {
            (None, self.counts[i] as usize)
        };
        bag_iter
            .into_iter()
            .flatten()
            .chain(std::iter::repeat_n(Color::NONE, plain))
    }

    /// Total tokens across all places.
    pub fn total_tokens(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// A canonical, order-independent key identifying this marking.
    ///
    /// A marking currently holding no non-[`Color::NONE`] token returns the
    /// dense count vector directly (fixed length, no sentinels — the cheap
    /// path the reachability explorer and CTMC extraction hash millions of
    /// times). Otherwise the key encodes, per place: the token count, the
    /// sorted non-`NONE` colors (plain tokens are implied by the count),
    /// then the sentinel `u32::MAX` (a color the builder rejects). The
    /// encoding depends only on token *content*, never on the storage
    /// layout, and the two forms cannot collide (different lengths). Two
    /// markings that differ only in FIFO order within a place map to the
    /// same key.
    pub fn canonical_key(&self) -> Vec<u32> {
        if self.colored_tokens == 0 {
            return self.counts.clone();
        }
        let mut key = Vec::with_capacity(self.colored_tokens as usize + 2 * self.counts.len());
        let mut scratch: Vec<u32> = Vec::new();
        for i in 0..self.counts.len() {
            key.push(self.counts[i]);
            if self.colored[i] {
                scratch.clear();
                scratch.extend(
                    self.bags[i]
                        .iter()
                        .filter(|&c| c != Color::NONE)
                        .map(|c| c.0),
                );
                scratch.sort_unstable();
                key.extend_from_slice(&scratch);
            }
            key.push(u32::MAX);
        }
        key
    }

    /// Vector of per-place token counts (ignores colors). Handy for
    /// invariant checking and display.
    pub fn count_vector(&self) -> Vec<usize> {
        self.counts.iter().map(|&c| c as usize).collect()
    }
}

impl PartialEq for Marking {
    fn eq(&self, other: &Self) -> bool {
        // The colored mask is net-derived metadata, not token state: two
        // markings are equal iff their counts and token colors (in FIFO
        // order) agree. A count-only place holds `count` implicit
        // `Color::NONE` tokens, so against a materialized bag it is equal
        // exactly when that bag is all-NONE of the same length.
        if self.counts != other.counts {
            return false;
        }
        for i in 0..self.counts.len() {
            let equal = match (self.colored[i], other.colored[i]) {
                (true, true) => self.bags[i] == other.bags[i],
                (false, false) => true,
                (true, false) => self.bags[i].iter().all(|c| c == Color::NONE),
                (false, true) => other.bags[i].iter().all(|c| c == Color::NONE),
            };
            if !equal {
                return false;
            }
        }
        true
    }
}

impl Eq for Marking {}

impl Default for Marking {
    fn default() -> Self {
        Marking::empty(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn empty_marking() {
        let m = Marking::empty(3);
        assert_eq!(m.num_places(), 3);
        assert_eq!(m.total_tokens(), 0);
        assert_eq!(m.count(p(0)), 0);
    }

    #[test]
    fn deposit_withdraw_roundtrip() {
        let mut m = Marking::empty(2);
        m.deposit(p(0), Color(1));
        m.deposit(p(0), Color(2));
        m.deposit(p(1), Color::NONE);
        assert_eq!(m.count(p(0)), 2);
        assert_eq!(m.count(p(1)), 1);
        assert_eq!(m.total_tokens(), 3);
        assert_eq!(m.withdraw(p(0), &ColorFilter::Eq(Color(2))), Some(Color(2)));
        assert_eq!(m.count(p(0)), 1);
        assert_eq!(m.withdraw(p(0), &ColorFilter::Any), Some(Color(1)));
        assert_eq!(m.withdraw(p(0), &ColorFilter::Any), None);
    }

    #[test]
    fn count_only_places_behave_like_plain_bags() {
        let mask: Arc<[bool]> = vec![false, true].into();
        let mut m = Marking::empty_masked(mask);
        m.deposit(p(0), Color::NONE);
        m.deposit(p(0), Color::NONE);
        m.deposit(p(1), Color(3));
        assert_eq!(m.count(p(0)), 2);
        assert_eq!(m.count_color(p(0), Color::NONE), 2);
        assert_eq!(m.count_color(p(0), Color(1)), 0);
        assert_eq!(m.count_matching(p(0), &ColorFilter::Eq(Color::NONE)), 2);
        assert_eq!(m.count_matching(p(0), &ColorFilter::Eq(Color(1))), 0);
        assert_eq!(m.withdraw(p(0), &ColorFilter::Eq(Color(9))), None);
        assert_eq!(m.withdraw(p(0), &ColorFilter::Any), Some(Color::NONE));
        assert_eq!(m.count(p(0)), 1);
        // The colored place still tracks real colors.
        assert_eq!(m.count_color(p(1), Color(3)), 1);
    }

    #[test]
    fn canonical_key_ignores_fifo_order() {
        let mut a = Marking::empty(1);
        a.deposit(p(0), Color(2));
        a.deposit(p(0), Color(1));
        let mut b = Marking::empty(1);
        b.deposit(p(0), Color(1));
        b.deposit(p(0), Color(2));
        assert_ne!(a, b); // FIFO order differs...
        assert_eq!(a.canonical_key(), b.canonical_key()); // ...but the state is the same.
    }

    #[test]
    fn canonical_key_distinguishes_places() {
        let mut a = Marking::empty(2);
        a.deposit(p(0), Color(1));
        let mut b = Marking::empty(2);
        b.deposit(p(1), Color(1));
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_dense_for_uncolored() {
        let mask: Arc<[bool]> = vec![false, false, false].into();
        let mut m = Marking::empty_masked(mask);
        m.deposit(p(1), Color::NONE);
        m.deposit(p(1), Color::NONE);
        // The uncolored key IS the count vector: no sentinels, no sorting.
        assert_eq!(m.canonical_key(), vec![0, 2, 0]);
    }

    #[test]
    fn colors_iterator_covers_both_layouts() {
        let mask: Arc<[bool]> = vec![false, true].into();
        let mut m = Marking::empty_masked(mask);
        m.deposit(p(0), Color::NONE);
        m.deposit(p(0), Color::NONE);
        m.deposit(p(1), Color(7));
        let plain: Vec<Color> = m.colors(p(0)).collect();
        assert_eq!(plain, vec![Color::NONE, Color::NONE]);
        let colored: Vec<Color> = m.colors(p(1)).collect();
        assert_eq!(colored, vec![Color(7)]);
    }

    #[test]
    fn canonical_key_is_layout_independent() {
        // Same token content, different storage layouts: identical keys.
        let mask: Arc<[bool]> = vec![false, true].into();
        let mut dense = Marking::empty_masked(mask);
        dense.deposit(p(0), Color::NONE);
        dense.deposit(p(1), Color(4));
        let mut general = Marking::empty(2);
        general.deposit(p(0), Color::NONE);
        general.deposit(p(1), Color(4));
        assert_eq!(dense.canonical_key(), general.canonical_key());

        // And once the colored token is gone, both collapse to the dense
        // count-vector key.
        assert_eq!(dense.withdraw(p(1), &ColorFilter::Any), Some(Color(4)));
        assert_eq!(general.withdraw(p(1), &ColorFilter::Any), Some(Color(4)));
        assert_eq!(dense.canonical_key(), vec![1, 0]);
        assert_eq!(general.canonical_key(), vec![1, 0]);
    }

    #[test]
    fn count_vector_matches() {
        let mut m = Marking::empty(3);
        m.deposit(p(1), Color::NONE);
        m.deposit(p(1), Color(4));
        assert_eq!(m.count_vector(), vec![0, 2, 0]);
    }

    #[test]
    fn equality_ignores_mask_layout_when_states_differ() {
        let mut a = Marking::empty(1);
        a.deposit(p(0), Color::NONE);
        let mut b = Marking::empty(1);
        b.deposit(p(0), Color(1));
        assert_ne!(a, b);
    }

    #[test]
    fn equality_is_layout_independent() {
        // Same token content in different storage layouts compares equal.
        let mask: Arc<[bool]> = vec![false, true].into();
        let mut dense = Marking::empty_masked(mask);
        dense.deposit(p(0), Color::NONE);
        dense.deposit(p(0), Color::NONE);
        dense.deposit(p(1), Color(3));
        let mut general = Marking::empty(2);
        general.deposit(p(0), Color::NONE);
        general.deposit(p(0), Color::NONE);
        general.deposit(p(1), Color(3));
        assert_eq!(dense, general);
        assert_eq!(general, dense);
        // And differing counts still differ.
        general.deposit(p(0), Color::NONE);
        assert_ne!(dense, general);
    }
}
