//! The two-tier content-addressed result cache behind the experiment
//! service.
//!
//! Because every result in this workspace is a pure function of its
//! [`TaskManifest`](crate::exec::TaskManifest) — job registry key, encoded
//! payload, and one seed per slot — and every backend gathers slots in
//! flat-index order, **the manifest's canonical wire encoding fully
//! determines the result bytes**. That makes results perfectly memoizable:
//! the cache key is a SHA-256 digest of the encoded manifest (prefixed with
//! the cache and wire format versions), and a cache hit is byte-identical
//! to a fresh run *by construction*, not by luck.
//!
//! Two tiers:
//!
//! * [`MemCache`] — a small in-memory LRU of decoded result blobs, for the
//!   "the process answered this seconds ago" case;
//! * [`DiskStore`] — one file per key under a cache directory (the daemon
//!   defaults to `results/cache/`), written atomically (temp file +
//!   rename) so a crashed writer can never leave a half-entry that later
//!   decodes as a result. Corrupt or truncated entries are treated as
//!   misses and removed.
//!
//! Deleting the cache directory is always safe and is the documented
//! invalidation step after any change to the simulation code itself (the
//! key covers the *request*, not the binary that answers it).

use crate::exec::{TaskManifest, WIRE_VERSION};
use crate::wire::{self, Reader, WireError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bumped whenever the blob layout or key derivation changes; part of the
/// hashed key prefix *and* the on-disk header, so stale entries from an
/// older format can never be served.
pub const CACHE_FORMAT_VERSION: u8 = 1;

/// Magic bytes opening every disk entry.
const DISK_MAGIC: &[u8; 4] = b"SPNC";

// --- cache key -----------------------------------------------------------

/// A content-addressed cache key: SHA-256 over the canonical wire encoding
/// of a task manifest (plus format/protocol version prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey([u8; 32]);

impl CacheKey {
    /// The key of `manifest`: a digest of its canonical encoding. Two
    /// manifests get the same key iff they encode to the same bytes —
    /// same job kind, payload, segments and per-slot seeds.
    pub fn of_manifest(manifest: &TaskManifest) -> Self {
        let mut buf = Vec::new();
        wire::put_u8(&mut buf, CACHE_FORMAT_VERSION);
        wire::put_u8(&mut buf, WIRE_VERSION);
        manifest.encode_into(&mut buf);
        CacheKey(sha256(&buf))
    }

    /// Deterministic trace ID for [`crate::trace`]: the key's first
    /// eight bytes as a little-endian `u64`, mapped away from the
    /// reserved "no trace" value `0`. Stable across re-runs of the same
    /// manifest on the same build, so traces are directly comparable.
    pub fn trace_id(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes")).max(1)
    }

    /// Lower-case hex rendering (the disk file name).
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

// --- result blob ---------------------------------------------------------

/// Encode per-slot result bytes into one cacheable blob (slot count, then
/// one length-prefixed entry per slot, in flat-index order).
pub fn encode_blob(slots: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + slots.iter().map(|s| s.len() + 4).sum::<usize>());
    wire::put_u32(&mut buf, slots.len() as u32);
    for s in slots {
        wire::put_bytes(&mut buf, s);
    }
    buf
}

/// Decode a blob back into per-slot result bytes.
pub fn decode_blob(blob: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut r = Reader::new(blob);
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.get_bytes()?.to_vec());
    }
    r.finish()?;
    Ok(out)
}

// --- in-memory LRU tier --------------------------------------------------

/// A bounded in-memory LRU over decoded result blobs. `capacity == 0`
/// disables the tier entirely.
#[derive(Debug)]
pub struct MemCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<CacheKey, (Arc<Vec<u8>>, u64)>,
}

impl MemCache {
    /// An empty cache holding at most `capacity` blobs.
    pub fn new(capacity: usize) -> Self {
        MemCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(blob, last)| {
            *last = tick;
            blob.clone()
        })
    }

    /// Insert `blob` under `key`, evicting the least-recently-used entry
    /// when over capacity.
    pub fn put(&mut self, key: CacheKey, blob: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.insert(key, (blob, self.tick));
        while self.entries.len() > self.capacity {
            // Linear LRU scan: the cache is small (tens of entries), and
            // evictions are rarer than hits — not worth an ordered index.
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k)
                .expect("non-empty over-capacity cache");
            self.entries.remove(&oldest);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// --- disk tier -----------------------------------------------------------

/// The persistent cache tier: one `<hex key>.res` file per entry under a
/// cache directory, optionally held under a byte budget by evicting the
/// least-recently-used entries (mtime order; a read refreshes the mtime).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Distinguishes concurrent writers' temp files within one process.
    temp_seq: AtomicU64,
    /// Total-entry-bytes budget; `None` means unbounded.
    budget: Option<u64>,
    /// Entries evicted to honour the budget (monotonic).
    evicted: AtomicU64,
    /// Corrupt entries detected and deleted (monotonic).
    corrupt_deleted: AtomicU64,
}

/// What a [`DiskStore::gc`] sweep found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: u64,
    /// Corrupt/truncated/stale-format entries deleted.
    pub corrupt_deleted: u64,
    /// Healthy entries evicted to honour the byte budget (LRU first).
    pub evicted: u64,
    /// Entry bytes on disk before the sweep.
    pub bytes_before: u64,
    /// Entry bytes on disk after the sweep.
    pub bytes_after: u64,
}

impl DiskStore {
    /// A store rooted at `dir` (created on first write), unbounded.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskStore {
            dir: dir.into(),
            temp_seq: AtomicU64::new(0),
            budget: None,
            evicted: AtomicU64::new(0),
            corrupt_deleted: AtomicU64::new(0),
        }
    }

    /// Set (or clear) the size budget: after every write the store evicts
    /// least-recently-used entries until total entry bytes fit.
    pub fn with_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = budget;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Entries evicted for the budget since this store was opened.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Corrupt entries deleted since this store was opened.
    pub fn corrupt_deleted(&self) -> u64 {
        self.corrupt_deleted.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.res", key.hex()))
    }

    /// Load the blob stored under `key`. Missing, truncated or corrupt
    /// entries are a miss (`None`); corrupt files are deleted (and
    /// counted) so they are not re-parsed on every request. A hit
    /// refreshes the entry's mtime, which is the recency signal the
    /// budget eviction sorts by.
    pub fn get(&self, key: &CacheKey) -> Option<Vec<u8>> {
        let path = self.path_of(key);
        let bytes = std::fs::read(&path).ok()?;
        match Self::parse_entry(&bytes) {
            Some(blob) => {
                Self::touch(&path);
                Some(blob)
            }
            None => {
                let _ = std::fs::remove_file(&path);
                self.corrupt_deleted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Best-effort mtime refresh (LRU recency). Failure is harmless: the
    /// entry just looks older than it is.
    fn touch(path: &Path) {
        if let Ok(f) = std::fs::File::options().append(true).open(path) {
            let _ =
                f.set_times(std::fs::FileTimes::new().set_modified(std::time::SystemTime::now()));
        }
    }

    fn parse_entry(bytes: &[u8]) -> Option<Vec<u8>> {
        if bytes.len() < DISK_MAGIC.len() + 1 || &bytes[..4] != DISK_MAGIC {
            return None;
        }
        if bytes[4] != CACHE_FORMAT_VERSION {
            return None;
        }
        let blob = bytes[5..].to_vec();
        // The blob must at least decode structurally; a truncated write
        // that survived the header is still a miss.
        decode_blob(&blob).ok()?;
        Some(blob)
    }

    /// Persist `blob` under `key`, atomically: the entry is written to a
    /// temp file in the same directory and renamed into place, so readers
    /// only ever observe complete entries. Errors are returned (the caller
    /// typically logs and continues — a failed cache write never fails the
    /// job).
    pub fn put(&self, key: &CacheKey, blob: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{}.{}.{}.tmp", key.hex(), std::process::id(), seq));
        let mut contents = Vec::with_capacity(5 + blob.len());
        contents.extend_from_slice(DISK_MAGIC);
        contents.push(CACHE_FORMAT_VERSION);
        contents.extend_from_slice(blob);
        std::fs::write(&tmp, &contents)?;
        match std::fs::rename(&tmp, self.path_of(key)) {
            Ok(()) => {
                self.enforce_budget(Some(key));
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Every `.res` entry as `(path, mtime, size)`, oldest first.
    fn entries_by_age(&self) -> Vec<(PathBuf, std::time::SystemTime, u64)> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut entries: Vec<(PathBuf, std::time::SystemTime, u64)> = dir
            .filter_map(|e| {
                let e = e.ok()?;
                let path = e.path();
                if path.extension().and_then(|x| x.to_str()) != Some("res") {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((path, mtime, meta.len()))
            })
            .collect();
        entries.sort_by_key(|(_, mtime, _)| *mtime);
        entries
    }

    /// Evict least-recently-used entries until total entry bytes fit the
    /// budget. `protect` (the key just written) is never evicted — a blob
    /// larger than the whole budget must still land, or a hot oversized
    /// result would be recomputed forever.
    fn enforce_budget(&self, protect: Option<&CacheKey>) {
        let Some(budget) = self.budget else { return };
        let protect_path = protect.map(|k| self.path_of(k));
        let entries = self.entries_by_age();
        let mut total: u64 = entries.iter().map(|(_, _, size)| size).sum();
        for (path, _, size) in entries {
            if total <= budget {
                break;
            }
            if protect_path.as_deref() == Some(path.as_path()) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(size);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sweep the whole store: delete corrupt/stale-format entries, then
    /// enforce the byte budget (LRU first). Safe to run while a daemon is
    /// serving — entries are atomic files and a concurrent reader of a
    /// just-evicted key simply misses.
    pub fn gc(&self) -> GcReport {
        let mut report = GcReport::default();
        for (path, _, size) in self.entries_by_age() {
            report.scanned += 1;
            report.bytes_before += size;
            let healthy = std::fs::read(&path)
                .ok()
                .and_then(|bytes| Self::parse_entry(&bytes))
                .is_some();
            if !healthy && std::fs::remove_file(&path).is_ok() {
                self.corrupt_deleted.fetch_add(1, Ordering::Relaxed);
                report.corrupt_deleted += 1;
            }
        }
        let evicted_before = self.evicted();
        self.enforce_budget(None);
        report.evicted = self.evicted() - evicted_before;
        report.bytes_after = self.entries_by_age().iter().map(|(_, _, size)| size).sum();
        report
    }
}

// --- SHA-256 -------------------------------------------------------------
//
// A dependency-free implementation (FIPS 180-4): the offline vendor tree
// has no crypto crate, and the cache key must be collision-resistant —
// serving the wrong cached result on a key collision would silently break
// the byte-identity guarantee the whole service is built on.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padded message: data || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::MulJob;
    use crate::grid::Segment;

    fn hex(d: &[u8; 32]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Two-block 896-bit vector.
        assert_eq!(
            hex(&sha256(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
        // One million 'a' (the classic long vector).
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    fn manifest(seed_mix: u64) -> TaskManifest {
        let job = MulJob { factor: 3 };
        TaskManifest::for_job(
            &job,
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            }],
            &|p, r| seed_mix ^ ((p as u64) << 32) ^ r,
        )
    }

    #[test]
    fn cache_key_is_stable_and_content_sensitive() {
        let a = CacheKey::of_manifest(&manifest(1));
        let b = CacheKey::of_manifest(&manifest(1));
        let c = CacheKey::of_manifest(&manifest(2));
        assert_eq!(a, b, "same manifest must hash identically");
        assert_ne!(a, c, "a seed change must change the key");
        assert_eq!(a.hex().len(), 64);
        // Payload sensitivity.
        let mut m = manifest(1);
        m.payload.push(0);
        assert_ne!(CacheKey::of_manifest(&m), a);
    }

    #[test]
    fn blob_round_trips_including_empty_slots() {
        let slots = vec![vec![1u8, 2, 3], vec![], vec![0xFF; 100]];
        let blob = encode_blob(&slots);
        assert_eq!(decode_blob(&blob).unwrap(), slots);
        assert_eq!(
            decode_blob(&encode_blob(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
        // Truncated blob is an error, not a partial decode.
        assert!(decode_blob(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn mem_cache_evicts_least_recently_used() {
        let k: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::of_manifest(&manifest(i)))
            .collect();
        let mut c = MemCache::new(2);
        c.put(k[0], Arc::new(vec![0]));
        c.put(k[1], Arc::new(vec![1]));
        // Touch k0 so k1 is the LRU victim.
        assert!(c.get(&k[0]).is_some());
        c.put(k[2], Arc::new(vec![2]));
        assert_eq!(c.len(), 2);
        assert!(c.get(&k[1]).is_none(), "LRU entry must be evicted");
        assert!(c.get(&k[0]).is_some());
        assert!(c.get(&k[2]).is_some());
        // Capacity 0 disables the tier.
        let mut off = MemCache::new(0);
        off.put(k[3], Arc::new(vec![3]));
        assert!(off.is_empty());
        assert!(off.get(&k[3]).is_none());
    }

    #[test]
    fn disk_store_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("svc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::new(&dir);
        let key = CacheKey::of_manifest(&manifest(9));
        assert!(store.get(&key).is_none());

        let blob = encode_blob(&[vec![1, 2], vec![3]]);
        store.put(&key, &blob).unwrap();
        assert_eq!(store.get(&key).unwrap(), blob);

        // Corrupt the entry: must become a miss and be cleaned up.
        let path = dir.join(format!("{}.res", key.hex()));
        std::fs::write(&path, b"SPNC\x01garbage-that-is-not-a-blob").unwrap();
        assert!(store.get(&key).is_none());
        assert!(!path.exists(), "corrupt entry must be removed");

        // Wrong format version: miss.
        let mut stale = Vec::new();
        stale.extend_from_slice(b"SPNC");
        stale.push(CACHE_FORMAT_VERSION + 1);
        stale.extend_from_slice(&blob);
        std::fs::write(&path, &stale).unwrap();
        assert!(store.get(&key).is_none());
        assert_eq!(store.corrupt_deleted(), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    fn set_mtime(path: &Path, secs: u64) {
        let f = std::fs::File::options().append(true).open(path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(
            std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs),
        ))
        .unwrap();
    }

    #[test]
    fn budget_evicts_lru_entries_and_gc_reports() {
        let dir = std::env::temp_dir().join(format!("svc-cache-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let blob = encode_blob(&[vec![7u8; 64]]);
        let entry_size = (5 + blob.len()) as u64;
        // Fill unbounded, pinning mtimes so LRU order is unambiguous
        // regardless of filesystem timestamp granularity.
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| CacheKey::of_manifest(&manifest(100 + i)))
            .collect();
        {
            let unbounded = DiskStore::new(&dir);
            for (i, key) in keys.iter().enumerate() {
                unbounded.put(key, &blob).unwrap();
                set_mtime(&dir.join(format!("{}.res", key.hex())), 1_000 + i as u64);
            }
        }
        // A corrupt straggler for gc to clean up.
        let junk = dir.join("deadbeef.res");
        std::fs::write(&junk, b"not an entry").unwrap();

        let store = DiskStore::new(&dir).with_budget(Some(entry_size * 2));
        let report = store.gc();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.corrupt_deleted, 1);
        assert_eq!(report.evicted, 1, "one entry over budget");
        assert_eq!(report.bytes_after, entry_size * 2);
        assert!(!junk.exists());
        assert!(
            store.get(&keys[0]).is_none(),
            "the least-recently-used entry is the victim"
        );
        assert!(store.get(&keys[1]).is_some());
        assert!(store.get(&keys[2]).is_some());

        // A write over budget evicts, but never the entry just written.
        let fresh = CacheKey::of_manifest(&manifest(200));
        store.put(&fresh, &blob).unwrap();
        assert!(store.get(&fresh).is_some());
        assert_eq!(store.evicted(), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_refreshes_mtime_for_lru_recency() {
        let dir = std::env::temp_dir().join(format!("svc-cache-touch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::new(&dir);
        let key = CacheKey::of_manifest(&manifest(300));
        store.put(&key, &encode_blob(&[vec![1]])).unwrap();
        let path = dir.join(format!("{}.res", key.hex()));
        set_mtime(&path, 1_000);
        let stale = std::fs::metadata(&path).unwrap().modified().unwrap();
        assert!(store.get(&key).is_some());
        let touched = std::fs::metadata(&path).unwrap().modified().unwrap();
        assert!(touched > stale, "a hit must refresh the entry's mtime");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
