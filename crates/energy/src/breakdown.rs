//! Node-level energy breakdown: the eight stacked series of the paper's
//! Figures 14 and 15.
//!
//! Each figure decomposes total node energy into, per component (CPU and
//! radio): sleep, idle, active, and wake-up-transitional energy.

use crate::accounting::StateTimes;
use crate::power::{ComponentPower, PowerState};
use crate::units::Energy;
use serde::{Deserialize, Serialize};

/// Energy of one component split by power state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentBreakdown {
    /// Energy spent asleep.
    pub sleep: Energy,
    /// Energy spent waking up (the "transitional energy" of the figures).
    pub wakeup: Energy,
    /// Energy spent idle.
    pub idle: Energy,
    /// Energy spent active.
    pub active: Energy,
}

impl ComponentBreakdown {
    /// Compute from dwell times and a power table.
    pub fn from_times(times: &StateTimes, power: &ComponentPower) -> Self {
        ComponentBreakdown {
            sleep: power.sleep.over_seconds(times.sleep),
            wakeup: power.wakeup.over_seconds(times.wakeup),
            idle: power.idle.over_seconds(times.idle),
            active: power.active.over_seconds(times.active),
        }
    }

    /// Total across the four states.
    pub fn total(&self) -> Energy {
        self.sleep + self.wakeup + self.idle + self.active
    }

    /// Energy of one state.
    pub fn in_state(&self, s: PowerState) -> Energy {
        match s {
            PowerState::Sleep => self.sleep,
            PowerState::Wakeup => self.wakeup,
            PowerState::Idle => self.idle,
            PowerState::Active => self.active,
        }
    }
}

/// Whole-node breakdown: CPU + radio, eight series total — one row of
/// Figure 14/15 at a given Power-Down Threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeBreakdown {
    /// CPU component.
    pub cpu: ComponentBreakdown,
    /// Radio component.
    pub radio: ComponentBreakdown,
}

impl NodeBreakdown {
    /// Total node energy.
    pub fn total(&self) -> Energy {
        self.cpu.total() + self.radio.total()
    }

    /// The eight series in the figures' legend order:
    /// radio wake-up, CPU wake-up, CPU active, CPU idle, CPU sleep,
    /// radio active, radio idle, radio sleep.
    pub fn series(&self) -> [(&'static str, Energy); 8] {
        [
            ("Radio Wake Up Transitional Energy", self.radio.wakeup),
            ("CPU Wake Up Transitional Energy", self.cpu.wakeup),
            ("CPU Active Energy", self.cpu.active),
            ("CPU Idle Energy", self.cpu.idle),
            ("CPU Sleep Energy", self.cpu.sleep),
            ("Radio Active Energy", self.radio.active),
            ("Radio Idle Energy", self.radio.idle),
            ("Radio Sleep Energy", self.radio.sleep),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{CC2420_RADIO, PXA271_CPU};

    fn cpu_times() -> StateTimes {
        let mut t = StateTimes::default();
        t.add(PowerState::Sleep, 800.0);
        t.add(PowerState::Wakeup, 10.0);
        t.add(PowerState::Idle, 50.0);
        t.add(PowerState::Active, 140.0);
        t
    }

    #[test]
    fn component_breakdown_matches_hand_math() {
        let b = ComponentBreakdown::from_times(&cpu_times(), &PXA271_CPU);
        assert!((b.sleep.joules() - 0.017 * 800.0).abs() < 1e-9);
        assert!((b.wakeup.joules() - 0.192976 * 10.0).abs() < 1e-9);
        assert!((b.idle.joules() - 0.088 * 50.0).abs() < 1e-9);
        assert!((b.active.joules() - 0.193 * 140.0).abs() < 1e-9);
        let total = b.total().joules();
        assert!((total - (13.6 + 1.92976 + 4.4 + 27.02)).abs() < 1e-9);
    }

    #[test]
    fn node_total_sums_components() {
        let cpu = ComponentBreakdown::from_times(&cpu_times(), &PXA271_CPU);
        let mut rt = StateTimes::default();
        rt.add(PowerState::Sleep, 990.0);
        rt.add(PowerState::Active, 10.0);
        let radio = ComponentBreakdown::from_times(&rt, &CC2420_RADIO);
        let node = NodeBreakdown { cpu, radio };
        assert!(
            (node.total().joules() - (cpu.total().joules() + radio.total().joules())).abs() < 1e-12
        );
    }

    #[test]
    fn series_cover_everything_once() {
        let cpu = ComponentBreakdown::from_times(&cpu_times(), &PXA271_CPU);
        let node = NodeBreakdown {
            cpu,
            radio: ComponentBreakdown::default(),
        };
        let series_total: f64 = node.series().iter().map(|(_, e)| e.joules()).sum();
        assert!((series_total - node.total().joules()).abs() < 1e-12);
        // Legend order matches the paper's figures.
        assert_eq!(node.series()[0].0, "Radio Wake Up Transitional Energy");
        assert_eq!(node.series()[4].0, "CPU Sleep Energy");
    }

    #[test]
    fn in_state_accessor() {
        let b = ComponentBreakdown::from_times(&cpu_times(), &PXA271_CPU);
        assert_eq!(b.in_state(PowerState::Sleep), b.sleep);
        assert_eq!(b.in_state(PowerState::Active), b.active);
    }
}
