//! # energy — power/energy bookkeeping substrate
//!
//! Typed units, the paper's power tables, state-time accounting, the
//! Fig. 14/15 energy breakdown, and battery-lifetime estimation.
//!
//! * [`units`] — `Power` (mW-backed) and `Energy` (J-backed) newtypes with
//!   dimensionally sound arithmetic.
//! * [`power`] — the four-state power vocabulary (`Sleep`/`Wakeup`/`Idle`/
//!   `Active`) and per-component power tables.
//! * [`tables`] — Table III (PXA271 CPU + CC2420 radio) and Table VII
//!   (measured IMote2) constants.
//! * [`accounting`] — dwell-time trackers and exact energy integration.
//! * [`breakdown`] — the eight stacked energy series of Figs. 14/15.
//! * [`battery`] — lifetime estimates (the paper's motivating metric).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod accounting;
pub mod battery;
pub mod breakdown;
pub mod power;
pub mod tables;
pub mod units;

pub use accounting::{StateTimes, StateTracker};
pub use battery::Battery;
pub use breakdown::{ComponentBreakdown, NodeBreakdown};
pub use power::{ComponentPower, FourState, PowerState};
pub use tables::{CC2420_RADIO, IMOTE2_MEASURED, PXA271_CPU};
pub use units::{Energy, Power};
