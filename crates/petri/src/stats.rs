//! Statistics utilities: streaming moments, confidence intervals, and batch
//! means for steady-state simulation output analysis.
//!
//! The implementation lives in the shared orchestration crate
//! ([`sim_runtime::stats`]) so the runtime's adaptive stopping rule and the
//! Petri replication machinery agree on one set of estimators; this module
//! re-exports it under the historical `petri_core::stats` path.

pub use sim_runtime::stats::*;
