//! Cross-replication batched execution: R independent replications of one
//! compiled net advanced together in a structure-of-arrays layout.
//!
//! The paper's steady-state experiments always run *many* independent
//! replications per sweep point. The [`BatchSimulator`] turns that
//! replication dimension into structure the engine can exploit:
//!
//! * **All static structure is shared.** The compiled conditions, guard
//!   programs, dense firing plans, CSR indices, and timing scalars of the
//!   borrowed [`Simulator`] are shared by every lane, and the per-batch
//!   arenas are allocated once per batch instead of once per replication.
//! * **All dynamic state is striped.** Per-transition scheduling state
//!   (`fire_at`/`gen`/`remaining`/`sched_state`/`unsat`/`imm_pos`/firing
//!   counts), per-condition truth bits, reward accumulators, the
//!   enabled-immediates index, and the xoshiro256++ RNG states live in flat
//!   arenas of `lanes × stride` — lane `l`'s slice starts at `l * stride`.
//!   Only the markings and the (dynamically growing) per-lane event heaps
//!   keep their own allocations.
//! * **Small nets drop the event heap.** With the per-lane `fire_at` times
//!   contiguous in the stripe, the next event of a ≤32-transition net is
//!   found by a linear scan for the minimum `(time, tid)` — which is
//!   provably the heap's valid-pop order (see [`BatchEngine::scan_next`]) —
//!   so the push/pop/lazy-invalidation bookkeeping disappears entirely.
//!   Wider nets keep the scalar engine's 4-ary lazy-deletion heaps.
//! * **Fully dense nets run a fused hot loop.** When every transition
//!   compiles to a dense firing plan (all of the paper's nets do), each
//!   lane runs in [`BatchEngine::run_lane_fast`]: clock, RNG, and
//!   zero-time counter live in locals, the firing/recheck/immediate helper
//!   calls are fused into one frame, and the per-firing place-walk plus
//!   `cond_epoch` dedup collapses into one precomputed
//!   transition→conditions row. Measured on the benchmark host this is
//!   where the batched speedup comes from (see BENCH_engine.json's `batch`
//!   section): interleaving lanes event-by-event to overlap their serial
//!   `ln()`+schedule chains — the obvious ILP story — was measured and
//!   *rejected*; the sampling chain is already pipelined, and round-robin
//!   stepping only thrashed branch history. Lanes therefore advance to
//!   completion one at a time; a lane with no event before its horizon
//!   integrates its reward tail and retires without disturbing the others,
//!   and a lane that errors retires with its error.
//!
//! # Determinism
//!
//! Lanes never interact: each owns its RNG, marking, schedule, counters,
//! and accumulators, and the shared scratch buffers are used by exactly one
//! lane at a time. Every lane therefore performs *exactly* the operation
//! sequence of the scalar engine ([`super::engine`]) run with the same seed
//! — the per-lane outputs are **bit-identical** to `Simulator::run`,
//! regardless of batch width or the order in which lanes retire. The
//! differential suite (`tests/batch_differential.rs`) proves it per commit,
//! the same way `run_reference` anchors the scalar engine.

use super::engine::{
    effective_token_limit, heap_less, CompiledSim, HeapEntry, RewardAcc, SimConfig, SimOutput,
    Simulator, TimingKind, NOT_QUEUED, ST_ENABLED, ST_RESAMPLE, ST_SCHEDULED,
};
use super::lower::SCAN_MAX_TRANSITIONS;
use super::rewards::RewardSpec;
use super::trace::TraceBuffer;
use crate::error::SimError;
use crate::expr::CompiledExpr;
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::Net;
use crate::rng::SimRng;
use crate::timing::MemoryPolicy;
use crate::token::Color;
use crate::transition::Transition;

/// Batched executor over a configured [`Simulator`]: runs many seeds at
/// once, returning per-seed results bit-identical to [`Simulator::run`].
///
/// Construction is free (the compiled structure is borrowed, not rebuilt);
/// per-run state is allocated per [`BatchSimulator::run`] call.
#[derive(Debug, Clone, Copy)]
pub struct BatchSimulator<'s, 'a> {
    sim: &'s Simulator<'a>,
}

impl<'s, 'a> BatchSimulator<'s, 'a> {
    /// Wrap a configured simulator for batched execution.
    pub fn new(sim: &'s Simulator<'a>) -> Self {
        BatchSimulator { sim }
    }

    /// Run one independent replication per seed, all at the simulator's
    /// configured horizon, on the simulator's selected engine.
    /// `result[i]` is bit-identical to `sim.run(seeds[i])`.
    pub fn run(&self, seeds: &[u64]) -> Vec<Result<SimOutput, SimError>> {
        let horizons = vec![self.sim.cfg.end_time; seeds.len()];
        self.run_with_horizons(seeds, &horizons)
    }

    /// Run one replication per seed with a **per-lane horizon**: lane `i`
    /// behaves exactly as the scalar engine would with `cfg.end_time`
    /// replaced by `end_times[i]` (shorter lanes retire mid-batch without
    /// disturbing the rest).
    ///
    /// Panics if the two slices differ in length.
    pub fn run_with_horizons(
        &self,
        seeds: &[u64],
        end_times: &[f64],
    ) -> Vec<Result<SimOutput, SimError>> {
        let out = match self.sim.engine() {
            super::engine::EngineKind::Interp => self.run_interp_with_horizons(seeds, end_times),
            super::engine::EngineKind::Lowered => self.run_lowered_with_horizons(seeds, end_times),
        };
        // Telemetry only, recorded after the whole batch: lane counts and
        // per-lane event totals, same series the scalar path feeds.
        let tele = sim_runtime::telemetry();
        let per_run = tele.histogram("engine_run_events");
        let mut runs = 0u64;
        let mut events = 0u64;
        for o in out.iter().flatten() {
            let e = o.total_firings();
            per_run.record(e);
            runs += 1;
            events += e;
        }
        tele.counter("engine_runs_total").add(runs);
        tele.counter("engine_events_total").add(events);
        out
    }

    /// Run on the interpreter's batch engine regardless of the simulator's
    /// engine selection (differential oracle / A/B baseline).
    pub fn run_interp(&self, seeds: &[u64]) -> Vec<Result<SimOutput, SimError>> {
        let horizons = vec![self.sim.cfg.end_time; seeds.len()];
        self.run_interp_with_horizons(seeds, &horizons)
    }

    /// Per-lane-horizon variant of [`BatchSimulator::run_interp`].
    pub fn run_interp_with_horizons(
        &self,
        seeds: &[u64],
        end_times: &[f64],
    ) -> Vec<Result<SimOutput, SimError>> {
        assert_eq!(seeds.len(), end_times.len(), "one horizon per seed");
        if seeds.is_empty() {
            return Vec::new();
        }
        BatchEngine::new(self.sim, seeds, end_times).run_all()
    }

    /// Run on the lowered micro-op engine regardless of the simulator's
    /// engine selection.
    pub fn run_lowered(&self, seeds: &[u64]) -> Vec<Result<SimOutput, SimError>> {
        let horizons = vec![self.sim.cfg.end_time; seeds.len()];
        self.run_lowered_with_horizons(seeds, &horizons)
    }

    /// Per-lane-horizon variant of [`BatchSimulator::run_lowered`].
    pub fn run_lowered_with_horizons(
        &self,
        seeds: &[u64],
        end_times: &[f64],
    ) -> Vec<Result<SimOutput, SimError>> {
        assert_eq!(seeds.len(), end_times.len(), "one horizon per seed");
        if seeds.is_empty() {
            return Vec::new();
        }
        super::lowered::LoweredEngine::new(self.sim, seeds, end_times).run_all()
    }
}

/// All per-batch state. Stride-`nt` arenas are indexed `l * nt + ti`,
/// stride-`nc` arenas `l * nc + ci`; scratch buffers are shared because
/// exactly one lane steps at a time.
struct BatchEngine<'e> {
    net: &'e Net,
    cfg: &'e SimConfig,
    /// `cfg.max_tokens_per_place` clamped below the u32 count ceiling.
    max_tokens: usize,
    cs: &'e CompiledSim,
    pred_progs: &'e [Option<CompiledExpr>],
    /// `firing_hooks[t]` = indices of counter accumulators watching `t`.
    firing_hooks: &'e [Vec<u32>],
    lanes: usize,
    /// Transition count (stride of the per-transition arenas).
    nt: usize,
    /// Condition count (stride of the per-condition arenas).
    nc: usize,
    /// Reward count (stride of the accumulator arena).
    nr: usize,
    /// Immediate-transition count (stride of the enabled-immediates arena).
    ni: usize,
    /// Per-lane horizon (uniform `cfg.end_time` unless overridden).
    end_time: Vec<f64>,
    /// Per-lane RNG states, contiguous (32 bytes each).
    rng: Vec<SimRng>,
    now: Vec<f64>,
    markings: Vec<Marking>,
    /// Scan scheduler active (small nets): next event = min `(fire_at,
    /// tid)` over the lane's stripe; the heaps stay empty and `gen` is
    /// never bumped.
    scan: bool,
    /// Fused fast path active: the whole net compiles to count arithmetic
    /// (all transitions timed with dense plans, all conditions bare count
    /// thresholds, no predicate rewards), so each lane runs in a single
    /// tight loop with its clock and RNG held in locals. Implies `scan`.
    fast: bool,
    /// Fast path only: transition → deduplicated condition indices whose
    /// truth can change when it fires (CSR: `touched_conds_off[ti]..[ti+1]`
    /// indexes `touched_conds`). Replaces the per-place walk plus the
    /// `cond_epoch` dedup machinery with one precomputed flat row.
    touched_conds: Vec<u32>,
    touched_conds_off: Vec<u32>,
    /// Per-lane 4-ary event heaps (own allocations: they grow dynamically).
    /// Empty husks when the scan scheduler is active.
    heaps: Vec<Vec<HeapEntry>>,
    /// Pending firing time per (lane, transition); NaN = unscheduled.
    fire_at: Vec<f64>,
    /// Heap-entry generation counter per (lane, transition).
    gen: Vec<u64>,
    /// Frozen remaining delay (RaceAge only) per (lane, transition).
    remaining: Vec<f64>,
    /// Packed (enabled, scheduled, resample) bits per (lane, transition).
    sched_state: Vec<u8>,
    /// Current truth of each condition per lane.
    cond_true: Vec<bool>,
    /// Firing epoch at which each (lane, condition) was last re-evaluated.
    cond_epoch: Vec<u64>,
    epoch: Vec<u64>,
    /// Count of false conditions per (lane, transition); 0 ⇔ enabled.
    unsat: Vec<u32>,
    /// Enabled immediates per lane: `enabled_imm[l*ni..l*ni+imm_len[l]]`.
    enabled_imm: Vec<u32>,
    imm_len: Vec<u32>,
    imm_pos: Vec<u32>,
    firing_counts: Vec<u64>,
    /// Reward accumulators per (lane, reward).
    accs: Vec<RewardAcc>,
    /// Scratch stack for compiled guard/predicate programs (shared).
    guard_scratch: Vec<i64>,
    /// Scratch: colors consumed by the current firing (shared).
    consumed: Vec<Color>,
    consumed_offsets: Vec<usize>,
    /// Scratch for immediate conflict resolution (shared).
    candidates: Vec<u32>,
    weights: Vec<f64>,
    traces: Vec<TraceBuffer>,
    zero_time_firings: Vec<u64>,
}

impl<'e> BatchEngine<'e> {
    fn new(sim: &'e Simulator<'_>, seeds: &[u64], end_times: &[f64]) -> Self {
        let net = sim.net;
        let cs = &sim.compiled;
        let lanes = seeds.len();
        let nt = net.num_transitions();
        let nc = cs.conds.len();
        let nr = sim.rewards.len();
        let ni = cs.immediates.len();

        // Per-reward accumulator template, cloned into every lane's stripe.
        let acc_template: Vec<RewardAcc> = sim
            .rewards
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                RewardSpec::PlaceTokens(p) => RewardAcc::PlaceTokens {
                    place: *p,
                    integral: 0.0,
                },
                RewardSpec::Predicate(_) => RewardAcc::Predicate {
                    prog: i,
                    integral: 0.0,
                },
                RewardSpec::Throughput(_) => RewardAcc::Throughput { count: 0 },
                RewardSpec::FiringCount(_) => RewardAcc::FiringCount { count: 0 },
            })
            .collect();
        let pred_stack = sim
            .pred_progs
            .iter()
            .flatten()
            .map(|p| p.stack_needed())
            .max()
            .unwrap_or(0);
        // Scheduling-state template: the Resample bit is static.
        let mut st_template = vec![0u8; nt];
        for (ti, h) in cs.hot.iter().enumerate() {
            if h.kind != TimingKind::Immediate && h.memory == MemoryPolicy::Resample {
                st_template[ti] = ST_RESAMPLE;
            }
        }
        let mut accs = Vec::with_capacity(lanes * nr);
        for _ in 0..lanes {
            accs.extend(acc_template.iter().cloned());
        }

        let scan = nt <= SCAN_MAX_TRANSITIONS;
        let fast = scan && cs.plans.iter().all(|p| p.is_some());
        // Transition → dedup'd affected conditions, in the generic path's
        // first-touch order (the epoch machinery's visit order).
        let mut touched_conds = Vec::new();
        let mut touched_conds_off = Vec::with_capacity(nt + 1);
        touched_conds_off.push(0u32);
        if fast {
            let mut seen = vec![false; nc];
            for ti in 0..nt {
                let start = touched_conds.len();
                for &p in cs.touched.row(ti) {
                    for &ci in cs.place_conds.row(p as usize) {
                        if !seen[ci as usize] {
                            seen[ci as usize] = true;
                            touched_conds.push(ci);
                        }
                    }
                }
                for &ci in &touched_conds[start..] {
                    seen[ci as usize] = false;
                }
                touched_conds_off.push(touched_conds.len() as u32);
            }
        }
        let mut eng = BatchEngine {
            net,
            cfg: &sim.cfg,
            max_tokens: effective_token_limit(&sim.cfg),
            cs,
            pred_progs: &sim.pred_progs,
            firing_hooks: &sim.firing_hooks,
            lanes,
            nt,
            nc,
            nr,
            ni,
            end_time: end_times.to_vec(),
            rng: seeds.iter().map(|&s| SimRng::seed_from_u64(s)).collect(),
            now: vec![0.0; lanes],
            markings: (0..lanes).map(|_| net.initial_marking()).collect(),
            scan,
            fast,
            touched_conds,
            touched_conds_off,
            heaps: (0..lanes)
                .map(|_| Vec::with_capacity(if scan { 0 } else { nt * 2 }))
                .collect(),
            fire_at: vec![f64::NAN; lanes * nt],
            gen: vec![0; lanes * nt],
            remaining: vec![f64::NAN; lanes * nt],
            sched_state: st_template.repeat(lanes),
            cond_true: vec![false; lanes * nc],
            cond_epoch: vec![0; lanes * nc],
            epoch: vec![0; lanes],
            unsat: vec![0; lanes * nt],
            enabled_imm: vec![0; lanes * ni],
            imm_len: vec![0; lanes],
            imm_pos: vec![NOT_QUEUED; lanes * nt],
            firing_counts: vec![0; lanes * nt],
            accs,
            guard_scratch: Vec::with_capacity(cs.guard_stack.max(pred_stack)),
            consumed: Vec::with_capacity(8),
            consumed_offsets: Vec::with_capacity(8),
            candidates: Vec::with_capacity(4),
            weights: Vec::with_capacity(4),
            traces: (0..lanes)
                .map(|_| TraceBuffer::new(sim.cfg.trace_capacity))
                .collect(),
            zero_time_firings: vec![0; lanes],
        };
        for l in 0..lanes {
            eng.init_conditions(l);
        }
        eng
    }

    // ---- incremental enabling (per lane; mirrors the scalar engine) ----

    fn init_conditions(&mut self, l: usize) {
        let cs = self.cs;
        let tb = l * self.nt;
        let cb = l * self.nc;
        self.unsat[tb..tb + self.nt].copy_from_slice(&cs.base_unsat);
        for (ci, cond) in cs.conds.iter().enumerate() {
            let t = cs.eval_cond(&self.markings[l], &mut self.guard_scratch, cond);
            self.cond_true[cb + ci] = t;
            if !t {
                self.unsat[tb + cond.tid as usize] += 1;
            }
        }
        for ti in 0..self.nt {
            if self.unsat[tb + ti] == 0 {
                self.sched_state[tb + ti] |= ST_ENABLED;
            }
        }
        for &tid in &cs.immediates {
            if self.unsat[tb + tid.index()] == 0 {
                self.imm_insert(l, tid.0);
            }
        }
    }

    fn refresh_place(&mut self, l: usize, p: u32) {
        let cs = self.cs;
        let tb = l * self.nt;
        let cb = l * self.nc;
        for &ci in cs.place_conds.row(p as usize) {
            if self.cond_epoch[cb + ci as usize] == self.epoch[l] {
                continue;
            }
            self.cond_epoch[cb + ci as usize] = self.epoch[l];
            let cond = &cs.conds[ci as usize];
            let now_true = cs.eval_cond(&self.markings[l], &mut self.guard_scratch, cond);
            if now_true == self.cond_true[cb + ci as usize] {
                continue;
            }
            self.cond_true[cb + ci as usize] = now_true;
            let ti = cond.tid as usize;
            let is_imm = cs.hot[ti].kind == TimingKind::Immediate;
            if now_true {
                self.unsat[tb + ti] -= 1;
                if self.unsat[tb + ti] == 0 {
                    self.sched_state[tb + ti] |= ST_ENABLED;
                    if is_imm {
                        self.imm_insert(l, cond.tid);
                    }
                }
            } else {
                if self.unsat[tb + ti] == 0 {
                    self.sched_state[tb + ti] &= !ST_ENABLED;
                    if is_imm {
                        self.imm_remove(l, cond.tid);
                    }
                }
                self.unsat[tb + ti] += 1;
            }
        }
    }

    #[inline]
    fn imm_insert(&mut self, l: usize, tid: u32) {
        debug_assert_eq!(self.imm_pos[l * self.nt + tid as usize], NOT_QUEUED);
        let len = self.imm_len[l];
        self.imm_pos[l * self.nt + tid as usize] = len;
        self.enabled_imm[l * self.ni + len as usize] = tid;
        self.imm_len[l] = len + 1;
    }

    #[inline]
    fn imm_remove(&mut self, l: usize, tid: u32) {
        let i = self.imm_pos[l * self.nt + tid as usize];
        debug_assert_ne!(i, NOT_QUEUED);
        self.imm_pos[l * self.nt + tid as usize] = NOT_QUEUED;
        let last = self.imm_len[l] - 1;
        self.imm_len[l] = last;
        let moved = self.enabled_imm[l * self.ni + last as usize];
        if i < last {
            self.enabled_imm[l * self.ni + i as usize] = moved;
            self.imm_pos[l * self.nt + moved as usize] = i;
        }
    }

    /// Full-rescan enabling check: `debug_assert!` oracle, like the scalar
    /// engine's.
    #[cfg(debug_assertions)]
    fn is_enabled_slow(&self, l: usize, t: &Transition) -> bool {
        t.inputs
            .iter()
            .all(|a| self.markings[l].count_matching(a.place, &a.filter) >= a.multiplicity as usize)
            && t.inhibitors
                .iter()
                .all(|a| self.markings[l].count_matching(a.place, &a.filter) < a.threshold as usize)
            && t.guard
                .as_ref()
                .is_none_or(|g| g.eval_bool(&self.markings[l]))
    }

    #[cfg(debug_assertions)]
    fn assert_enabled_consistent(&self, l: usize, tid: TransitionId) {
        let slow = self.is_enabled_slow(l, self.net.transition(tid));
        debug_assert_eq!(
            self.unsat[l * self.nt + tid.index()] == 0,
            slow,
            "batched enabled bit diverged from rescan for {:?}",
            self.net.transition(tid).name
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn assert_enabled_consistent(&self, _l: usize, _tid: TransitionId) {}

    // ---- event heap (lazy invalidation, 4-ary, per lane) ----

    #[inline]
    fn heap_push(&mut self, l: usize, e: HeapEntry) {
        let heap = &mut self.heaps[l];
        let mut i = heap.len();
        heap.push(e);
        while i > 0 {
            let parent = (i - 1) / 4;
            if heap_less(&e, &heap[parent]) {
                heap[i] = heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        heap[i] = e;
    }

    fn heap_pop(&mut self, l: usize) -> Option<HeapEntry> {
        let heap = &mut self.heaps[l];
        let top = *heap.first()?;
        let last = heap.pop().expect("non-empty");
        let n = heap.len();
        if n == 0 {
            return Some(top);
        }
        let mut i = 0;
        loop {
            let c0 = 4 * i + 1;
            if c0 >= n {
                break;
            }
            let mut smallest = c0;
            let cend = (c0 + 4).min(n);
            for c in c0 + 1..cend {
                if heap_less(&heap[c], &heap[smallest]) {
                    smallest = c;
                }
            }
            if heap_less(&heap[smallest], &last) {
                heap[i] = heap[smallest];
                i = smallest;
            } else {
                break;
            }
        }
        heap[i] = last;
        Some(top)
    }

    // ---- scheduling ----

    fn schedule(&mut self, l: usize, ti: usize, at: f64) {
        let tb = l * self.nt;
        self.fire_at[tb + ti] = at;
        self.sched_state[tb + ti] |= ST_SCHEDULED;
        if !self.scan {
            self.gen[tb + ti] += 1;
            let e = HeapEntry {
                time: at,
                tid: ti as u32,
                gen: self.gen[tb + ti],
            };
            self.heap_push(l, e);
        }
    }

    fn cancel(&mut self, l: usize, ti: usize) -> f64 {
        let tb = l * self.nt;
        debug_assert!(!self.fire_at[tb + ti].is_nan());
        if !self.scan {
            self.gen[tb + ti] += 1;
        }
        self.sched_state[tb + ti] &= !ST_SCHEDULED;
        let at = self.fire_at[tb + ti];
        self.fire_at[tb + ti] = f64::NAN;
        at
    }

    /// Scan scheduler: the next event is the minimum `(fire_at, tid)` over
    /// the lane's scheduled transitions. This is *exactly* the heap's
    /// valid-pop order — [`heap_less`] orders entries by
    /// `(time.total_cmp, tid, gen)` and every scheduled transition has
    /// exactly one live entry, so `gen` only ever separates stale
    /// duplicates the validity loop would discard anyway. The stripe is
    /// contiguous SoA memory, so for small nets this replaces the
    /// push/pop/invalidate bookkeeping with a handful of loads per event.
    #[inline]
    fn scan_next(&self, l: usize) -> Option<(f64, u32)> {
        let tb = l * self.nt;
        let mut best: Option<(f64, u32)> = None;
        for (ti, &at) in self.fire_at[tb..tb + self.nt].iter().enumerate() {
            if at.is_nan() {
                continue;
            }
            if best.is_none_or(|(bt, _)| at.total_cmp(&bt).is_lt()) {
                best = Some((at, ti as u32));
            }
        }
        best
    }

    fn recheck_timed(&mut self, l: usize, tid: TransitionId) {
        self.assert_enabled_consistent(l, tid);
        let ti = tid.index();
        let tb = l * self.nt;
        let hot = &self.cs.hot[ti];
        debug_assert!(hot.kind != TimingKind::Immediate);
        let state = self.sched_state[tb + ti];
        let enabled = state & ST_ENABLED != 0;
        let scheduled = state & ST_SCHEDULED != 0;
        debug_assert_eq!(enabled, self.unsat[tb + ti] == 0);
        debug_assert_eq!(scheduled, !self.fire_at[tb + ti].is_nan());
        match (enabled, scheduled) {
            (true, false) => {
                let delay =
                    if hot.memory == MemoryPolicy::RaceAge && !self.remaining[tb + ti].is_nan() {
                        let r = self.remaining[tb + ti];
                        self.remaining[tb + ti] = f64::NAN;
                        r
                    } else {
                        hot.sample_delay(&mut self.rng[l])
                    };
                self.schedule(l, ti, self.now[l] + delay);
            }
            (true, true) => {
                if hot.memory == MemoryPolicy::Resample {
                    self.cancel(l, ti);
                    let delay = hot.sample_delay(&mut self.rng[l]);
                    self.schedule(l, ti, self.now[l] + delay);
                }
                // RaceEnable / RaceAge: clock keeps running.
            }
            (false, true) => {
                let fire_at = self.cancel(l, ti);
                if hot.memory == MemoryPolicy::RaceAge {
                    self.remaining[tb + ti] = (fire_at - self.now[l]).max(0.0);
                }
            }
            (false, false) => {}
        }
    }

    fn update_schedules_after(&mut self, l: usize, fired: TransitionId) {
        let cs = self.cs;
        let tb = l * self.nt;
        for &tid in cs.recheck_timed.row(fired.index()) {
            let s = self.sched_state[tb + tid as usize];
            if s == ST_ENABLED | ST_SCHEDULED || s & (ST_ENABLED | ST_SCHEDULED) == 0 {
                self.assert_enabled_consistent(l, TransitionId(tid));
                continue;
            }
            self.recheck_timed(l, TransitionId(tid));
        }
    }

    // ---- firing ----

    fn fire(&mut self, l: usize, tid: TransitionId) -> Result<(), SimError> {
        let ti = tid.index();
        let cs = self.cs;
        if let Some(plan) = &cs.plans[ti] {
            let (i0, i1) = plan.ins;
            let (o0, o1) = plan.outs;
            for &(p, m) in &cs.plan_dat[i0 as usize..i1 as usize] {
                self.markings[l].sub_plain(p, m);
            }
            for &(p, m) in &cs.plan_dat[o0 as usize..o1 as usize] {
                let c = self.markings[l].add_plain(p, m);
                if c as usize > self.max_tokens {
                    return Err(SimError::TokenOverflow {
                        place: p as usize,
                        time: self.now[l],
                        limit: self.cfg.max_tokens_per_place,
                    });
                }
            }
        } else {
            let net = self.net;
            let t: &Transition = &net.transitions()[ti];
            self.consumed.clear();
            self.consumed_offsets.clear();
            for arc in &t.inputs {
                self.consumed_offsets.push(self.consumed.len());
                for _ in 0..arc.multiplicity {
                    let c = self.markings[l]
                        .withdraw(arc.place, &arc.filter)
                        .expect("transition fired while not enabled");
                    self.consumed.push(c);
                }
            }
            for arc in &t.outputs {
                for _ in 0..arc.multiplicity {
                    let c =
                        arc.color
                            .eval(&self.consumed, &self.consumed_offsets, &mut self.rng[l]);
                    self.markings[l].deposit(arc.place, c);
                }
                if self.markings[l].count(arc.place) > self.max_tokens {
                    return Err(SimError::TokenOverflow {
                        place: arc.place.index(),
                        time: self.now[l],
                        limit: self.cfg.max_tokens_per_place,
                    });
                }
            }
        }
        self.epoch[l] += 1;
        for &p in cs.touched.row(ti) {
            self.refresh_place(l, p);
        }
        self.firing_counts[l * self.nt + ti] += 1;
        if self.cfg.trace_capacity > 0 {
            self.traces[l].record(self.now[l], tid);
        }
        if self.now[l] >= self.cfg.warmup && !self.firing_hooks[ti].is_empty() {
            for hi in 0..self.firing_hooks[ti].len() {
                let ai = self.firing_hooks[ti][hi] as usize;
                match &mut self.accs[l * self.nr + ai] {
                    RewardAcc::Throughput { count } | RewardAcc::FiringCount { count } => {
                        *count += 1
                    }
                    _ => unreachable!("firing hook points at a counter reward"),
                }
            }
        }
        Ok(())
    }

    fn fire_immediates(&mut self, l: usize) -> Result<(), SimError> {
        loop {
            #[cfg(debug_assertions)]
            self.assert_imm_index_consistent(l);
            let len = self.imm_len[l] as usize;
            if len == 0 {
                break;
            }
            let base = l * self.ni;
            self.candidates.clear();
            let mut best_pri = 0u8;
            for i in 0..len {
                let tid = self.enabled_imm[base + i];
                let pri = self.cs.hot[tid as usize].priority;
                if self.candidates.is_empty() || pri > best_pri {
                    best_pri = pri;
                    self.candidates.clear();
                    self.candidates.push(tid);
                } else if pri == best_pri {
                    self.candidates.push(tid);
                }
            }
            self.candidates.sort_unstable();
            let chosen = if self.candidates.len() == 1 {
                self.candidates[0]
            } else {
                self.weights.clear();
                for i in 0..self.candidates.len() {
                    self.weights
                        .push(self.cs.hot[self.candidates[i] as usize].weight);
                }
                self.candidates[self.rng[l].weighted_choice(&self.weights)]
            };
            let chosen = TransitionId(chosen);
            self.fire(l, chosen)?;
            self.update_schedules_after(l, chosen);
            self.bump_zero_time_counter(l)?;
        }
        Ok(())
    }

    #[cfg(debug_assertions)]
    fn assert_imm_index_consistent(&self, l: usize) {
        for &tid in &self.cs.immediates {
            let in_index = self.imm_pos[l * self.nt + tid.index()] != NOT_QUEUED;
            let enabled = self.is_enabled_slow(l, self.net.transition(tid));
            debug_assert_eq!(
                in_index,
                enabled,
                "batched enabled-immediates index diverged for {:?}",
                self.net.transition(tid).name
            );
        }
    }

    #[inline]
    fn bump_zero_time_counter(&mut self, l: usize) -> Result<(), SimError> {
        self.zero_time_firings[l] += 1;
        if self.zero_time_firings[l] > self.cfg.max_zero_time_firings {
            return Err(SimError::ImmediateLivelock {
                time: self.now[l],
                limit: self.cfg.max_zero_time_firings,
            });
        }
        Ok(())
    }

    // ---- reward integration ----

    fn integrate_rewards(&mut self, l: usize, until: f64) {
        if self.nr == 0 {
            return;
        }
        let from = self.now[l].max(self.cfg.warmup);
        let dt = until - from;
        if dt <= 0.0 {
            return;
        }
        let ab = l * self.nr;
        for ai in 0..self.nr {
            match &mut self.accs[ab + ai] {
                RewardAcc::PlaceTokens { place, integral } => {
                    *integral += self.markings[l].count(*place) as f64 * dt;
                }
                RewardAcc::Predicate { prog, integral } => {
                    let prog = self.pred_progs[*prog]
                        .as_ref()
                        .expect("predicate reward has a compiled program");
                    if prog.eval_bool(&self.markings[l], &mut self.guard_scratch) {
                        *integral += dt;
                    }
                }
                RewardAcc::Throughput { .. } | RewardAcc::FiringCount { .. } => {}
            }
        }
    }

    // ---- lane lifecycle ----

    /// Initial scheduling pass + time-zero immediate cascade (the scalar
    /// engine's pre-loop work).
    fn start(&mut self, l: usize) -> Result<(), SimError> {
        for ti in 0..self.nt {
            if self.cs.hot[ti].kind != TimingKind::Immediate {
                self.recheck_timed(l, TransitionId(ti as u32));
            }
        }
        self.fire_immediates(l)
    }

    /// Advance lane `l` by one timed event plus its immediate cascade —
    /// exactly one iteration of the scalar engine's main loop. Returns
    /// `Some(result)` when the lane finished (horizon reached or error).
    fn step(&mut self, l: usize) -> Option<Result<SimOutput, SimError>> {
        let tb = l * self.nt;
        let next: Option<(f64, u32)> = if self.scan {
            self.scan_next(l)
        } else {
            // Surface the next *valid* heap entry (stale ones die here).
            loop {
                match self.heaps[l].first() {
                    None => break None,
                    Some(e) => {
                        if e.gen == self.gen[tb + e.tid as usize] {
                            break Some((e.time, e.tid));
                        }
                        self.heap_pop(l);
                    }
                }
            }
        };

        match next {
            Some((time, tid)) if time < self.end_time[l] => {
                if !self.scan {
                    self.heap_pop(l);
                    self.gen[tb + tid as usize] += 1;
                }
                let ti = tid as usize;
                let tid = TransitionId(tid);
                self.integrate_rewards(l, time);
                if time > self.now[l] {
                    self.zero_time_firings[l] = 0;
                }
                self.now[l] = time;
                // Consume the schedule entry.
                self.fire_at[tb + ti] = f64::NAN;
                self.sched_state[tb + ti] &= !ST_SCHEDULED;
                if let Err(err) = self.fire(l, tid) {
                    return Some(Err(err));
                }
                if let Err(err) = self.bump_zero_time_counter(l) {
                    return Some(Err(err));
                }
                self.update_schedules_after(l, tid);
                if let Err(err) = self.fire_immediates(l) {
                    return Some(Err(err));
                }
                None
            }
            _ => {
                // No more events before this lane's horizon: integrate the
                // tail and retire.
                let end = self.end_time[l];
                self.integrate_rewards(l, end);
                self.now[l] = end;
                Some(Ok(self.finalize(l)))
            }
        }
    }

    fn finalize(&mut self, l: usize) -> SimOutput {
        let tb = l * self.nt;
        let observed = (self.end_time[l] - self.cfg.warmup).max(0.0);
        let ab = l * self.nr;
        let rewards = self.accs[ab..ab + self.nr]
            .iter()
            .map(|acc| match acc {
                RewardAcc::PlaceTokens { integral, .. } | RewardAcc::Predicate { integral, .. } => {
                    if observed > 0.0 {
                        integral / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::Throughput { count } => {
                    if observed > 0.0 {
                        *count as f64 / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::FiringCount { count } => *count as f64,
            })
            .collect();
        let trace = std::mem::take(&mut self.traces[l]);
        SimOutput {
            end_time: self.end_time[l],
            observed_time: observed,
            rewards,
            firing_counts: self.firing_counts[tb..tb + self.nt].to_vec(),
            final_marking: self.markings[l].clone(),
            trace_dropped: trace.dropped,
            trace: trace.into_events(),
        }
    }

    /// Fast-path firing: apply transition `ti`'s dense plan, refresh the
    /// affected conditions via the precomputed `touched_conds` row (no
    /// epoch bookkeeping), and record counters/trace/hooks — the fused
    /// equivalent of the generic [`BatchEngine::fire`]. `now` is the
    /// lane-local clock (already advanced to the firing time).
    #[inline(always)]
    fn fire_fast(&mut self, l: usize, ti: usize, now: f64) -> Result<(), SimError> {
        let cs = self.cs;
        let tb = l * self.nt;
        let plan = cs.plans[ti].as_ref().expect("fast path needs dense plans");
        {
            let m = &mut self.markings[l];
            let (i0, i1) = plan.ins;
            for &(p, mlt) in &cs.plan_dat[i0 as usize..i1 as usize] {
                m.sub_plain(p, mlt);
            }
            let (o0, o1) = plan.outs;
            for &(p, mlt) in &cs.plan_dat[o0 as usize..o1 as usize] {
                let c = m.add_plain(p, mlt);
                if c as usize > self.max_tokens {
                    return Err(SimError::TokenOverflow {
                        place: p as usize,
                        time: now,
                        limit: self.cfg.max_tokens_per_place,
                    });
                }
            }
        }
        // Re-evaluate the affected conditions. The precomputed row lists
        // them in the generic path's first-touch order and already dedups,
        // so the epoch machinery has nothing left to do.
        let (c0, c1) = (
            self.touched_conds_off[ti] as usize,
            self.touched_conds_off[ti + 1] as usize,
        );
        for i in c0..c1 {
            let ci = self.touched_conds[i] as usize;
            let cond = &cs.conds[ci];
            let now_true = cs.eval_cond(&self.markings[l], &mut self.guard_scratch, cond);
            if now_true == self.cond_true[l * self.nc + ci] {
                continue;
            }
            self.cond_true[l * self.nc + ci] = now_true;
            let ct = tb + cond.tid as usize;
            let is_imm = cs.hot[cond.tid as usize].kind == TimingKind::Immediate;
            if now_true {
                self.unsat[ct] -= 1;
                if self.unsat[ct] == 0 {
                    self.sched_state[ct] |= ST_ENABLED;
                    if is_imm {
                        self.imm_insert(l, cond.tid);
                    }
                }
            } else {
                if self.unsat[ct] == 0 {
                    self.sched_state[ct] &= !ST_ENABLED;
                    if is_imm {
                        self.imm_remove(l, cond.tid);
                    }
                }
                self.unsat[ct] += 1;
            }
        }
        self.firing_counts[tb + ti] += 1;
        if self.cfg.trace_capacity > 0 {
            self.traces[l].record(now, TransitionId(ti as u32));
        }
        if now >= self.cfg.warmup && !self.firing_hooks[ti].is_empty() {
            for hi in 0..self.firing_hooks[ti].len() {
                let ai = self.firing_hooks[ti][hi] as usize;
                match &mut self.accs[l * self.nr + ai] {
                    RewardAcc::Throughput { count } | RewardAcc::FiringCount { count } => {
                        *count += 1
                    }
                    _ => unreachable!("firing hook points at a counter reward"),
                }
            }
        }
        Ok(())
    }

    /// Fast-path re-scheduling after `ti` fired: the generic
    /// [`BatchEngine::update_schedules_after`] plus `recheck_timed`, fused,
    /// with the lane RNG in a local and the heap-free scan bookkeeping.
    #[inline(always)]
    fn recheck_fast(&mut self, l: usize, ti: usize, now: f64, rng: &mut SimRng) {
        let cs = self.cs;
        let tb = l * self.nt;
        for &t2 in cs.recheck_timed.row(ti) {
            let idx = tb + t2 as usize;
            let s = self.sched_state[idx];
            if s == ST_ENABLED | ST_SCHEDULED || s & (ST_ENABLED | ST_SCHEDULED) == 0 {
                continue;
            }
            let hot = &cs.hot[t2 as usize];
            let enabled = s & ST_ENABLED != 0;
            let scheduled = s & ST_SCHEDULED != 0;
            if enabled && scheduled {
                // Only Resample transitions carry all three bits past the
                // skip above: redraw the clock in place.
                debug_assert_eq!(hot.memory, MemoryPolicy::Resample);
                let delay = hot.sample_delay(rng);
                self.fire_at[idx] = now + delay;
            } else if enabled {
                let delay = if hot.memory == MemoryPolicy::RaceAge && !self.remaining[idx].is_nan()
                {
                    let r = self.remaining[idx];
                    self.remaining[idx] = f64::NAN;
                    r
                } else {
                    hot.sample_delay(rng)
                };
                self.fire_at[idx] = now + delay;
                self.sched_state[idx] = s | ST_SCHEDULED;
            } else {
                debug_assert!(!self.fire_at[idx].is_nan());
                let at = self.fire_at[idx];
                self.fire_at[idx] = f64::NAN;
                self.sched_state[idx] = s & !ST_SCHEDULED;
                if hot.memory == MemoryPolicy::RaceAge {
                    self.remaining[idx] = (at - now).max(0.0);
                }
            }
        }
    }

    /// Fused fast path: drive lane `l` from post-`start` state to
    /// completion in one tight loop, with the lane's clock, RNG, and
    /// zero-time counter in locals and the per-event helper calls fused
    /// into this frame. Precondition (`self.fast`): every transition has a
    /// dense firing plan, so firing never draws colors and an event is
    /// count arithmetic plus delay samples. Every operation replays the
    /// generic path's exact sequence (same RNG draws, same comparisons,
    /// same error precedence), so the per-lane outputs stay bit-identical
    /// to the scalar engine; the differential suite checks that.
    fn run_lane_fast(&mut self, l: usize) -> Result<SimOutput, SimError> {
        debug_assert!(self.fast);
        let nt = self.nt;
        let tb = l * nt;
        let end = self.end_time[l];
        let warmup = self.cfg.warmup;
        let mut rng = self.rng[l].clone();
        let mut now = self.now[l];
        let mut zero = self.zero_time_firings[l];

        let res: Result<(), SimError> = 'run: loop {
            // Scan the lane's stripe for the next event: min `(time, tid)`
            // over scheduled transitions, as in `scan_next`.
            let mut best_t = 0.0f64;
            let mut best_ti = u32::MAX;
            for (ti, &at) in self.fire_at[tb..tb + nt].iter().enumerate() {
                if !at.is_nan() && (best_ti == u32::MAX || at.total_cmp(&best_t).is_lt()) {
                    best_t = at;
                    best_ti = ti as u32;
                }
            }
            // `best_t < end` (not `>=`) mirrors the scalar engine's
            // `e.time < cfg.end_time` guard, including a NaN horizon.
            let has_event = best_ti != u32::MAX && best_t < end;
            if !has_event {
                break 'run Ok(());
            }
            let t = best_t;
            let ti = best_ti as usize;

            // Reward integration up to the event (old `now` is the lower
            // bound, exactly like `integrate_rewards`).
            if self.nr != 0 {
                let from = now.max(warmup);
                let dt = t - from;
                if dt > 0.0 {
                    let ab = l * self.nr;
                    for ai in 0..self.nr {
                        match &mut self.accs[ab + ai] {
                            RewardAcc::PlaceTokens { place, integral } => {
                                *integral += self.markings[l].count(*place) as f64 * dt;
                            }
                            RewardAcc::Predicate { prog, integral } => {
                                let prog = self.pred_progs[*prog]
                                    .as_ref()
                                    .expect("predicate reward has a compiled program");
                                if prog.eval_bool(&self.markings[l], &mut self.guard_scratch) {
                                    *integral += dt;
                                }
                            }
                            RewardAcc::Throughput { .. } | RewardAcc::FiringCount { .. } => {}
                        }
                    }
                }
            }
            if t > now {
                zero = 0;
            }
            now = t;
            // Consume the schedule entry, then fire: the generic `step`'s
            // fire → zero-bump → recheck → immediates order.
            self.fire_at[tb + ti] = f64::NAN;
            self.sched_state[tb + ti] &= !ST_SCHEDULED;
            if let Err(e) = self.fire_fast(l, ti, now) {
                break 'run Err(e);
            }
            zero += 1;
            if zero > self.cfg.max_zero_time_firings {
                break 'run Err(SimError::ImmediateLivelock {
                    time: now,
                    limit: self.cfg.max_zero_time_firings,
                });
            }
            self.recheck_fast(l, ti, now, &mut rng);

            // Immediate cascade: the generic `fire_immediates` with the
            // lane RNG local (fire → recheck → zero-bump order).
            loop {
                let len = self.imm_len[l] as usize;
                if len == 0 {
                    break;
                }
                let base = l * self.ni;
                self.candidates.clear();
                let mut best_pri = 0u8;
                for i in 0..len {
                    let tid = self.enabled_imm[base + i];
                    let pri = self.cs.hot[tid as usize].priority;
                    if self.candidates.is_empty() || pri > best_pri {
                        best_pri = pri;
                        self.candidates.clear();
                        self.candidates.push(tid);
                    } else if pri == best_pri {
                        self.candidates.push(tid);
                    }
                }
                self.candidates.sort_unstable();
                let chosen = if self.candidates.len() == 1 {
                    self.candidates[0]
                } else {
                    self.weights.clear();
                    for i in 0..self.candidates.len() {
                        self.weights
                            .push(self.cs.hot[self.candidates[i] as usize].weight);
                    }
                    self.candidates[rng.weighted_choice(&self.weights)]
                };
                if let Err(e) = self.fire_fast(l, chosen as usize, now) {
                    break 'run Err(e);
                }
                self.recheck_fast(l, chosen as usize, now, &mut rng);
                zero += 1;
                if zero > self.cfg.max_zero_time_firings {
                    break 'run Err(SimError::ImmediateLivelock {
                        time: now,
                        limit: self.cfg.max_zero_time_firings,
                    });
                }
            }
        };

        self.rng[l] = rng;
        self.now[l] = now;
        self.zero_time_firings[l] = zero;
        match res {
            Ok(()) => {
                self.integrate_rewards(l, end);
                self.now[l] = end;
                Ok(self.finalize(l))
            }
            Err(e) => Err(e),
        }
    }

    /// Drive every lane to completion: the fused fast path when the net
    /// qualifies, otherwise single-event round-robin over the active set.
    fn run_all(mut self) -> Vec<Result<SimOutput, SimError>> {
        let lanes = self.lanes;
        let mut out: Vec<Option<Result<SimOutput, SimError>>> = (0..lanes).map(|_| None).collect();
        let mut active: Vec<u32> = Vec::with_capacity(lanes);
        for (l, slot) in out.iter_mut().enumerate() {
            match self.start(l) {
                Ok(()) => active.push(l as u32),
                Err(e) => *slot = Some(Err(e)),
            }
        }
        if self.fast {
            for &l in &active.clone() {
                out[l as usize] = Some(self.run_lane_fast(l as usize));
            }
        } else {
            while !active.is_empty() {
                let mut i = 0;
                while i < active.len() {
                    let l = active[i] as usize;
                    if let Some(res) = self.step(l) {
                        out[l] = Some(res);
                        // The lane swapped into slot `i` came from the tail
                        // and has not been stepped this sweep; don't skip it.
                        active.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.into_iter()
            .map(|o| o.expect("every lane terminates"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::timing::Timing;

    fn mm1(rho: f64) -> crate::net::Net {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(rho))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(1.0))
            .input(q, 1)
            .build();
        b.build().unwrap()
    }

    fn assert_same(a: &SimOutput, b: &SimOutput) {
        assert_eq!(a.rewards, b.rewards);
        assert_eq!(a.firing_counts, b.firing_counts);
        assert_eq!(a.final_marking, b.final_marking);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_dropped, b.trace_dropped);
        assert_eq!(a.observed_time, b.observed_time);
    }

    #[test]
    fn batch_matches_scalar_per_seed() {
        let net = mm1(0.8);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0).with_trace(32));
        let q = crate::ids::PlaceId::from_index(0);
        sim.reward_place(q);
        let seeds: Vec<u64> = (0..17).map(|i| 1000 + i).collect();
        let batched = sim.run_batch(&seeds);
        for (i, &seed) in seeds.iter().enumerate() {
            let scalar = sim.run(seed).unwrap();
            let b = batched[i].as_ref().unwrap();
            assert_same(b, &scalar);
        }
    }

    #[test]
    fn per_lane_horizons_retire_mid_batch() {
        let net = mm1(0.9);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(100.0));
        let q = crate::ids::PlaceId::from_index(0);
        sim.reward_place(q);
        let seeds = [7u64, 8, 9, 10];
        let horizons = [25.0, 400.0, 3.0, 100.0];
        let batched = BatchSimulator::new(&sim).run_with_horizons(&seeds, &horizons);
        for (i, (&seed, &h)) in seeds.iter().zip(&horizons).enumerate() {
            let mut cfg = sim.config().clone();
            cfg.end_time = h;
            let mut oracle = Simulator::new(&net, cfg);
            oracle.reward_place(q);
            let scalar = oracle.run(seed).unwrap();
            assert_same(batched[i].as_ref().unwrap(), &scalar);
        }
    }

    #[test]
    fn an_erroring_lane_does_not_disturb_the_others() {
        // Lane horizons long enough that the open generator overflows the
        // tiny token bound in every lane *except* the short one.
        let net = mm1(5.0);
        let mut cfg = SimConfig::for_horizon(10_000.0);
        cfg.max_tokens_per_place = 50;
        let sim = Simulator::new(&net, cfg);
        let seeds = [1u64, 2, 3];
        let horizons = [10_000.0, 1.0, 10_000.0];
        let batched = BatchSimulator::new(&sim).run_with_horizons(&seeds, &horizons);
        for (i, (&seed, &h)) in seeds.iter().zip(&horizons).enumerate() {
            let mut cfg = sim.config().clone();
            cfg.end_time = h;
            let oracle = Simulator::new(&net, cfg);
            match (oracle.run(seed), &batched[i]) {
                (Ok(a), Ok(b)) => assert_same(b, &a),
                (Err(a), Err(b)) => assert_eq!(&a, b),
                (a, b) => panic!("lane {i}: scalar {a:?} vs batched {b:?}"),
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let net = mm1(0.5);
        let sim = Simulator::new(&net, SimConfig::for_horizon(10.0));
        assert!(sim.run_batch(&[]).is_empty());
    }
}
