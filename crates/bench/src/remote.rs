//! Local cluster harness: real `repro --worker --listen` processes on
//! loopback ephemeral ports, for the remote determinism suite, the
//! `remote_ab` bench and ad-hoc experiments.
//!
//! A [`LocalCluster`] is the smallest honest stand-in for a multi-host
//! deployment: every worker is a separate OS process speaking the real TCP
//! protocol end to end (manifest frame in, per-slot result frames out), so
//! everything except the physical network hop is exercised. Workers bind
//! port 0 and announce their bound address on stdout (`listening <addr>`),
//! which is how the harness learns the ephemeral ports.

use sim_runtime::remote::TcpTransport;
use sim_runtime::Exec;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// One spawned worker process and its bound address.
struct ClusterWorker {
    child: Child,
    addr: String,
}

/// A set of loopback TCP workers backing [`Exec::remote`] runs.
///
/// Dropping the cluster kills any worker still running; prefer
/// [`LocalCluster::shutdown`] for a graceful end (shutdown frame, then
/// wait) when the workers are healthy.
pub struct LocalCluster {
    workers: Vec<ClusterWorker>,
}

impl LocalCluster {
    /// Spawn `n` workers of `worker_bin` (`<bin> --worker --listen
    /// 127.0.0.1:0`), waiting for each to announce its address.
    pub fn spawn(worker_bin: &str, n: usize) -> std::io::Result<Self> {
        Self::spawn_with_env(worker_bin, n, |_| Vec::new())
    }

    /// [`LocalCluster::spawn`] with extra environment variables per worker
    /// index — how the failure suite arms exactly one worker with an
    /// [`EnvCrashJob`](crate::shard::EnvCrashJob) trigger.
    pub fn spawn_with_env(
        worker_bin: &str,
        n: usize,
        env_of: impl Fn(usize) -> Vec<(String, String)>,
    ) -> std::io::Result<Self> {
        assert!(n >= 1, "a cluster needs at least one worker");
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let mut cmd = Command::new(worker_bin);
            cmd.args(["--worker", "--listen", "127.0.0.1:0"])
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            for (k, v) in env_of(i) {
                cmd.env(k, v);
            }
            let mut child = cmd.spawn()?;
            let stdout = child.stdout.take().expect("stdout piped");
            let mut line = String::new();
            BufReader::new(stdout).read_line(&mut line)?;
            let addr = match line.trim().strip_prefix("listening ") {
                Some(a) if !a.is_empty() => a.to_string(),
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other(format!(
                        "worker {i} announced {line:?} instead of its address"
                    )));
                }
            };
            workers.push(ClusterWorker { child, addr });
        }
        Ok(LocalCluster { workers })
    }

    /// The workers' `host:port` addresses, in spawn order.
    pub fn hosts(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// An [`Exec`] dispatching to the first `hosts` workers with `threads`
    /// worker threads per peer.
    pub fn exec(&self, threads: usize, hosts: usize) -> Exec {
        Exec::remote(
            threads,
            self.hosts().into_iter().take(hosts.max(1)).collect(),
        )
    }

    /// Hard-kill worker `i` (the external peer-death probe). Idempotent.
    pub fn kill(&mut self, i: usize) {
        let w = &mut self.workers[i];
        let _ = w.child.kill();
        let _ = w.child.wait();
    }

    /// Gracefully stop every worker: send each a shutdown frame, then wait
    /// for it to exit on its own. Workers that no longer accept (e.g.
    /// already crashed) are reaped by the `Drop` kill instead.
    pub fn shutdown(mut self) {
        for w in &mut self.workers {
            if let Ok(addr) = w.addr.parse::<std::net::SocketAddr>() {
                if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(1000)) {
                    let mut t = TcpTransport::new(stream);
                    if sim_runtime::remote::send_shutdown(&mut t).is_ok() {
                        let _ = w.child.wait();
                    }
                }
            }
        }
        // Drop reaps whatever did not exit gracefully.
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        for w in &mut self.workers {
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
}

// Spawning real workers needs the repro binary (`CARGO_BIN_EXE_repro`),
// which cargo only provides to integration tests — the harness is
// exercised end to end by `tests/remote_determinism.rs`.
