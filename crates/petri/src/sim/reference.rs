//! The reference engine: the original, non-incremental simulation core.
//!
//! This is the seed implementation kept as an executable specification.
//! Every enabling check rescans the transition's arcs and tree-walks its
//! guard ([`Expr::eval_bool`]); `fire_immediates` rescans every immediate
//! transition per vanishing-loop iteration; reward counters are found by a
//! linear scan per firing; the event heap uses lazy invalidation with
//! generation counters.
//!
//! The optimized engine in [`super::engine`] must produce **bit-identical
//! trajectories** (same seeds → same firing counts, rewards, and final
//! marking): `Simulator::run_reference` exposes this path so differential
//! tests and benchmarks can prove and price that equivalence. Keep the
//! semantics here frozen — fix bugs in both engines or not at all.

use super::engine::{SimConfig, SimOutput};
use super::rewards::RewardSpec;
use super::trace::TraceBuffer;
use crate::error::SimError;
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::Net;
use crate::rng::SimRng;
use crate::timing::MemoryPolicy;
use crate::token::Color;
use crate::transition::Transition;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap key for pending timed firings. Min-order: earliest time first; ties
/// broken by transition-definition order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey {
    time: f64,
    tid: u32,
    gen: u64,
}

impl Eq for HeapKey {}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the *smallest* key on
        // top.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.tid.cmp(&self.tid))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-transition scheduling state.
#[derive(Debug, Clone, Default)]
struct SchedState {
    /// Generation counter; heap entries with a stale generation are ignored.
    gen: u64,
    /// Pending firing time, if scheduled.
    fire_at: Option<f64>,
    /// Frozen remaining delay (RaceAge policy only).
    remaining: Option<f64>,
}

/// Per-reward accumulator.
#[derive(Debug, Clone)]
enum RewardAcc {
    /// Integral of token count over observed time.
    PlaceTokens {
        place: crate::ids::PlaceId,
        integral: f64,
    },
    /// Integral of the indicator over observed time.
    Predicate {
        expr: crate::expr::Expr,
        integral: f64,
    },
    /// Post-warmup firing counter, reported as rate.
    Throughput { tid: TransitionId, count: u64 },
    /// Post-warmup firing counter, reported raw.
    FiringCount { tid: TransitionId, count: u64 },
}

pub(crate) struct ReferenceEngine<'a> {
    net: &'a Net,
    cfg: &'a SimConfig,
    /// `cfg.max_tokens_per_place` clamped below the u32 count ceiling
    /// (shared with the incremental engine so both fail identically).
    max_tokens: usize,
    rng: SimRng,
    now: f64,
    marking: Marking,
    heap: BinaryHeap<HeapKey>,
    sched: Vec<SchedState>,
    firing_counts: Vec<u64>,
    accs: Vec<RewardAcc>,
    /// Cached ids of immediate transitions (checked every vanishing loop).
    immediates: Vec<TransitionId>,
    /// Cached ids of timed transitions with the Resample policy (re-checked
    /// after every firing regardless of adjacency).
    resamplers: Vec<TransitionId>,
    /// Scratch: colors consumed by the current firing, grouped by arc.
    consumed: Vec<Color>,
    consumed_offsets: Vec<usize>,
    /// Scratch: transitions to re-check after a firing.
    recheck: Vec<TransitionId>,
    recheck_flag: Vec<bool>,
    trace: TraceBuffer,
    zero_time_firings: u64,
}

impl<'a> ReferenceEngine<'a> {
    pub(crate) fn new(net: &'a Net, cfg: &'a SimConfig, rewards: &[RewardSpec], seed: u64) -> Self {
        let nt = net.num_transitions();
        let accs = rewards
            .iter()
            .map(|spec| match spec {
                RewardSpec::PlaceTokens(p) => RewardAcc::PlaceTokens {
                    place: *p,
                    integral: 0.0,
                },
                RewardSpec::Predicate(e) => RewardAcc::Predicate {
                    expr: e.clone(),
                    integral: 0.0,
                },
                RewardSpec::Throughput(t) => RewardAcc::Throughput { tid: *t, count: 0 },
                RewardSpec::FiringCount(t) => RewardAcc::FiringCount { tid: *t, count: 0 },
            })
            .collect();
        let immediates = net
            .transition_ids()
            .filter(|t| net.transition(*t).timing.is_immediate())
            .collect();
        let resamplers = net
            .transition_ids()
            .filter(|t| {
                let tr = net.transition(*t);
                !tr.timing.is_immediate() && tr.memory == MemoryPolicy::Resample
            })
            .collect();
        ReferenceEngine {
            net,
            cfg,
            max_tokens: super::engine::effective_token_limit(cfg),
            rng: SimRng::seed_from_u64(seed),
            now: 0.0,
            marking: net.initial_marking(),
            heap: BinaryHeap::with_capacity(nt * 2),
            sched: vec![SchedState::default(); nt],
            firing_counts: vec![0; nt],
            accs,
            immediates,
            resamplers,
            consumed: Vec::with_capacity(8),
            consumed_offsets: Vec::with_capacity(8),
            recheck: Vec::with_capacity(nt),
            recheck_flag: vec![false; nt],
            trace: TraceBuffer::new(cfg.trace_capacity),
            zero_time_firings: 0,
        }
    }

    // ---- enabling ----

    #[inline]
    fn is_enabled(&self, t: &Transition) -> bool {
        for arc in &t.inputs {
            if self.marking.count_matching(arc.place, &arc.filter) < arc.multiplicity as usize {
                return false;
            }
        }
        for inh in &t.inhibitors {
            if self.marking.count_matching(inh.place, &inh.filter) >= inh.threshold as usize {
                return false;
            }
        }
        if let Some(g) = &t.guard {
            if !g.eval_bool(&self.marking) {
                return false;
            }
        }
        true
    }

    // ---- scheduling ----

    fn schedule(&mut self, tid: TransitionId, fire_at: f64) {
        let s = &mut self.sched[tid.index()];
        s.gen += 1;
        s.fire_at = Some(fire_at);
        self.heap.push(HeapKey {
            time: fire_at,
            tid: tid.0,
            gen: s.gen,
        });
    }

    fn cancel(&mut self, tid: TransitionId) -> Option<f64> {
        let s = &mut self.sched[tid.index()];
        let fire_at = s.fire_at.take();
        if fire_at.is_some() {
            s.gen += 1; // invalidate the heap entry lazily
        }
        fire_at
    }

    /// Bring one timed transition's schedule in line with its enabling
    /// status.
    fn recheck_timed(&mut self, tid: TransitionId) {
        let net = self.net;
        let t = net.transition(tid);
        debug_assert!(!t.timing.is_immediate());
        let enabled = self.is_enabled(t);
        let scheduled = self.sched[tid.index()].fire_at.is_some();
        match (enabled, scheduled) {
            (true, false) => {
                let delay = match t.memory {
                    MemoryPolicy::RaceAge => self.sched[tid.index()]
                        .remaining
                        .take()
                        .unwrap_or_else(|| t.timing.sample_delay(&mut self.rng)),
                    _ => t.timing.sample_delay(&mut self.rng),
                };
                self.schedule(tid, self.now + delay);
            }
            (true, true) => {
                if t.memory == MemoryPolicy::Resample {
                    self.cancel(tid);
                    let delay = t.timing.sample_delay(&mut self.rng);
                    self.schedule(tid, self.now + delay);
                }
                // RaceEnable / RaceAge: clock keeps running.
            }
            (false, true) => {
                let fire_at = self.cancel(tid).expect("scheduled implies fire_at");
                if t.memory == MemoryPolicy::RaceAge {
                    self.sched[tid.index()].remaining = Some((fire_at - self.now).max(0.0));
                }
            }
            (false, false) => {}
        }
    }

    /// Mark a transition for re-check (deduplicated).
    #[inline]
    fn mark_recheck(&mut self, tid: TransitionId) {
        if !self.recheck_flag[tid.index()] {
            self.recheck_flag[tid.index()] = true;
            self.recheck.push(tid);
        }
    }

    /// Re-check every timed transition whose enabling may have changed after
    /// `fired` consumed/produced tokens.
    fn update_schedules_after(&mut self, fired: TransitionId) {
        self.recheck.clear();
        let net = self.net;
        let t = net.transition(fired);
        // Collect affected transitions from the dependency index.
        for arc_place in t
            .inputs
            .iter()
            .map(|a| a.place)
            .chain(t.outputs.iter().map(|a| a.place))
        {
            for &tid in net.affected_by(arc_place) {
                self.mark_recheck(tid);
            }
        }
        // The fired transition's own clock was consumed by firing.
        self.mark_recheck(fired);
        // Resample-policy transitions re-sample on *every* marking change.
        for i in 0..self.resamplers.len() {
            let tid = self.resamplers[i];
            self.mark_recheck(tid);
        }

        for i in 0..self.recheck.len() {
            let tid = self.recheck[i];
            self.recheck_flag[tid.index()] = false;
            if !net.transition(tid).timing.is_immediate() {
                self.recheck_timed(tid);
            }
        }
        self.recheck.clear();
    }

    // ---- firing ----

    fn fire(&mut self, tid: TransitionId) -> Result<(), SimError> {
        let net = self.net;
        let t: &Transition = &net.transitions()[tid.index()];
        self.consumed.clear();
        self.consumed_offsets.clear();
        for arc in &t.inputs {
            self.consumed_offsets.push(self.consumed.len());
            for _ in 0..arc.multiplicity {
                let c = self
                    .marking
                    .withdraw(arc.place, &arc.filter)
                    .expect("transition fired while not enabled");
                self.consumed.push(c);
            }
        }
        for arc in &t.outputs {
            for _ in 0..arc.multiplicity {
                let c = arc
                    .color
                    .eval(&self.consumed, &self.consumed_offsets, &mut self.rng);
                self.marking.deposit(arc.place, c);
            }
            if self.marking.count(arc.place) > self.max_tokens {
                return Err(SimError::TokenOverflow {
                    place: arc.place.index(),
                    time: self.now,
                    limit: self.cfg.max_tokens_per_place,
                });
            }
        }
        self.firing_counts[tid.index()] += 1;
        if self.cfg.trace_capacity > 0 {
            self.trace.record(self.now, tid);
        }
        if self.now >= self.cfg.warmup {
            for acc in &mut self.accs {
                match acc {
                    RewardAcc::Throughput { tid: rt, count } if *rt == tid => *count += 1,
                    RewardAcc::FiringCount { tid: rt, count } if *rt == tid => *count += 1,
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Fire enabled immediates (highest priority first, weighted conflicts)
    /// until none remain enabled.
    fn fire_immediates(&mut self) -> Result<(), SimError> {
        // Scratch buffers reused across iterations.
        let mut candidates: Vec<TransitionId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        loop {
            let mut best_pri: Option<u8> = None;
            candidates.clear();
            for &tid in &self.immediates {
                let t = self.net.transition(tid);
                let pri = t.timing.priority().expect("immediate");
                // Skip transitions that cannot beat the current best.
                if let Some(bp) = best_pri {
                    if pri < bp {
                        continue;
                    }
                }
                if self.is_enabled(t) {
                    match best_pri {
                        Some(bp) if pri > bp => {
                            best_pri = Some(pri);
                            candidates.clear();
                            candidates.push(tid);
                        }
                        Some(_) => candidates.push(tid),
                        None => {
                            best_pri = Some(pri);
                            candidates.push(tid);
                        }
                    }
                }
            }
            let Some(_) = best_pri else { break };
            let chosen = if candidates.len() == 1 {
                candidates[0]
            } else {
                weights.clear();
                weights.extend(
                    candidates
                        .iter()
                        .map(|&c| self.net.transition(c).timing.weight().expect("immediate")),
                );
                candidates[self.rng.weighted_choice(&weights)]
            };
            self.fire(chosen)?;
            self.update_schedules_after(chosen);
            self.bump_zero_time_counter()?;
        }
        Ok(())
    }

    #[inline]
    fn bump_zero_time_counter(&mut self) -> Result<(), SimError> {
        self.zero_time_firings += 1;
        if self.zero_time_firings > self.cfg.max_zero_time_firings {
            return Err(SimError::ImmediateLivelock {
                time: self.now,
                limit: self.cfg.max_zero_time_firings,
            });
        }
        Ok(())
    }

    // ---- reward integration ----

    /// Integrate rewards over `[self.now, until)`, clipping to the warm-up
    /// boundary.
    fn integrate_rewards(&mut self, until: f64) {
        let from = self.now.max(self.cfg.warmup);
        let dt = until - from;
        if dt <= 0.0 {
            return;
        }
        for acc in &mut self.accs {
            match acc {
                RewardAcc::PlaceTokens { place, integral } => {
                    *integral += self.marking.count(*place) as f64 * dt;
                }
                RewardAcc::Predicate { expr, integral } => {
                    if expr.eval_bool(&self.marking) {
                        *integral += dt;
                    }
                }
                RewardAcc::Throughput { .. } | RewardAcc::FiringCount { .. } => {}
            }
        }
    }

    // ---- main loop ----

    pub(crate) fn run(mut self) -> Result<SimOutput, SimError> {
        // Initial scheduling pass over all transitions.
        for tid in self.net.transition_ids() {
            if !self.net.transition(tid).timing.is_immediate() {
                self.recheck_timed(tid);
            }
        }
        self.fire_immediates()?;

        loop {
            // Find the next valid timed event.
            let next = loop {
                match self.heap.peek() {
                    None => break None,
                    Some(key) => {
                        let s = &self.sched[key.tid as usize];
                        let valid = s.gen == key.gen && s.fire_at == Some(key.time);
                        if valid {
                            break Some(*key);
                        }
                        self.heap.pop();
                    }
                }
            };

            match next {
                Some(key) if key.time < self.cfg.end_time => {
                    self.heap.pop();
                    let tid = TransitionId(key.tid);
                    self.integrate_rewards(key.time);
                    if key.time > self.now {
                        self.zero_time_firings = 0;
                    }
                    self.now = key.time;
                    // Consume the schedule entry.
                    self.sched[tid.index()].fire_at = None;
                    self.sched[tid.index()].gen += 1;
                    self.fire(tid)?;
                    self.bump_zero_time_counter()?;
                    self.update_schedules_after(tid);
                    self.fire_immediates()?;
                }
                _ => {
                    // No more events before the horizon: integrate the tail
                    // and stop.
                    self.integrate_rewards(self.cfg.end_time);
                    self.now = self.cfg.end_time;
                    break;
                }
            }
        }

        let observed = (self.cfg.end_time - self.cfg.warmup).max(0.0);
        let rewards = self
            .accs
            .iter()
            .map(|acc| match acc {
                RewardAcc::PlaceTokens { integral, .. } => {
                    if observed > 0.0 {
                        integral / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::Predicate { integral, .. } => {
                    if observed > 0.0 {
                        integral / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::Throughput { count, .. } => {
                    if observed > 0.0 {
                        *count as f64 / observed
                    } else {
                        0.0
                    }
                }
                RewardAcc::FiringCount { count, .. } => *count as f64,
            })
            .collect();

        Ok(SimOutput {
            end_time: self.cfg.end_time,
            observed_time: observed,
            rewards,
            firing_counts: self.firing_counts,
            final_marking: self.marking,
            trace_dropped: self.trace.dropped,
            trace: self.trace.into_events(),
        })
    }
}
