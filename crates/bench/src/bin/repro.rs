//! `repro` — regenerate every table and figure of Shareef & Zhu (2010).
//!
//! ```text
//! repro all                 # everything below, in order
//! repro fig4|fig5|fig6      # CPU state percentages vs PDT (3 PUDs)
//! repro fig7|fig8|fig9      # CPU energy vs PDT (3 methods)
//! repro table4|table5|table6# Δ-energy statistics
//! repro table8|table9       # simple system parameters & probabilities
//! repro table10             # emulated IMote2 vs Petri prediction
//! repro fig14               # closed-node energy breakdown sweep
//! repro fig15               # open-node energy breakdown sweep
//! repro params              # echo the power/timing tables as built
//! repro erlang              # ABL-ERLANG: Markovization error vs stages
//! repro memory              # ABL-MEMORY: PDT under 3 memory policies
//! repro seeds               # ABL-SEED: CI width vs replications
//! repro trigger             # ABL-TRIGGER: Poisson vs periodic arrivals
//! repro dot                 # Graphviz exports of the three paper nets
//! repro validate            # Petri-vs-DES cross-check CSV
//! repro steady              # adaptive stopping: replications until CI settles
//! ```
//!
//! Figures are emitted as CSV under `results/` (plus a textual summary on
//! stdout); tables are printed in the paper's layout. Use `--quick` for a
//! fast smoke run (shorter horizons).
//!
//! Execution is resolved once and threaded through every experiment:
//!
//! * `--threads N` (falling back to `REPRO_THREADS`, falling back to one
//!   worker per core) — worker threads per process;
//! * `--shards N` (falling back to `REPRO_SHARDS`, falling back to 0 =
//!   in-process) — worker *subprocesses*: the portable experiment grids
//!   are partitioned across `N` re-invocations of this binary as
//!   `repro --worker`, each running `--threads` threads;
//! * `--hosts a:p,b:p,…` (falling back to `REPRO_HOSTS`) — **remote TCP
//!   workers**: the grids are partitioned across peers running
//!   `repro --worker --listen <addr>`;
//! * `--service a:p` (falling back to `REPRO_SERVICE`) — route every grid
//!   dispatch through an **experiment service daemon** (`repro serve`):
//!   its bounded job queue, single-flight dedup and content-addressed
//!   result cache. Results are **byte-identical** whatever the executor —
//!   threads, shards, hosts, or served (cached or fresh).
//!
//!   Giving more than one of `--shards`/`--hosts`/`--service` explicitly
//!   is an error; when one comes from the environment instead, precedence
//!   is `service > hosts > shards` (warned on stderr).
//! * `--batch N` (falling back to `REPRO_BATCH`, falling back to 1 =
//!   scalar) — cross-replication batch width: each worker claims runs of
//!   up to `N` contiguous same-point replications and advances them
//!   together through the batched engine. Purely a throughput knob —
//!   results are byte-identical at every width.
//! * `--engine interp|lowered` (exported as `REPRO_ENGINE`, so worker
//!   subprocesses inherit it; default `lowered`) — which stepping engine
//!   `Simulator`/`BatchSimulator` use: the compiled micro-op programs or
//!   the incremental interpreter. Another pure throughput knob: outputs
//!   are byte-identical on either engine (CI diffs the artifacts).
//! * `--profile` (exported as `REPRO_PROFILE=1`, so worker subprocesses
//!   inherit it) — arm the per-transition engine profiler: firing counts
//!   and attributed nanoseconds per transition, printed as a table on
//!   stderr after the run and folded into job traces as counter events.
//!   Observation only — artifacts are byte-identical with or without it
//!   (CI diffs them).
//! * `--retry N` / `--io-timeout SECS` / `--pool on|off` (falling back to
//!   `REPRO_RETRY` / `REPRO_IO_TIMEOUT` / `REPRO_POOL`) — the unified
//!   fault policy of the multi-process executors: per-chunk re-dispatch
//!   budget (default 2), the silent-peer IO timeout in seconds (default
//!   15; 0 disables), and whether workers/connections stay warm in the
//!   process-global pool across dispatches (default on). An explicit flag
//!   wins over a differing environment value with a warning.
//! * `--fixed-reps` — escape hatch: run the stochastic sweeps (fig4–9 /
//!   tables IV–VI, fig15, validate/open) with the historical fixed
//!   replication counts instead of the default adaptive `StoppingRule`
//!   budgets, reproducing the seed numbers exactly.
//!
//! Chaos (robustness testing) is armed purely from the environment:
//! setting `REPRO_CHAOS_SEED` (with `REPRO_CHAOS_DROP`/`GARBLE`/`DELAY`
//! per-mille frame-fault rates, `REPRO_CHAOS_KILL_AFTER`, and
//! `REPRO_CHAOS_WORKER_CRASH`/`STALL` worker-side rates) makes every
//! transport deterministically faulty; the in-process fallback is enabled
//! automatically so armed runs still complete (loudly) even if the whole
//! fleet dies. Results stay byte-identical under any armed schedule.
//!
//! Service modes (first argument selects them):
//!
//! ```text
//! repro serve --listen ADDR [--http ADDR] [--threads N|--shards N|--hosts ...]
//!             [--queue-capacity N] [--dispatchers N] [--mem-cache N]
//!             [--cache-dir DIR|--no-disk-cache]
//!                                 # daemon; announces "serving <addr>".
//!                                 # --http also runs the HTTP/JSON gateway
//!                                 #   (healthz/stats/metrics/submit/jobs),
//!                                 #   announcing "http <addr>" FIRST
//! repro submit --service a:p mm1 [--horizon S] [--warmup S] [--reps N]
//!              [--seed N]        # submit one job, print id + disposition
//! repro status --service a:p ID  # one job's state
//! repro fetch  --service a:p ID [--out FILE]  # block, then result bytes
//! repro watch  --service a:p ID  # like fetch, but stream per-slot
//!                                #   progress lines while waiting
//! repro cancel --service a:p ID  # cancel a queued job
//! repro trace  --service a:p ID [--out FILE]
//!                                # the job's span trace as Chrome
//!                                #   trace-event JSON (load in Perfetto
//!                                #   or chrome://tracing); stdout unless
//!                                #   --out
//! repro stats  --service a:p [--json]
//!                                # daemon counters (cache hits, fleet
//!                                #   restarts/quarantines/fallbacks, ...);
//!                                #   --json emits the same document the
//!                                #   gateway serves on GET /stats
//! repro stop   --service a:p     # graceful daemon shutdown
//! repro cache gc [--cache-dir DIR] [--budget BYTES]
//!                                # sweep the disk result cache: delete
//!                                #   corrupt entries, evict LRU over budget
//! ```
//!
//! Telemetry: every tier records counters/gauges/histograms into the
//! process-wide registry (`sim_runtime::telemetry`), exposed as Prometheus
//! text on the gateway's `GET /metrics`. Set `REPRO_TELEMETRY=off` to
//! disable recording entirely; artifacts are byte-identical either way.
//!
//! Tracing: every tier also records causal spans (submit, queue-wait,
//! dispatch, pool-checkout, slot, engine-run) into the process-wide ring
//! (`sim_runtime::trace`), with worker subprocesses shipping their spans
//! back in an advisory frame. Fetch a job's trace with `repro trace` or
//! `GET /jobs/<id>/trace`; failing jobs dump their last spans to a flight
//! record file. Set `REPRO_TRACE=off` to disable; artifacts are
//! byte-identical either way.
//!
//! `repro --worker [--listen ADDR]` is not a user-facing mode: it serves
//! task-manifest frames against the job registry
//! (`bench::shard::worker_registry`) — over stdin/stdout by default, or
//! over accepted TCP connections with `--listen` (binding port 0 announces
//! the ephemeral port as `listening <addr>` on stdout; the process exits
//! on an explicit shutdown frame).

use bench::write_artifact;
use des::Workload;
use sim_runtime::{
    ChaosConfig, Exec, FaultPolicy, ServiceClient, ServiceConfig, ServiceHandle, StoppingRule,
};
use wsn::experiments::ablations::{
    erlang_ablation, memory_ablation, seed_ablation, trigger_ablation,
};
use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::experiments::simple_system::{run_simple_system, run_table_x};
use wsn::report::{
    render_delta_table, render_energy_csv, render_node_sweep_csv, render_simple_system,
    render_state_csv, render_table_x,
};
use wsn::sweep::{fig4_9_pdt_grid, FIG14_15_PDT_GRID};
use wsn::CpuModelParams;

struct Opts {
    quick: bool,
    /// Worker threads, resolved once (`--threads` > `REPRO_THREADS` > one
    /// per core) and threaded through every experiment config.
    threads: usize,
    /// Worker subprocesses (`--shards` > `REPRO_SHARDS` > 0 = in-process).
    shards: usize,
    /// Remote TCP workers (`--hosts` > `REPRO_HOSTS` > none); takes
    /// precedence over `shards`.
    hosts: Vec<String>,
    /// Experiment service daemon (`--service` > `REPRO_SERVICE` > none);
    /// takes precedence over `hosts` and `shards`.
    service: Option<String>,
    /// Fixed replication counts for the stochastic sweeps instead of
    /// the default adaptive budgets.
    fixed_reps: bool,
    /// Unified fault policy (`--retry`/`--io-timeout` > `REPRO_RETRY`/
    /// `REPRO_IO_TIMEOUT` > defaults), threaded into every backend.
    fault: FaultPolicy,
    /// Warm worker/peer pooling (`--pool` > `REPRO_POOL` > on).
    pool: bool,
    /// Cross-replication batch width (`--batch` > `REPRO_BATCH` > 1 =
    /// scalar). Purely a throughput knob: results are byte-identical at
    /// every width.
    batch: usize,
    /// Deterministic chaos injection, armed from `REPRO_CHAOS_*`.
    chaos: Option<ChaosConfig>,
}

impl Opts {
    /// The execution backend every experiment runs on.
    fn exec(&self) -> Exec {
        let base = if let Some(addr) = &self.service {
            Exec::service(self.threads, addr.clone())
        } else if !self.hosts.is_empty() {
            Exec::remote(self.threads, self.hosts.clone())
        } else if self.shards >= 1 {
            Exec::sharded(self.threads, self.shards)
        } else {
            Exec::in_process(self.threads)
        };
        base.with_fault(self.fault)
            .with_pool(self.pool)
            .with_chaos(self.chaos)
            .with_batch(self.batch)
    }

    /// The one adaptive replication budget shared by every stochastic
    /// sweep — the open-workload sweeps (fig15, validate/open, watching
    /// their energy estimates) and the CPU comparison (figs 4–9 / tables
    /// IV–VI, watching whichever of the DES/Petri energy CIs is widest).
    /// Sized down under `--quick`; `None` under `--fixed-reps` reproduces
    /// every historical fixed count (8/point for the CPU comparison)
    /// exactly.
    fn adaptive_rule(&self) -> Option<StoppingRule> {
        if self.fixed_reps {
            None
        } else if self.quick {
            Some(StoppingRule::relative(0.10).with_budget(2, 8, 2))
        } else {
            Some(StoppingRule::relative(0.03).with_budget(4, 64, 4))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Worker mode first: stdout is the protocol channel (stdio mode) or
    // the address announcement (listen mode), so nothing else may print
    // to it.
    if args.first().map(String::as_str) == Some("--worker") {
        let mut listen: Option<String> = None;
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--listen" => match it.next() {
                    Some(addr) => listen = Some(addr.clone()),
                    None => {
                        eprintln!("--listen needs an address (host:port; port 0 = ephemeral)");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("unknown worker flag: {other}");
                    std::process::exit(2);
                }
            }
        }
        let registry = bench::shard::worker_registry();
        let served = match listen {
            Some(addr) => sim_runtime::remote::serve_listener(std::sync::Arc::new(registry), &addr),
            None => sim_runtime::worker::serve_stdio(&registry),
        };
        match served {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("[worker] {e}");
                std::process::exit(1);
            }
        }
    }
    // Service modes: the first argument selects daemon or client verbs.
    match args.first().map(String::as_str) {
        Some("serve") => return serve_mode(&args[1..]),
        Some("submit") => return submit_mode(&args[1..]),
        Some("status") => return job_verb_mode(&args[1..], JobVerb::Status),
        Some("fetch") => return job_verb_mode(&args[1..], JobVerb::Fetch),
        Some("watch") => return job_verb_mode(&args[1..], JobVerb::Watch),
        Some("cancel") => return job_verb_mode(&args[1..], JobVerb::Cancel),
        Some("trace") => return job_verb_mode(&args[1..], JobVerb::Trace),
        Some("stats") => return daemon_verb_mode(&args[1..], DaemonVerb::Stats),
        Some("stop") => return daemon_verb_mode(&args[1..], DaemonVerb::Stop),
        Some("cache") => return cache_mode(&args[1..]),
        _ => {}
    }
    let mut quick = false;
    let mut fixed_reps = false;
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut hosts: Option<Vec<String>> = None;
    let mut service: Option<String> = None;
    let mut retry: Option<usize> = None;
    let mut io_timeout: Option<f64> = None;
    let mut pool: Option<bool> = None;
    let mut batch: Option<usize> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--fixed-reps" => fixed_reps = true,
            "--retry" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => retry = Some(n),
                _ => flag_err("--retry", "a non-negative re-dispatch count"),
            },
            "--io-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s >= 0.0 && s.is_finite() => io_timeout = Some(s),
                _ => flag_err("--io-timeout", "seconds (0 disables the timeout)"),
            },
            "--pool" => match it.next().and_then(|v| parse_on_off(v)) {
                Some(b) => pool = Some(b),
                _ => flag_err("--pool", "on or off"),
            },
            "--batch" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => batch = Some(n),
                _ => flag_err("--batch", "a positive replication count (1 = scalar)"),
            },
            // Exported via the environment rather than plumbed through
            // `Opts` so shard/worker subprocesses inherit the selection.
            "--engine" => match it.next().map(|v| v.as_str()) {
                Some(v @ ("interp" | "lowered")) => std::env::set_var("REPRO_ENGINE", v),
                _ => flag_err("--engine", "interp or lowered"),
            },
            // Environment-exported like --engine, so shard/worker
            // subprocesses profile too.
            "--profile" => std::env::set_var("REPRO_PROFILE", "1"),
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => shards = Some(n),
                _ => {
                    eprintln!("--shards needs a non-negative integer (0 = in-process)");
                    std::process::exit(2);
                }
            },
            "--hosts" => match it.next().map(|v| parse_hosts(v)) {
                Some(list) if !list.is_empty() => hosts = Some(list),
                _ => {
                    eprintln!("--hosts needs a comma-separated host:port list");
                    std::process::exit(2);
                }
            },
            "--service" => service = Some(take_service_value(&mut it)),
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            target => targets.push(target),
        }
    }
    // Conflicting *explicit* executor selections are an error; mixing an
    // explicit flag with environment fallbacks resolves by the documented
    // precedence (service > hosts > shards) with a warning — see
    // `resolve_executor`.
    let mut explicit: Vec<&str> = Vec::new();
    if shards.is_some_and(|n| n >= 1) {
        explicit.push("--shards");
    }
    if hosts.is_some() {
        explicit.push("--hosts");
    }
    if service.is_some() {
        explicit.push("--service");
    }
    if explicit.len() > 1 {
        eprintln!(
            "conflicting executor flags: {} select different backends; pass at most one \
             (when mixed with REPRO_SHARDS/REPRO_HOSTS/REPRO_SERVICE, precedence is \
             service > hosts > shards)",
            explicit.join(" and ")
        );
        std::process::exit(2);
    }
    let threads = threads
        .or_else(|| sim_runtime::env_threads("REPRO_THREADS"))
        .unwrap_or_else(sim_runtime::default_threads);
    let (shards, hosts, service) = resolve_executor(shards, hosts, service, true);
    let (fault, pool, chaos) = resolve_fault(retry, io_timeout, pool);
    let batch = resolve_batch(batch);
    let opts = Opts {
        quick,
        threads,
        shards,
        hosts,
        service,
        fixed_reps,
        fault,
        pool,
        batch,
        chaos,
    };

    if targets.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--threads N] [--shards N] [--hosts a:p,b:p] [--service a:p] [--batch N] [--engine interp|lowered] [--profile] [--retry N] [--io-timeout SECS] [--pool on|off] [--fixed-reps] <target>...   (try: repro all)\n       repro serve --listen a:p [--http a:p] | repro submit|status|fetch|watch|cancel|trace|stats|stop --service a:p ... | repro cache gc [--cache-dir DIR] [--budget BYTES]"
        );
        std::process::exit(2);
    }
    eprintln!("[repro] executor: {}", opts.exec().label());

    for t in &targets {
        match *t {
            "all" => run_all(&opts),
            "fig4" => cpu_figs(&opts, 0.001, true),
            "fig5" => cpu_figs(&opts, 0.3, true),
            "fig6" => cpu_figs(&opts, 10.0, true),
            "fig7" => cpu_figs(&opts, 0.001, false),
            "fig8" => cpu_figs(&opts, 0.3, false),
            "fig9" => cpu_figs(&opts, 10.0, false),
            "table4" => delta_table(&opts, 0.001, "Table IV (Power_Up_Delay = 0.001 s)"),
            "table5" => delta_table(&opts, 0.3, "Table V (Power_Up_Delay = 0.3 s)"),
            "table6" => delta_table(&opts, 10.0, "Table VI (Power_Up_Delay = 10 s)"),
            "table8" | "table9" => simple_tables(&opts),
            "table10" => table10(),
            "fig14" => node_fig(&opts, Workload::Closed { interval: 1.0 }, "fig14"),
            "fig15" => node_fig(&opts, Workload::Open { rate: 1.0 }, "fig15"),
            "params" => params(),
            "erlang" => erlang(&opts),
            "memory" => memory(&opts),
            "seeds" => seeds(&opts),
            "trigger" => trigger(&opts),
            "dot" => dot(),
            "validate" => validate(&opts),
            "steady" => steady(&opts),
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
    }
    if petri_core::sim::profile::armed() {
        // Stderr, like all diagnostics: stdout carries result tables.
        eprint!(
            "{}",
            petri_core::sim::profile::render_table(&petri_core::sim::profile::snapshot())
        );
    }
}

/// Print one sweep's replication spend (see
/// [`wsn::report::render_budget_summary`] — shared with the test suite so
/// the cap-hit accounting itself is covered).
fn report_budget(
    points: impl Iterator<Item = (u64, bool)>,
    rule: Option<&StoppingRule>,
    watch: &str,
) {
    println!(
        "{}",
        wsn::report::render_budget_summary(points, rule, watch)
    );
}

/// Split a comma-separated `host:port` list, dropping empty entries.
fn parse_hosts(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// Apply the environment fallbacks (`REPRO_SHARDS`/`REPRO_HOSTS`/
/// `REPRO_SERVICE`) and the documented executor precedence
/// `service > hosts > shards`. Conflicts between *explicit* flags were
/// already rejected at parse time; a cross-source conflict (flag +
/// environment, or environment + environment) resolves by precedence with
/// a warning naming the loser.
fn resolve_executor(
    cli_shards: Option<usize>,
    cli_hosts: Option<Vec<String>>,
    cli_service: Option<String>,
    consult_service_env: bool,
) -> (usize, Vec<String>, Option<String>) {
    let shards = cli_shards
        .or_else(|| {
            std::env::var("REPRO_SHARDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or(0);
    let hosts = cli_hosts
        .or_else(|| {
            std::env::var("REPRO_HOSTS")
                .ok()
                .map(|v| parse_hosts(&v))
                .filter(|l| !l.is_empty())
        })
        .unwrap_or_default();
    // The daemon's own backend selection (`repro serve`) never consults
    // REPRO_SERVICE: that variable addresses *clients* at a daemon, and a
    // daemon cannot dispatch onto a service anyway.
    let service = cli_service.or_else(|| {
        if consult_service_env {
            std::env::var("REPRO_SERVICE")
                .ok()
                .filter(|s| !s.is_empty())
        } else {
            None
        }
    });
    let mut active: Vec<&str> = Vec::new();
    if service.is_some() {
        active.push("service");
    }
    if !hosts.is_empty() {
        active.push("hosts");
    }
    if shards >= 1 {
        active.push("shards");
    }
    if active.len() > 1 {
        eprintln!(
            "[repro] warning: multiple executors configured ({}) via flags + environment; \
             using {} (precedence service > hosts > shards)",
            active.join(", "),
            active[0]
        );
    }
    if service.is_some() {
        (0, Vec::new(), service)
    } else if !hosts.is_empty() {
        (0, hosts, None)
    } else {
        (shards, Vec::new(), None)
    }
}

/// Resolve the unified fault-policy knobs shared by every multi-process
/// backend: flag > environment (`REPRO_RETRY`/`REPRO_IO_TIMEOUT`/
/// `REPRO_POOL`) > default, with an explicit flag winning over a differing
/// environment value with a warning — mirroring `resolve_executor`. Also
/// arms deterministic chaos from `REPRO_CHAOS_*`; an armed run auto-enables
/// the in-process fallback so injected fleet death degrades loudly instead
/// of failing the run.
fn resolve_fault(
    retry: Option<usize>,
    io_timeout: Option<f64>,
    pool: Option<bool>,
) -> (FaultPolicy, bool, Option<ChaosConfig>) {
    let mut fault = FaultPolicy::default();
    fault.retry_budget = pick_knob(
        "REPRO_RETRY",
        retry,
        env_knob::<usize>("REPRO_RETRY"),
        fault.retry_budget,
    );
    let default_secs = fault.io_timeout.map_or(0.0, |d| d.as_secs_f64());
    let secs = pick_knob(
        "REPRO_IO_TIMEOUT",
        io_timeout,
        env_knob::<f64>("REPRO_IO_TIMEOUT").filter(|s| *s >= 0.0 && s.is_finite()),
        default_secs,
    );
    fault.io_timeout = (secs > 0.0).then(|| std::time::Duration::from_secs_f64(secs));
    let pool = pick_knob(
        "REPRO_POOL",
        pool,
        std::env::var("REPRO_POOL")
            .ok()
            .as_deref()
            .and_then(parse_on_off),
        true,
    );
    let chaos = ChaosConfig::from_env();
    if let Some(c) = &chaos {
        eprintln!(
            "[repro] chaos armed (seed {}): drop {}‰, garble {}‰, delay {}‰; \
             enabling in-process fallback",
            c.seed, c.drop_per_mille, c.garble_per_mille, c.delay_per_mille
        );
        fault.fallback = true;
    }
    (fault, pool, chaos)
}

/// Resolve the cross-replication batch width: `--batch` > `REPRO_BATCH` >
/// 1 (scalar), with an explicit flag winning over a differing environment
/// value with a warning. Zero or unparseable environment values are
/// ignored, the same leniency as the other knobs.
fn resolve_batch(batch: Option<usize>) -> usize {
    pick_knob(
        "REPRO_BATCH",
        batch,
        env_knob::<usize>("REPRO_BATCH").filter(|n| *n >= 1),
        1,
    )
}

/// One fault knob: flag > environment > default, warning when an explicit
/// flag overrides a differing environment value.
fn pick_knob<T: PartialEq + Copy + std::fmt::Display>(
    var: &str,
    flag: Option<T>,
    env: Option<T>,
    default: T,
) -> T {
    match (flag, env) {
        (Some(f), Some(e)) if f != e => {
            eprintln!("[repro] warning: {var}={e} overridden by explicit flag ({f})");
            f
        }
        (Some(f), _) => f,
        (None, Some(e)) => e,
        (None, None) => default,
    }
}

/// Parse an environment variable with `FromStr`, ignoring unset or
/// unparseable values (the same leniency as `REPRO_SHARDS`).
fn env_knob<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok())
}

/// Parse an `on`/`off` switch value (also accepting `true`/`false`/`1`/`0`).
fn parse_on_off(v: &str) -> Option<bool> {
    match v.trim() {
        "on" | "true" | "1" => Some(true),
        "off" | "false" | "0" => Some(false),
        _ => None,
    }
}

/// Parse a byte count with an optional `k`/`m`/`g` (binary) suffix.
fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.trim().to_ascii_lowercase();
    let (num, mult) = match v.strip_suffix(['k', 'm', 'g']) {
        Some(n) => {
            let mult = match v.as_bytes()[v.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (n, mult)
        }
        None => (v.as_str(), 1),
    };
    num.trim().parse::<u64>().ok()?.checked_mul(mult)
}

// --- service modes -------------------------------------------------------

/// `repro serve --listen ADDR [...]`: run the experiment service daemon.
fn serve_mode(args: &[String]) {
    let mut listen: Option<String> = None;
    let mut http: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut hosts: Option<Vec<String>> = None;
    let mut queue_capacity = 256usize;
    let mut dispatchers = 1usize;
    let mut mem_cache = 64usize;
    let mut cache_dir: Option<std::path::PathBuf> = Some("results/cache".into());
    let mut cache_budget: Option<u64> = None;
    let mut retry: Option<usize> = None;
    let mut io_timeout: Option<f64> = None;
    let mut pool_flag: Option<bool> = None;
    let mut batch: Option<usize> = None;
    let mut fallback = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => match it.next() {
                Some(addr) if !addr.is_empty() => listen = Some(addr.clone()),
                _ => flag_err("--listen", "an address (host:port; port 0 = ephemeral)"),
            },
            "--http" => match it.next() {
                Some(addr) if !addr.is_empty() => http = Some(addr.clone()),
                _ => flag_err("--http", "an address (host:port; port 0 = ephemeral)"),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => flag_err("--threads", "a positive integer"),
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => shards = Some(n),
                _ => flag_err("--shards", "a non-negative integer (0 = in-process)"),
            },
            "--hosts" => match it.next().map(|v| parse_hosts(v)) {
                Some(list) if !list.is_empty() => hosts = Some(list),
                _ => flag_err("--hosts", "a comma-separated host:port list"),
            },
            "--queue-capacity" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => queue_capacity = n,
                _ => flag_err("--queue-capacity", "a positive integer"),
            },
            "--dispatchers" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => dispatchers = n,
                _ => flag_err("--dispatchers", "a positive integer"),
            },
            "--mem-cache" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => mem_cache = n,
                _ => flag_err("--mem-cache", "a non-negative entry count (0 disables)"),
            },
            "--cache-dir" => match it.next() {
                Some(d) if !d.is_empty() => cache_dir = Some(d.into()),
                _ => flag_err("--cache-dir", "a directory path"),
            },
            "--no-disk-cache" => cache_dir = None,
            "--cache-budget" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) if n >= 1 => cache_budget = Some(n),
                _ => flag_err("--cache-budget", "a positive byte count (suffix k/m/g ok)"),
            },
            "--retry" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => retry = Some(n),
                _ => flag_err("--retry", "a non-negative re-dispatch count"),
            },
            "--io-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s >= 0.0 && s.is_finite() => io_timeout = Some(s),
                _ => flag_err("--io-timeout", "seconds (0 disables the timeout)"),
            },
            "--pool" => match it.next().and_then(|v| parse_on_off(v)) {
                Some(b) => pool_flag = Some(b),
                _ => flag_err("--pool", "on or off"),
            },
            "--batch" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => batch = Some(n),
                _ => flag_err("--batch", "a positive replication count (1 = scalar)"),
            },
            // Environment-exported so shard/worker subprocesses inherit it.
            "--engine" => match it.next().map(|v| v.as_str()) {
                Some(v @ ("interp" | "lowered")) => std::env::set_var("REPRO_ENGINE", v),
                _ => flag_err("--engine", "interp or lowered"),
            },
            "--profile" => std::env::set_var("REPRO_PROFILE", "1"),
            "--fallback" => fallback = true,
            other => {
                eprintln!("unknown serve flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if shards.is_some_and(|n| n >= 1) && hosts.is_some() {
        eprintln!(
            "conflicting executor flags: --shards and --hosts select different backends; \
             pass at most one (precedence with environment variables is hosts > shards)"
        );
        std::process::exit(2);
    }
    let Some(addr) = listen else {
        eprintln!("usage: repro serve --listen ADDR [--http ADDR] [--threads N] [--shards N | --hosts a:p,b:p] [--batch N] [--engine interp|lowered] [--profile] [--queue-capacity N] [--dispatchers N] [--mem-cache N] [--cache-dir DIR | --no-disk-cache] [--cache-budget BYTES] [--retry N] [--io-timeout SECS] [--pool on|off] [--fallback]");
        std::process::exit(2);
    };
    let threads = threads
        .or_else(|| sim_runtime::env_threads("REPRO_THREADS"))
        .unwrap_or_else(sim_runtime::default_threads);
    let (shards, hosts, _) = resolve_executor(shards, hosts, None, false);
    let (mut fault, pool, chaos) = resolve_fault(retry, io_timeout, pool_flag);
    let batch = resolve_batch(batch);
    if fallback {
        fault.fallback = true;
    }
    let exec = if !hosts.is_empty() {
        Exec::remote(threads, hosts)
    } else if shards >= 1 {
        Exec::sharded(threads, shards)
    } else {
        Exec::in_process(threads)
    };
    let exec = exec
        .with_fault(fault)
        .with_pool(pool)
        .with_chaos(chaos)
        .with_batch(batch);
    eprintln!(
        "[serve] backend: {}; queue capacity {queue_capacity}; {dispatchers} dispatcher(s); \
         mem cache {mem_cache} entries; disk cache {}{}",
        exec.label(),
        cache_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".into()),
        cache_budget
            .map(|b| format!(" (budget {b} bytes)"))
            .unwrap_or_default(),
    );
    let cfg = ServiceConfig {
        exec,
        queue_capacity,
        dispatchers,
        mem_cache_entries: mem_cache,
        cache_dir,
        cache_budget,
        ..Default::default()
    };
    let handle = ServiceHandle::start(cfg, std::sync::Arc::new(bench::shard::worker_registry()));
    // The HTTP gateway (if any) binds and announces `http <addr>` BEFORE
    // `serve` announces `serving <addr>`, so harnesses reading stdout see
    // both addresses in a fixed order.
    let gateway = http.map(|http_addr| {
        let listener = match std::net::TcpListener::bind(&http_addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("[serve] cannot bind http gateway {http_addr}: {e}");
                std::process::exit(1);
            }
        };
        let local = listener
            .local_addr()
            .expect("bound listener has an address");
        println!("http {local}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        // `POST /submit?spec=mm1&...` builds the same canonical manifest
        // as `repro submit mm1` (same defaults, same seeding), so both
        // entry points land on the same cache key.
        let spec: std::sync::Arc<sim_runtime::service::SpecParser> =
            std::sync::Arc::new(|params: &std::collections::BTreeMap<String, String>| {
                let parse = |key: &str, default: f64| -> Result<f64, String> {
                    match params.get(key) {
                        Some(v) => v
                            .parse::<f64>()
                            .map_err(|_| format!("{key} must be a number, got {v:?}")),
                        None => Ok(default),
                    }
                };
                let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
                    match params.get(key) {
                        Some(v) => v
                            .parse::<u64>()
                            .map_err(|_| format!("{key} must be an integer, got {v:?}")),
                        None => Ok(default),
                    }
                };
                match params.get("spec").map(String::as_str) {
                    Some("mm1") => {
                        let horizon = parse("horizon", 200.0)?;
                        let warmup = parse("warmup", 20.0)?;
                        let reps = parse_u64("reps", 2)?;
                        let seed = parse_u64("seed", 0xCAFE)?;
                        // NaN params must be rejected too, hence the
                        // explicit is_finite checks.
                        if !horizon.is_finite()
                            || horizon <= 0.0
                            || !warmup.is_finite()
                            || warmup < 0.0
                            || reps < 1
                        {
                            return Err(
                                "mm1 needs horizon > 0, warmup >= 0 and reps >= 1".to_string()
                            );
                        }
                        Ok(bench::shard::Mm1ReplicationJob::manifest(
                            horizon, warmup, reps, seed,
                        ))
                    }
                    Some(other) => Err(format!("unknown job spec {other:?} (available: mm1)")),
                    None => Err("missing spec parameter (available: mm1)".to_string()),
                }
            });
        let service = handle.service();
        let thread = std::thread::spawn(move || {
            if let Err(e) = sim_runtime::service::serve_http(service, listener, Some(spec)) {
                eprintln!("[serve] http gateway: {e}");
            }
        });
        (local, thread)
    });
    match sim_runtime::service::serve(handle.service(), &addr) {
        Ok(()) => {
            eprintln!("[serve] shutdown requested; stopping dispatchers");
            handle.stop();
            if let Some((local, thread)) = gateway {
                // The gateway notices `stop` on its next accept; poke the
                // port with a bare connect to unblock a parked accept.
                let _ = std::net::TcpStream::connect(local);
                let _ = thread.join();
            }
        }
        Err(e) => {
            eprintln!("[serve] {e}");
            std::process::exit(1);
        }
    }
}

/// Exit 2 with a uniform "flag needs X" usage error.
fn flag_err(flag: &str, what: &str) -> ! {
    eprintln!("{flag} needs {what}");
    std::process::exit(2);
}

/// Parse the value of a `--service` flag from the argument stream.
fn take_service_value(it: &mut std::slice::Iter<'_, String>) -> String {
    match it.next() {
        Some(addr) if !addr.is_empty() => addr.clone(),
        _ => flag_err("--service", "a daemon address (host:port)"),
    }
}

/// Resolve the client-side daemon address (`--service` or `REPRO_SERVICE`).
fn require_service(addr: Option<String>) -> String {
    match addr.or_else(|| {
        std::env::var("REPRO_SERVICE")
            .ok()
            .filter(|s| !s.is_empty())
    }) {
        Some(a) => a,
        None => {
            eprintln!("this mode needs --service HOST:PORT (or REPRO_SERVICE)");
            std::process::exit(2);
        }
    }
}

fn connect_service(addr: &str) -> ServiceClient {
    match ServiceClient::connect(addr, std::time::Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("[repro] cannot reach service {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro submit --service a:p mm1 [...]`: submit one job, print its id
/// and disposition (queued / cache-hit / coalesced).
fn submit_mode(args: &[String]) {
    let mut service: Option<String> = None;
    let mut spec: Option<String> = None;
    let mut horizon = 200.0f64;
    let mut warmup = 20.0f64;
    let mut reps = 2u64;
    let mut seed = 0xCAFEu64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--service" => service = Some(take_service_value(&mut it)),
            "--horizon" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(h) if h > 0.0 => horizon = h,
                _ => flag_err("--horizon", "a positive number of seconds"),
            },
            "--warmup" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(w) if w >= 0.0 => warmup = w,
                _ => flag_err("--warmup", "a non-negative number of seconds"),
            },
            "--reps" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => reps = n,
                _ => flag_err("--reps", "a positive integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => seed = s,
                _ => flag_err("--seed", "an integer"),
            },
            other if other.starts_with("--") => {
                eprintln!("unknown submit flag: {other}");
                std::process::exit(2);
            }
            name => spec = Some(name.to_string()),
        }
    }
    let addr = require_service(service);
    let manifest = match spec.as_deref() {
        Some("mm1") => bench::shard::Mm1ReplicationJob::manifest(horizon, warmup, reps, seed),
        Some(other) => {
            eprintln!("unknown job spec {other:?} (available: mm1)");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: repro submit --service a:p mm1 [--horizon S] [--warmup S] [--reps N] [--seed N]");
            std::process::exit(2);
        }
    };
    match connect_service(&addr).submit(&manifest, 1) {
        Ok((job, disposition)) => println!("submitted {job} ({disposition})"),
        Err(e) => {
            eprintln!("[submit] {e}");
            std::process::exit(1);
        }
    }
}

enum JobVerb {
    Status,
    Fetch,
    Watch,
    Cancel,
    Trace,
}

/// `repro status|fetch|watch|cancel|trace --service a:p ID [--out FILE]`.
fn job_verb_mode(args: &[String], verb: JobVerb) {
    let mut service: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--service" => service = Some(take_service_value(&mut it)),
            "--out" => match it.next() {
                Some(path) if !path.is_empty() => out = Some(path.clone()),
                _ => {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            n => match n.parse::<u64>() {
                Ok(v) => id = Some(v),
                Err(_) => {
                    eprintln!("job id must be an integer, got {n:?}");
                    std::process::exit(2);
                }
            },
        }
    }
    let addr = require_service(service);
    let Some(id) = id else {
        eprintln!("this mode needs a job id (as printed by `repro submit`)");
        std::process::exit(2);
    };
    if out.is_some() && !matches!(verb, JobVerb::Fetch | JobVerb::Trace) {
        eprintln!("--out only applies to `repro fetch` and `repro trace`");
        std::process::exit(2);
    }
    let job = sim_runtime::JobId(id);
    let mut client = connect_service(&addr);
    let outcome = match verb {
        JobVerb::Status => client.status(job).map(|state| println!("{job}: {state}")),
        JobVerb::Cancel => client.cancel(job).map(|()| println!("{job}: cancelled")),
        JobVerb::Watch => client
            .fetch_blob_with_progress(job, &mut |p| {
                println!(
                    "progress {}/{} (point {} rep {})",
                    p.done, p.total, p.point, p.replication
                );
            })
            .map(|blob| println!("done: {} bytes", blob.len())),
        JobVerb::Trace => client.trace(job).map(|json| match &out {
            Some(path) => match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("[trace] cannot write {path}: {e}");
                    std::process::exit(1);
                }
            },
            None => println!("{json}"),
        }),
        JobVerb::Fetch => client.fetch_blob(job).map(|blob| {
            // An undecodable blob is corruption or version skew — report
            // it, never pass it off as a legitimately empty result.
            let slots = match sim_runtime::service::cache::decode_blob(&blob) {
                Ok(s) => s.len(),
                Err(e) => {
                    eprintln!("[fetch] {job}: result blob does not decode: {e}");
                    std::process::exit(1);
                }
            };
            println!("{job}: {slots} slot(s), {} bytes", blob.len());
            if let Some(path) = &out {
                match std::fs::write(path, &blob) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => {
                        eprintln!("[fetch] cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }),
    };
    if let Err(e) = outcome {
        eprintln!("[repro] {e}");
        std::process::exit(1);
    }
}

enum DaemonVerb {
    Stats,
    Stop,
}

/// `repro stats [--json]|stop --service a:p`.
fn daemon_verb_mode(args: &[String], verb: DaemonVerb) {
    let mut service: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--service" => service = Some(take_service_value(&mut it)),
            "--json" => json = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if json && !matches!(verb, DaemonVerb::Stats) {
        eprintln!("--json only applies to `repro stats`");
        std::process::exit(2);
    }
    let addr = require_service(service);
    let mut client = connect_service(&addr);
    let outcome = match verb {
        DaemonVerb::Stats => client.stats().map(|s| {
            if json {
                // The same encoder the HTTP gateway serves on GET /stats.
                println!("{}", s.render_json());
                return;
            }
            println!("submitted {}", s.submitted);
            println!(
                "hits {} (mem {}, disk {})",
                s.hits(),
                s.hits_mem,
                s.hits_disk
            );
            println!("coalesced {}", s.coalesced);
            println!("executed {} (failed {})", s.executed, s.failed);
            println!("rejected {}", s.rejected);
            println!("cancelled {}", s.cancelled);
            println!(
                "fleet restarts {}, quarantined {}, fallbacks {}",
                s.restarts, s.quarantined, s.fallbacks
            );
            println!(
                "cache evicted {}, corrupt deleted {}",
                s.cache_evicted, s.cache_corrupt
            );
        }),
        DaemonVerb::Stop => client
            .shutdown()
            .map(|()| println!("daemon at {addr} stopped")),
    };
    if let Err(e) = outcome {
        eprintln!("[repro] {e}");
        std::process::exit(1);
    }
}

/// `repro cache gc [--cache-dir DIR] [--budget BYTES]`: sweep the disk
/// result cache — delete corrupt entries, then evict least-recently-used
/// entries until the total fits the budget (no budget = hygiene only).
fn cache_mode(args: &[String]) {
    let mut dir: std::path::PathBuf = "results/cache".into();
    let mut budget: Option<u64> = None;
    let mut verb: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => match it.next() {
                Some(d) if !d.is_empty() => dir = d.into(),
                _ => flag_err("--cache-dir", "a directory path"),
            },
            "--budget" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) => budget = Some(n),
                _ => flag_err("--budget", "a byte count (suffix k/m/g ok)"),
            },
            other if other.starts_with("--") => {
                eprintln!("unknown cache flag: {other}");
                std::process::exit(2);
            }
            v if verb.is_none() => verb = Some(v.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    match verb.as_deref() {
        Some("gc") => {
            let store = sim_runtime::service::cache::DiskStore::new(&dir).with_budget(budget);
            let r = store.gc();
            println!(
                "{}: scanned {}, deleted {} corrupt, evicted {} over budget, {} -> {} bytes",
                dir.display(),
                r.scanned,
                r.corrupt_deleted,
                r.evicted,
                r.bytes_before,
                r.bytes_after
            );
        }
        _ => {
            eprintln!("usage: repro cache gc [--cache-dir DIR] [--budget BYTES]");
            std::process::exit(2);
        }
    }
}

fn run_all(opts: &Opts) {
    params();
    for pud in [0.001, 0.3, 10.0] {
        cpu_figs(opts, pud, true);
        cpu_figs(opts, pud, false);
    }
    delta_table(opts, 0.001, "Table IV (Power_Up_Delay = 0.001 s)");
    delta_table(opts, 0.3, "Table V (Power_Up_Delay = 0.3 s)");
    delta_table(opts, 10.0, "Table VI (Power_Up_Delay = 10 s)");
    simple_tables(opts);
    table10();
    node_fig(opts, Workload::Closed { interval: 1.0 }, "fig14");
    node_fig(opts, Workload::Open { rate: 1.0 }, "fig15");
    erlang(opts);
    memory(opts);
    seeds(opts);
    trigger(opts);
    dot();
    validate(opts);
    steady(opts);
}

fn cpu_cfg(opts: &Opts) -> CpuComparisonConfig {
    CpuComparisonConfig {
        horizon: if opts.quick { 300.0 } else { 5000.0 },
        exec: opts.exec(),
        rule: opts.adaptive_rule(),
        ..Default::default()
    }
}

fn cpu_figs(opts: &Opts, pud: f64, states: bool) {
    let c = run_cpu_comparison(pud, &fig4_9_pdt_grid(), &cpu_cfg(opts));
    let (kind, csv) = if states {
        ("states", render_state_csv(&c))
    } else {
        ("energy", render_energy_csv(&c))
    };
    let fig = match (pud, states) {
        (d, true) if d < 0.01 => "fig4",
        (d, true) if d < 1.0 => "fig5",
        (_, true) => "fig6",
        (d, false) if d < 0.01 => "fig7",
        (d, false) if d < 1.0 => "fig8",
        (_, false) => "fig9",
    };
    match write_artifact(&format!("{fig}_{kind}.csv"), &csv) {
        Ok(path) => println!("[{fig}] PUD={pud}s {kind} -> {path}"),
        Err(e) => eprintln!("[{fig}] failed to write artifact: {e}"),
    }
    if states {
        report_budget(
            c.points.iter().map(|p| (p.replications, p.converged)),
            opts.adaptive_rule().as_ref(),
            "the widest energy curve",
        );
    }
    if !states {
        // Quick textual read of the curve shape.
        let rows = c.energy_rows();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        println!(
            "  sim energy: {:.2} J @ PDT={} -> {:.2} J @ PDT={} ({} with threshold)",
            first.1,
            first.0,
            last.1,
            last.0,
            if last.1 > first.1 { "rises" } else { "falls" }
        );
    }
}

fn delta_table(opts: &Opts, pud: f64, title: &str) {
    let c = run_cpu_comparison(pud, &fig4_9_pdt_grid(), &cpu_cfg(opts));
    print!("{}", render_delta_table(title, &c.delta_table()));
    println!();
}

fn simple_tables(opts: &Opts) {
    let horizon = if opts.quick { 2000.0 } else { 50_000.0 };
    let r = run_simple_system(horizon, 0xABCD);
    print!("{}", render_simple_system(&r));
    println!();
}

fn table10() {
    print!("{}", render_table_x(&run_table_x(0xBEEF)));
    println!();
}

fn node_fig(opts: &Opts, workload: Workload, fig: &str) {
    let open = matches!(workload, Workload::Open { .. });
    let cfg = NodeSweepConfig {
        horizon: if opts.quick { 200.0 } else { 900.0 },
        replications: if open {
            if opts.quick {
                2
            } else {
                8
            }
        } else {
            1
        },
        exec: opts.exec(),
        open_rule: opts.adaptive_rule(),
        ..Default::default()
    };
    let sweep = run_node_sweep(workload, &FIG14_15_PDT_GRID, &cfg);
    let csv = render_node_sweep_csv(&sweep);
    match write_artifact(&format!("{fig}_breakdown.csv"), &csv) {
        Ok(path) => println!("[{fig}] {workload:?} -> {path}"),
        Err(e) => eprintln!("[{fig}] failed to write artifact: {e}"),
    }
    if open {
        report_budget(
            sweep.points.iter().map(|p| (p.replications, p.converged)),
            cfg.open_rule.as_ref(),
            "total energy",
        );
    }
    let a = sweep.optimum_analysis();
    println!(
        "  optimum PDT = {} s: {:.2} J  ({:.0}% less than immediate power-down {:.2} J, {:.0}% less than never {:.2} J)",
        a.optimal_pdt,
        a.optimal_energy_j,
        a.savings_vs_immediate_pct,
        a.immediate_energy_j,
        a.savings_vs_never_pct,
        a.never_energy_j,
    );
}

fn params() {
    println!("Table II  — simulation parameters: horizon 1000 s, λ = 1/s, mean service 0.1 s");
    println!("Table III — power rates (mW):");
    let cpu = energy::PXA271_CPU;
    let radio = energy::CC2420_RADIO;
    println!(
        "  CPU   standby {:>10} idle {:>8} powerup {:>10} active {:>8}",
        cpu.sleep.milliwatts(),
        cpu.idle.milliwatts(),
        cpu.wakeup.milliwatts(),
        cpu.active.milliwatts()
    );
    println!(
        "  Radio standby {:>10} idle {:>8} powerup {:>10} active {:>8}",
        radio.sleep.milliwatts(),
        radio.idle.milliwatts(),
        radio.wakeup.milliwatts(),
        radio.active.milliwatts()
    );
    let m = energy::IMOTE2_MEASURED;
    println!(
        "Table VII — measured IMote2 (mW): idle {} rx {} comp {} tx {}",
        m.wait.milliwatts(),
        m.receiving.milliwatts(),
        m.computation.milliwatts(),
        m.transmitting.milliwatts()
    );
    let p = des::NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, 0.0);
    println!(
        "Table XI  — node timings (s): radio startup {}, listen {}, tx/rx {}, CPU PUD {}, DVS delay {}, DVS levels {:?}, task/job {}",
        p.radio_startup,
        p.channel_listen,
        p.tx_rx_time,
        p.cpu_power_up_delay,
        p.dvs_overhead,
        p.dvs_levels,
        p.task_delay_per_job
    );
    println!(
        "  intra-cycle CPU gap = {} s (the Fig. 14 optimum)",
        p.intra_cycle_gap()
    );
    println!();
}

fn erlang(opts: &Opts) {
    let stages: &[u32] = if opts.quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    println!("ABL-ERLANG — phase-type Markovization error (T=0.3 s, D=0.3 s)");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "stages", "standby", "powerup", "idle", "active", "max |err|"
    );
    for row in erlang_ablation(0.3, 0.3, stages, 42) {
        println!(
            "{:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12.4}",
            row.stages, row.probs[0], row.probs[1], row.probs[2], row.probs[3], row.max_abs_error
        );
    }
    println!();
}

fn memory(opts: &Opts) {
    let horizon = if opts.quick { 2000.0 } else { 20_000.0 };
    println!("ABL-MEMORY — Power_Down_Threshold under the three memory policies");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "policy", "standby", "powerup", "idle", "active", "wakeups"
    );
    let params = CpuModelParams::paper_defaults(0.5, 0.3);
    for row in memory_ablation(&params, horizon, 7) {
        println!(
            "{:>12} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.0}",
            format!("{:?}", row.policy),
            row.probs[0],
            row.probs[1],
            row.probs[2],
            row.probs[3],
            row.wakeups
        );
    }
    println!();
}

fn validate(opts: &Opts) {
    use wsn::experiments::validation::{render_validation_csv, run_validation};
    let horizon = if opts.quick { 200.0 } else { 900.0 };
    let exec = opts.exec();
    let open_rule = opts.adaptive_rule();
    for (name, workload) in [
        ("closed", Workload::Closed { interval: 1.0 }),
        ("open", Workload::Open { rate: 1.0 }),
    ] {
        // The closed model is deterministic: one run per point is exact.
        // The open model averages adaptively unless --fixed-reps.
        let rule = match workload {
            Workload::Closed { .. } => None,
            Workload::Open { .. } => open_rule.as_ref(),
        };
        let rows = run_validation(workload, &FIG14_15_PDT_GRID, horizon, 0xDE5, &exec, rule);
        let worst = rows.iter().map(|r| r.rel_diff).fold(0.0f64, f64::max);
        let reps: u64 = rows.iter().map(|r| r.replications).sum();
        match write_artifact(
            &format!("validate_{name}.csv"),
            &render_validation_csv(&rows),
        ) {
            Ok(path) => println!(
                "[validate] {name}: worst petri-vs-des relative energy gap {worst:.4} ({reps} replications) -> {path}"
            ),
            Err(e) => eprintln!("[validate] {name}: {e}"),
        }
    }
    println!();
}

fn trigger(opts: &Opts) {
    let horizon = if opts.quick { 2000.0 } else { 20_000.0 };
    println!("ABL-TRIGGER — Poisson (trigger-driven) vs periodic (schedule-driven) arrivals");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "mode", "standby", "powerup", "idle", "active", "wakeups", "energy (J)"
    );
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    for row in trigger_ablation(&params, horizon, 17) {
        println!(
            "{:>10} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.0} {:>12.2}",
            if row.trigger_driven {
                "trigger"
            } else {
                "schedule"
            },
            row.probs[0],
            row.probs[1],
            row.probs[2],
            row.probs[3],
            row.wakeups,
            row.energy_j
        );
    }
    println!();
}

fn dot() {
    let cpu = wsn::build_cpu_model(&CpuModelParams::paper_defaults(0.3, 0.3));
    let simple = wsn::build_simple_node(&wsn::SimpleNodeParams::default());
    let closed = wsn::build_node_model(&des::NodeSimParams::paper_defaults(
        Workload::Closed { interval: 1.0 },
        0.00177,
    ));
    let open = wsn::build_node_model(&des::NodeSimParams::paper_defaults(
        Workload::Open { rate: 1.0 },
        0.00177,
    ));
    for (name, net) in [
        ("fig3_cpu.dot", &cpu.net),
        ("fig10_simple.dot", &simple.net),
        ("fig12_closed.dot", &closed.net),
        ("fig13_open.dot", &open.net),
    ] {
        match write_artifact(name, &petri_core::dot::to_dot(net)) {
            Ok(path) => println!("[dot] {path}"),
            Err(e) => eprintln!("[dot] {name}: {e}"),
        }
    }
    println!();
}

fn steady(opts: &Opts) {
    use petri_core::prelude::*;
    let horizon = if opts.quick { 500.0 } else { 2000.0 };
    let rule = StoppingRule::relative(if opts.quick { 0.05 } else { 0.02 }).with_budget(
        8,
        if opts.quick { 64 } else { 256 },
        8,
    );
    println!(
        "STEADY — adaptive replications until the 95% CI of P(standby) is within {:.0}% (budget {}..{})",
        rule.relative.unwrap() * 100.0,
        rule.min_replications,
        rule.max_replications,
    );
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>10}",
        "PDT (s)", "replications", "mean standby", "CI half-width", "settled"
    );
    for pdt in [0.1, 0.3, 0.5, 1.0] {
        let model = wsn::build_cpu_model(&CpuModelParams::paper_defaults(pdt, 0.3));
        let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(horizon));
        let r_standby = sim.reward_place(model.places.stand_by);
        let a = run_replications_adaptive(&sim, 0x57EAD, &rule, &[r_standby.index()], opts.threads)
            .expect("CPU net runs");
        let ci = a.summary.ci(r_standby.index(), ConfidenceLevel::P95);
        println!(
            "{:>10} {:>12} {:>14.5} {:>14.5} {:>10}",
            pdt,
            a.summary.replications,
            ci.mean,
            ci.half_width,
            if a.converged { "yes" } else { "BUDGET" }
        );
    }
    println!();
}

fn seeds(opts: &Opts) {
    let horizon = if opts.quick { 500.0 } else { 2000.0 };
    let counts: &[u64] = if opts.quick {
        &[4, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };
    println!("ABL-SEED — 95% CI half-width of P(standby) vs replications");
    println!(
        "{:>14} {:>14} {:>16}",
        "replications", "mean standby", "CI half-width"
    );
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    for row in seed_ablation(&params, horizon, counts, 0xCAFE, &opts.exec()) {
        println!(
            "{:>14} {:>14.5} {:>16.5}",
            row.replications, row.mean_standby, row.ci_half_width
        );
    }
    println!();
}
