//! Transient CTMC solution by uniformization (Jensen's method).
//!
//! `π(t) = Σ_k Poisson(Λt; k) · π(0) P^k` with `P = I + Q/Λ`. The Poisson
//! series is truncated adaptively to reach a configured error bound.

use crate::ctmc::{Ctmc, CtmcError};

/// Transient distribution at time `t` starting from `pi0`.
///
/// `epsilon` bounds the truncation error of the Poisson series (total mass
/// ignored in both tails).
pub fn transient(chain: &Ctmc, pi0: &[f64], t: f64, epsilon: f64) -> Result<Vec<f64>, CtmcError> {
    let n = chain.num_states();
    if n == 0 {
        return Err(CtmcError::Empty);
    }
    assert_eq!(pi0.len(), n, "initial distribution length mismatch");
    if t <= 0.0 {
        return Ok(pi0.to_vec());
    }

    // Uniformization constant.
    let mut exit = vec![0.0; n];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for s in 0..n {
        let _ = s;
    }
    // Pull edges out of the chain via its public API: we rebuild from
    // exit rates. (Ctmc intentionally hides its map; we reconstruct through
    // `for_each_rate`.)
    chain.for_each_rate(|f, to, r| {
        exit[f] += r;
        edges.push((f, to, r));
    });
    let lambda = exit.iter().cloned().fold(0.0, f64::max).max(1e-12) * 1.02;
    let q = lambda * t;

    // Poisson weights with left/right truncation.
    let (left, right, weights) = poisson_weights(q, epsilon);

    // Iterate v_k = pi0 * P^k, accumulating weighted sum.
    let mut v = pi0.to_vec();
    let mut result = vec![0.0; n];
    if left == 0 {
        for (r, &x) in result.iter_mut().zip(v.iter()) {
            *r += weights[0] * x;
        }
    }
    let mut next = vec![0.0; n];
    for k in 1..=right {
        // next = v * P.
        for (i, x) in next.iter_mut().enumerate() {
            *x = v[i] * (1.0 - exit[i] / lambda);
        }
        for &(f, to, r) in &edges {
            next[to] += v[f] * r / lambda;
        }
        std::mem::swap(&mut v, &mut next);
        if k >= left {
            let w = weights[k - left];
            for (r, &x) in result.iter_mut().zip(v.iter()) {
                *r += w * x;
            }
        }
    }
    // Normalize to compensate truncation.
    let total: f64 = result.iter().sum();
    if total > 0.0 {
        for r in result.iter_mut() {
            *r /= total;
        }
    }
    Ok(result)
}

/// Left/right truncation points and normalized weights of Poisson(q).
fn poisson_weights(q: f64, epsilon: f64) -> (usize, usize, Vec<f64>) {
    // Build weights by recursion from the mode to avoid underflow.
    let mode = q.floor() as usize;
    let mut ws = vec![(mode, 1.0f64)];
    // Expand right.
    let mut w = 1.0;
    let mut k = mode;
    loop {
        k += 1;
        w *= q / k as f64;
        if w < epsilon * 1e-4 && k > mode + 3 {
            break;
        }
        ws.push((k, w));
        if k > mode + 10_000 {
            break;
        }
    }
    // Expand left.
    let mut w = 1.0;
    let mut k = mode;
    while k > 0 {
        w *= k as f64 / q;
        k -= 1;
        if w < epsilon * 1e-4 && k + 3 < mode {
            break;
        }
        ws.push((k, w));
    }
    ws.sort_unstable_by_key(|e| e.0);
    let left = ws.first().unwrap().0;
    let right = ws.last().unwrap().0;
    let total: f64 = ws.iter().map(|e| e.1).sum();
    let weights = ws.iter().map(|e| e.1 / total).collect();
    (left, right, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_two_state_analytic() {
        // up -(a)-> down, down -(b)-> up, start in up.
        // p_up(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
        let a = 1.0;
        let b = 2.0;
        let c = Ctmc::from_rates(2, [(0, 1, a), (1, 0, b)]).unwrap();
        for &t in &[0.1, 0.5, 1.0, 3.0] {
            let pi = transient(&c, &[1.0, 0.0], t, 1e-10).unwrap();
            let expect = b / (a + b) + a / (a + b) * (-(a + b) * t).exp();
            assert!(
                (pi[0] - expect).abs() < 1e-7,
                "t={t}: {} vs {}",
                pi[0],
                expect
            );
        }
    }

    #[test]
    fn transient_approaches_steady_state() {
        let c = Ctmc::from_rates(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let pi_t = transient(&c, &[1.0, 0.0, 0.0], 200.0, 1e-10).unwrap();
        let pi_ss = c.steady_state().unwrap();
        for (a, b) in pi_t.iter().zip(pi_ss.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_time_is_initial() {
        let c = Ctmc::from_rates(2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let pi = transient(&c, &[0.25, 0.75], 0.0, 1e-10).unwrap();
        assert_eq!(pi, vec![0.25, 0.75]);
    }

    #[test]
    fn mass_is_conserved() {
        let c = Ctmc::from_rates(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 0.5), (3, 0, 1.5)]).unwrap();
        let pi = transient(&c, &[1.0, 0.0, 0.0, 0.0], 2.5, 1e-9).unwrap();
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }
}
