//! Transition definition: timing + arcs + guards + memory policy.

use crate::arc::{InhibitorArc, InputArc, OutputArc};
use crate::expr::Expr;
use crate::timing::{MemoryPolicy, Timing};

/// A fully-specified transition of a net.
///
/// Constructed through [`crate::builder::TransitionBuilder`]; the engine
/// reads these fields directly.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Human-readable name (unique within the net).
    pub name: String,
    /// Firing semantics.
    pub timing: Timing,
    /// Memory policy for timed transitions (ignored for immediates).
    pub memory: MemoryPolicy,
    /// Consuming arcs. Order matters: [`crate::arc::ColorExpr::Transfer`]
    /// refers to arcs by position in this list.
    pub inputs: Vec<InputArc>,
    /// Producing arcs.
    pub outputs: Vec<OutputArc>,
    /// Inhibitor arcs.
    pub inhibitors: Vec<InhibitorArc>,
    /// Optional global guard: the transition is enabled only while this
    /// marking predicate holds.
    pub guard: Option<Expr>,
}

impl Transition {
    /// Total number of tokens consumed per firing.
    pub fn tokens_consumed(&self) -> u64 {
        self.inputs.iter().map(|a| a.multiplicity as u64).sum()
    }

    /// Total number of tokens produced per firing.
    pub fn tokens_produced(&self) -> u64 {
        self.outputs.iter().map(|a| a.multiplicity as u64).sum()
    }

    /// A *source* transition has no input arcs (it can generate tokens
    /// forever — legal, used by open workload generators, but worth
    /// flagging in structural lints when unguarded and immediate).
    pub fn is_source(&self) -> bool {
        self.inputs.is_empty()
    }

    /// A *sink* transition has no output arcs.
    pub fn is_sink(&self) -> bool {
        self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PlaceId;
    use crate::token::ColorFilter;

    fn arc_in(p: usize, m: u32) -> InputArc {
        InputArc {
            place: PlaceId::from_index(p),
            multiplicity: m,
            filter: ColorFilter::Any,
        }
    }

    fn arc_out(p: usize, m: u32) -> OutputArc {
        OutputArc {
            place: PlaceId::from_index(p),
            multiplicity: m,
            color: Default::default(),
        }
    }

    #[test]
    fn token_flow_counts() {
        let t = Transition {
            name: "t".into(),
            timing: Timing::immediate(),
            memory: Default::default(),
            inputs: vec![arc_in(0, 2), arc_in(1, 1)],
            outputs: vec![arc_out(2, 3)],
            inhibitors: vec![],
            guard: None,
        };
        assert_eq!(t.tokens_consumed(), 3);
        assert_eq!(t.tokens_produced(), 3);
        assert!(!t.is_source());
        assert!(!t.is_sink());
    }

    #[test]
    fn source_and_sink_flags() {
        let source = Transition {
            name: "gen".into(),
            timing: Timing::exponential(1.0),
            memory: Default::default(),
            inputs: vec![],
            outputs: vec![arc_out(0, 1)],
            inhibitors: vec![],
            guard: None,
        };
        assert!(source.is_source());
        assert!(!source.is_sink());

        let sink = Transition {
            name: "drain".into(),
            timing: Timing::immediate(),
            memory: Default::default(),
            inputs: vec![arc_in(0, 1)],
            outputs: vec![],
            inhibitors: vec![],
            guard: None,
        };
        assert!(!sink.is_source());
        assert!(sink.is_sink());
    }
}
