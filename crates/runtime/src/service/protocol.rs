//! The versioned client/daemon codec of the experiment service.
//!
//! Requests and responses travel as length-prefixed frames over any
//! [`FrameTransport`](crate::remote::FrameTransport) (in practice TCP).
//! Every request opens with a tag byte and the protocol version; the
//! daemon answers each request with exactly one response frame, **in
//! request order** — so a client may pipeline requests (HTTP/1.1 style):
//! submit several jobs back to back, then fetch them, all on one
//! connection, while the daemon executes earlier submissions concurrently.
//! The one deliberately blocking verb is *fetch*, which does not answer
//! until the job reaches a terminal state; a client that wants to overlap
//! other verbs with a long fetch uses a second connection.

use crate::exec::{ExecError, TaskManifest};
use crate::wire::{self, Reader, WireError};

/// Protocol version carried by every request frame. Version 1 was the
/// initial submit/status/fetch/cancel/stats/shutdown verb set; version 2
/// extends the stats snapshot with fleet-degradation and cache-hygiene
/// counters and adds the `BackendUnavailable` failure kind; version 3
/// upgrades the blocking-fetch keep-alive to a `Progress` frame carrying
/// live done/total slot counts (plain heartbeats remain for jobs with no
/// progress record, e.g. cache hits); version 4 adds the trace verb
/// (fetch a job's collected spans as Chrome trace-event JSON).
pub const SERVICE_WIRE_VERSION: u8 = 4;

/// Request frame tags (client → daemon).
pub mod request_tag {
    /// Submit a manifest for execution (or a cache/single-flight answer).
    pub const SUBMIT: u8 = b'S';
    /// Query one job's state.
    pub const STATUS: u8 = b'?';
    /// Block until a job is terminal, then return its result or error.
    pub const FETCH: u8 = b'F';
    /// Cancel a job that is still queued.
    pub const CANCEL: u8 = b'C';
    /// Snapshot the daemon's counters.
    pub const STATS: u8 = b'I';
    /// Stop the daemon (acknowledged before it exits).
    pub const SHUTDOWN: u8 = b'Q';
    /// Fetch a job's collected spans as Chrome trace-event JSON (wire
    /// version 4). Answered immediately from the daemon's span ring —
    /// tracing disabled or spans evicted simply yields fewer events.
    pub const TRACE: u8 = b'G';
}

/// Response frame tags (daemon → client).
pub mod response_tag {
    /// Submission accepted: job id + disposition.
    pub const SUBMITTED: u8 = b'J';
    /// Job state snapshot.
    pub const STATUS: u8 = b'T';
    /// Terminal result blob.
    pub const RESULT: u8 = b'R';
    /// Terminal failure (an encoded [`ExecError`](crate::exec::ExecError)).
    pub const FAILED: u8 = b'E';
    /// Counter snapshot.
    pub const STATS: u8 = b'A';
    /// Plain acknowledgement (cancel, shutdown).
    pub const OK: u8 = b'K';
    /// Request-level error (bad version, unknown job, queue full).
    pub const ERR: u8 = b'X';
    /// Keep-alive emitted while a blocking fetch waits (not a response —
    /// clients skip it). Lets clients bound their read timeouts without
    /// mistaking a long-running job for a dead daemon.
    pub const HEARTBEAT: u8 = b'H';
    /// Live progress while a blocking fetch waits (wire version 3): a
    /// keep-alive that also carries the job's done/total slot counts and
    /// the most recently completed `(point, replication)`. Cosmetic —
    /// clients that skip it lose nothing but rendering.
    pub const PROGRESS: u8 = b'P';
    /// A job's Chrome trace-event JSON (wire version 4). `T` was already
    /// taken by [`STATUS`], so the trace verb echoes its request tag.
    pub const TRACE: u8 = b'G';
}

/// A service job identifier, unique within one daemon process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}", self.0)
    }
}

/// Where a submission's answer will come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// New work: enqueued for the scheduler.
    Queued,
    /// Answered from the in-memory LRU tier.
    HitMem,
    /// Answered from the disk tier (and promoted into memory).
    HitDisk,
    /// Coalesced onto an identical in-flight job (single-flight).
    Coalesced,
}

impl Disposition {
    /// Whether the submission was answered from the result cache.
    pub fn is_hit(&self) -> bool {
        matches!(self, Disposition::HitMem | Disposition::HitDisk)
    }

    fn to_u8(self) -> u8 {
        match self {
            Disposition::Queued => 0,
            Disposition::HitMem => 1,
            Disposition::HitDisk => 2,
            Disposition::Coalesced => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => Disposition::Queued,
            1 => Disposition::HitMem,
            2 => Disposition::HitDisk,
            3 => Disposition::Coalesced,
            other => return Err(WireError::new(format!("unknown disposition {other}"))),
        })
    }
}

impl std::fmt::Display for Disposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Disposition::Queued => "queued",
            Disposition::HitMem => "cache-hit (memory)",
            Disposition::HitDisk => "cache-hit (disk)",
            Disposition::Coalesced => "coalesced onto an in-flight job",
        })
    }
}

/// The lifecycle of a service job.
///
/// ```text
/// Queued ──▶ Running ──▶ Done | Failed
///    └──────────────────▶ Cancelled
/// ```
///
/// Cache hits are born `Done`. `Done`, `Failed` and `Cancelled` are
/// terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// Claimed by a dispatcher, executing on the backend.
    Running,
    /// Finished; the result blob is available.
    Done,
    /// Finished with an executor error.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// Whether the state admits no further transitions.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    fn to_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            other => return Err(WireError::new(format!("unknown job state {other}"))),
        })
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        })
    }
}

/// A snapshot of the daemon's counters (all monotonic since startup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions received (any disposition).
    pub submitted: u64,
    /// Submissions answered from the in-memory tier.
    pub hits_mem: u64,
    /// Submissions answered from the disk tier.
    pub hits_disk: u64,
    /// Submissions coalesced onto an in-flight identical job.
    pub coalesced: u64,
    /// Jobs actually executed on the backend.
    pub executed: u64,
    /// Jobs that finished with an executor error.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Fleet members restarted after a mid-chunk death (see
    /// [`crate::fleet`]).
    pub restarts: u64,
    /// Quarantine transitions: hosts benched after repeated failures.
    pub quarantined: u64,
    /// Dispatches (whole or partial) degraded to in-process execution
    /// because the fleet shrank to zero.
    pub fallbacks: u64,
    /// Disk-cache entries evicted to honour the size budget.
    pub cache_evicted: u64,
    /// Corrupt disk-cache entries detected and deleted.
    pub cache_corrupt: u64,
}

impl ServiceStats {
    /// Total cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.hits_mem + self.hits_disk
    }

    /// The snapshot's fields as `(name, value)` pairs, in wire order —
    /// the one list the JSON encoder, the human rendering and the
    /// gateway's Prometheus exposition all draw from, so they can never
    /// disagree on names or coverage.
    pub fn fields(&self) -> [(&'static str, u64); 13] {
        [
            ("submitted", self.submitted),
            ("hits_mem", self.hits_mem),
            ("hits_disk", self.hits_disk),
            ("coalesced", self.coalesced),
            ("executed", self.executed),
            ("failed", self.failed),
            ("rejected", self.rejected),
            ("cancelled", self.cancelled),
            ("restarts", self.restarts),
            ("quarantined", self.quarantined),
            ("fallbacks", self.fallbacks),
            ("cache_evicted", self.cache_evicted),
            ("cache_corrupt", self.cache_corrupt),
        ]
    }

    /// Render as a flat JSON object (keys match the field names). Shared
    /// by `repro stats --json` and the HTTP gateway's `GET /stats`.
    pub fn render_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

/// One live progress observation for a running job: how many of its slots
/// have completed, and which `(point, replication)` finished most
/// recently. Streamed in [`ServiceResponse::Progress`] frames while a
/// blocking fetch waits; `total == 0` means no execution ever started
/// (cache hits are born done).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProgress {
    /// Slots completed so far (monotone per job).
    pub done: u64,
    /// Total slots in the job's manifest.
    pub total: u64,
    /// Sweep-point index of the most recently completed slot.
    pub point: u64,
    /// Replication index of the most recently completed slot.
    pub replication: u64,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRequest {
    /// Run (or answer from cache) one manifest. `threads` is advisory —
    /// the daemon's configured backend governs actual resources.
    Submit {
        /// Requested worker threads (advisory).
        threads: u32,
        /// The fully described grid to execute.
        manifest: TaskManifest,
    },
    /// Query a job's state.
    Status(JobId),
    /// Block until a job is terminal; answer with its result or failure.
    Fetch(JobId),
    /// Cancel a queued job.
    Cancel(JobId),
    /// Snapshot the daemon counters.
    Stats,
    /// Stop the daemon.
    Shutdown,
    /// Fetch a job's collected spans as Chrome trace-event JSON.
    Trace(JobId),
}

/// A decoded daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// Submission accepted.
    Submitted {
        /// The job to poll/fetch.
        job: JobId,
        /// Where the answer will come from.
        disposition: Disposition,
    },
    /// State snapshot for a status request.
    Status {
        /// The queried job.
        job: JobId,
        /// Its current state.
        state: JobState,
    },
    /// A finished job's result blob (see
    /// [`decode_blob`](crate::service::cache::decode_blob)).
    Result {
        /// The fetched job.
        job: JobId,
        /// Encoded per-slot results, byte-identical to direct execution.
        blob: Vec<u8>,
    },
    /// A finished job's failure.
    Failed {
        /// The fetched job.
        job: JobId,
        /// The executor error, round-tripped losslessly.
        error: ExecError,
    },
    /// Counter snapshot.
    Stats(ServiceStats),
    /// Plain acknowledgement.
    Ok,
    /// Request-level error.
    Err(String),
    /// Keep-alive while a fetch waits; carries nothing and is skipped by
    /// clients (see [`request_tag`]'s fetch semantics).
    Heartbeat,
    /// Live progress while a fetch waits (also a keep-alive). Purely
    /// cosmetic: a client that consumes it like a heartbeat gets the same
    /// bytes in the end.
    Progress {
        /// The running job.
        job: JobId,
        /// Its current progress counters.
        progress: JobProgress,
    },
    /// A job's Chrome trace-event JSON. Always well-formed JSON; a job
    /// served with tracing disabled yields an empty event list.
    Trace {
        /// The queried job.
        job: JobId,
        /// Chrome trace-event JSON (loadable in Perfetto).
        json: String,
    },
}

impl ServiceRequest {
    /// Encode into one frame body (tag, version, payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ServiceRequest::Submit { threads, manifest } => {
                wire::put_u8(&mut buf, request_tag::SUBMIT);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
                wire::put_u32(&mut buf, *threads);
                manifest.encode_into(&mut buf);
            }
            ServiceRequest::Status(job) => {
                wire::put_u8(&mut buf, request_tag::STATUS);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
                wire::put_u64(&mut buf, job.0);
            }
            ServiceRequest::Fetch(job) => {
                wire::put_u8(&mut buf, request_tag::FETCH);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
                wire::put_u64(&mut buf, job.0);
            }
            ServiceRequest::Cancel(job) => {
                wire::put_u8(&mut buf, request_tag::CANCEL);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
                wire::put_u64(&mut buf, job.0);
            }
            ServiceRequest::Stats => {
                wire::put_u8(&mut buf, request_tag::STATS);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
            }
            ServiceRequest::Shutdown => {
                wire::put_u8(&mut buf, request_tag::SHUTDOWN);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
            }
            ServiceRequest::Trace(job) => {
                wire::put_u8(&mut buf, request_tag::TRACE);
                wire::put_u8(&mut buf, SERVICE_WIRE_VERSION);
                wire::put_u64(&mut buf, job.0);
            }
        }
        buf
    }

    /// Decode one request frame body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let tag = r.get_u8()?;
        let version = r.get_u8()?;
        if version != SERVICE_WIRE_VERSION {
            return Err(WireError::new(format!(
                "service protocol version {version} (daemon speaks {SERVICE_WIRE_VERSION})"
            )));
        }
        let req = match tag {
            request_tag::SUBMIT => {
                let threads = r.get_u32()?;
                let manifest = TaskManifest::decode(&mut r)?;
                ServiceRequest::Submit { threads, manifest }
            }
            request_tag::STATUS => ServiceRequest::Status(JobId(r.get_u64()?)),
            request_tag::FETCH => ServiceRequest::Fetch(JobId(r.get_u64()?)),
            request_tag::CANCEL => ServiceRequest::Cancel(JobId(r.get_u64()?)),
            request_tag::STATS => ServiceRequest::Stats,
            request_tag::SHUTDOWN => ServiceRequest::Shutdown,
            request_tag::TRACE => ServiceRequest::Trace(JobId(r.get_u64()?)),
            other => {
                return Err(WireError::new(format!(
                    "unknown service request tag {other:#x}"
                )))
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl ServiceResponse {
    /// Encode into one frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ServiceResponse::Submitted { job, disposition } => {
                wire::put_u8(&mut buf, response_tag::SUBMITTED);
                wire::put_u64(&mut buf, job.0);
                wire::put_u8(&mut buf, disposition.to_u8());
            }
            ServiceResponse::Status { job, state } => {
                wire::put_u8(&mut buf, response_tag::STATUS);
                wire::put_u64(&mut buf, job.0);
                wire::put_u8(&mut buf, state.to_u8());
            }
            ServiceResponse::Result { job, blob } => {
                wire::put_u8(&mut buf, response_tag::RESULT);
                wire::put_u64(&mut buf, job.0);
                wire::put_bytes(&mut buf, blob);
            }
            ServiceResponse::Failed { job, error } => {
                wire::put_u8(&mut buf, response_tag::FAILED);
                wire::put_u64(&mut buf, job.0);
                encode_exec_error(&mut buf, error);
            }
            ServiceResponse::Stats(s) => {
                wire::put_u8(&mut buf, response_tag::STATS);
                for v in [
                    s.submitted,
                    s.hits_mem,
                    s.hits_disk,
                    s.coalesced,
                    s.executed,
                    s.failed,
                    s.rejected,
                    s.cancelled,
                    s.restarts,
                    s.quarantined,
                    s.fallbacks,
                    s.cache_evicted,
                    s.cache_corrupt,
                ] {
                    wire::put_u64(&mut buf, v);
                }
            }
            ServiceResponse::Ok => wire::put_u8(&mut buf, response_tag::OK),
            ServiceResponse::Err(msg) => {
                wire::put_u8(&mut buf, response_tag::ERR);
                wire::put_str(&mut buf, msg);
            }
            ServiceResponse::Heartbeat => wire::put_u8(&mut buf, response_tag::HEARTBEAT),
            ServiceResponse::Progress { job, progress } => {
                wire::put_u8(&mut buf, response_tag::PROGRESS);
                wire::put_u64(&mut buf, job.0);
                wire::put_u64(&mut buf, progress.done);
                wire::put_u64(&mut buf, progress.total);
                wire::put_u64(&mut buf, progress.point);
                wire::put_u64(&mut buf, progress.replication);
            }
            ServiceResponse::Trace { job, json } => {
                wire::put_u8(&mut buf, response_tag::TRACE);
                wire::put_u64(&mut buf, job.0);
                wire::put_str(&mut buf, json);
            }
        }
        buf
    }

    /// Decode one response frame body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let resp = match r.get_u8()? {
            response_tag::SUBMITTED => ServiceResponse::Submitted {
                job: JobId(r.get_u64()?),
                disposition: Disposition::from_u8(r.get_u8()?)?,
            },
            response_tag::STATUS => ServiceResponse::Status {
                job: JobId(r.get_u64()?),
                state: JobState::from_u8(r.get_u8()?)?,
            },
            response_tag::RESULT => ServiceResponse::Result {
                job: JobId(r.get_u64()?),
                blob: r.get_bytes()?.to_vec(),
            },
            response_tag::FAILED => ServiceResponse::Failed {
                job: JobId(r.get_u64()?),
                error: decode_exec_error(&mut r)?,
            },
            response_tag::STATS => ServiceResponse::Stats(ServiceStats {
                submitted: r.get_u64()?,
                hits_mem: r.get_u64()?,
                hits_disk: r.get_u64()?,
                coalesced: r.get_u64()?,
                executed: r.get_u64()?,
                failed: r.get_u64()?,
                rejected: r.get_u64()?,
                cancelled: r.get_u64()?,
                restarts: r.get_u64()?,
                quarantined: r.get_u64()?,
                fallbacks: r.get_u64()?,
                cache_evicted: r.get_u64()?,
                cache_corrupt: r.get_u64()?,
            }),
            response_tag::OK => ServiceResponse::Ok,
            response_tag::ERR => ServiceResponse::Err(r.get_str()?.to_string()),
            response_tag::HEARTBEAT => ServiceResponse::Heartbeat,
            response_tag::PROGRESS => ServiceResponse::Progress {
                job: JobId(r.get_u64()?),
                progress: JobProgress {
                    done: r.get_u64()?,
                    total: r.get_u64()?,
                    point: r.get_u64()?,
                    replication: r.get_u64()?,
                },
            },
            response_tag::TRACE => ServiceResponse::Trace {
                job: JobId(r.get_u64()?),
                json: r.get_str()?.to_string(),
            },
            other => {
                return Err(WireError::new(format!(
                    "unknown service response tag {other:#x}"
                )))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Append the lossless encoding of an [`ExecError`] (so a failure fetched
/// through the service is indistinguishable from one raised locally).
pub fn encode_exec_error(buf: &mut Vec<u8>, e: &ExecError) {
    match e {
        ExecError::Task {
            flat_index,
            point,
            replication,
            message,
        } => {
            wire::put_u8(buf, 0);
            wire::put_u64(buf, *flat_index as u64);
            wire::put_u64(buf, *point as u64);
            wire::put_u64(buf, *replication);
            wire::put_str(buf, message);
        }
        ExecError::Worker {
            flat_index,
            message,
        } => {
            wire::put_u8(buf, 1);
            wire::put_u64(buf, *flat_index as u64);
            wire::put_str(buf, message);
        }
        ExecError::Protocol(message) => {
            wire::put_u8(buf, 2);
            wire::put_str(buf, message);
        }
        ExecError::BackendUnavailable(message) => {
            wire::put_u8(buf, 3);
            wire::put_str(buf, message);
        }
    }
}

/// Decode an [`ExecError`] written by [`encode_exec_error`].
pub fn decode_exec_error(r: &mut Reader<'_>) -> Result<ExecError, WireError> {
    Ok(match r.get_u8()? {
        0 => ExecError::Task {
            flat_index: r.get_u64()? as usize,
            point: r.get_u64()? as usize,
            replication: r.get_u64()?,
            message: r.get_str()?.to_string(),
        },
        1 => ExecError::Worker {
            flat_index: r.get_u64()? as usize,
            message: r.get_str()?.to_string(),
        },
        2 => ExecError::Protocol(r.get_str()?.to_string()),
        3 => ExecError::BackendUnavailable(r.get_str()?.to_string()),
        other => return Err(WireError::new(format!("unknown exec error tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::MulJob;
    use crate::grid::Segment;

    fn manifest() -> TaskManifest {
        TaskManifest::for_job(
            &MulJob { factor: 2 },
            vec![Segment {
                point: 1,
                base_rep: 3,
                count: 2,
            }],
            &|p, r| (p as u64) * 7 + r,
        )
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            ServiceRequest::Submit {
                threads: 4,
                manifest: manifest(),
            },
            ServiceRequest::Status(JobId(7)),
            ServiceRequest::Fetch(JobId(u64::MAX)),
            ServiceRequest::Cancel(JobId(0)),
            ServiceRequest::Stats,
            ServiceRequest::Shutdown,
            ServiceRequest::Trace(JobId(42)),
        ] {
            let body = req.encode();
            assert_eq!(ServiceRequest::decode(&body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let errors = [
            ExecError::Task {
                flat_index: 4,
                point: 1,
                replication: 2,
                message: "boom".into(),
            },
            ExecError::Worker {
                flat_index: 9,
                message: "died".into(),
            },
            ExecError::Protocol("garbage".into()),
            ExecError::BackendUnavailable("all peers quarantined".into()),
        ];
        let mut responses = vec![
            ServiceResponse::Submitted {
                job: JobId(3),
                disposition: Disposition::HitDisk,
            },
            ServiceResponse::Status {
                job: JobId(3),
                state: JobState::Running,
            },
            ServiceResponse::Result {
                job: JobId(5),
                blob: vec![1, 2, 3],
            },
            ServiceResponse::Stats(ServiceStats {
                submitted: 10,
                hits_mem: 1,
                hits_disk: 2,
                coalesced: 3,
                executed: 4,
                failed: 5,
                rejected: 6,
                cancelled: 7,
                restarts: 8,
                quarantined: 9,
                fallbacks: 10,
                cache_evicted: 11,
                cache_corrupt: 12,
            }),
            ServiceResponse::Ok,
            ServiceResponse::Err("queue full".into()),
            ServiceResponse::Heartbeat,
            ServiceResponse::Progress {
                job: JobId(6),
                progress: JobProgress {
                    done: 12,
                    total: 30,
                    point: 2,
                    replication: 3,
                },
            },
            ServiceResponse::Trace {
                job: JobId(8),
                json: "{\"traceEvents\":[]}".into(),
            },
        ];
        for e in errors {
            responses.push(ServiceResponse::Failed {
                job: JobId(1),
                error: e,
            });
        }
        for resp in responses {
            let body = resp.encode();
            assert_eq!(ServiceResponse::decode(&body).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn wrong_version_and_bad_tags_rejected() {
        let mut body = ServiceRequest::Stats.encode();
        body[1] = SERVICE_WIRE_VERSION + 1;
        assert!(ServiceRequest::decode(&body).is_err());
        assert!(ServiceRequest::decode(&[0xFE, SERVICE_WIRE_VERSION]).is_err());
        assert!(ServiceResponse::decode(&[0xFE]).is_err());
        // Trailing bytes are rejected (layout drift guard).
        let mut body = ServiceRequest::Status(JobId(1)).encode();
        body.push(0);
        assert!(ServiceRequest::decode(&body).is_err());
    }

    #[test]
    fn disposition_and_state_semantics() {
        assert!(Disposition::HitMem.is_hit());
        assert!(Disposition::HitDisk.is_hit());
        assert!(!Disposition::Queued.is_hit());
        assert!(!Disposition::Coalesced.is_hit());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert_eq!(
            ServiceStats {
                hits_mem: 2,
                hits_disk: 3,
                ..Default::default()
            }
            .hits(),
            5
        );
        assert_eq!(format!("{}", JobId(4)), "job 4");
    }

    #[test]
    fn stats_json_covers_every_field() {
        let s = ServiceStats {
            submitted: 10,
            hits_mem: 1,
            hits_disk: 2,
            coalesced: 3,
            executed: 4,
            failed: 5,
            rejected: 6,
            cancelled: 7,
            restarts: 8,
            quarantined: 9,
            fallbacks: 11,
            cache_evicted: 12,
            cache_corrupt: 13,
        };
        let json = s.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for (name, value) in s.fields() {
            assert!(json.contains(&format!("\"{name}\":{value}")), "{json}");
        }
        // Exactly the 13 wire fields, no more.
        assert_eq!(json.matches(':').count(), s.fields().len(), "{json}");
    }
}
