//! # wsn — the paper's models and experiments
//!
//! Everything specific to Shareef & Zhu (2010), built on the `petri-core`,
//! `markov`, `des`, and `energy` substrates:
//!
//! * [`cpu_model`] — the Fig. 3 CPU EDSPN (Table I parameters).
//! * [`simple_node`] — the Fig. 10 simple sensor system (Tables VIII/IX).
//! * [`node`] — the Fig. 12/13 closed/open node SCPNs (Tables XI/XII),
//!   colored DVS jobs and all.
//! * [`imote2`] — the emulated IMote2 measurement rig (Table X; see
//!   DESIGN.md §4 for the hardware substitution).
//! * [`sweep`] — parallel parameter sweeps and the published PDT grids.
//! * [`metrics`] — Δ-energy statistics (Tables IV–VI).
//! * [`experiments`] — one driver per table/figure family, plus ablations.
//! * [`report`] — text/CSV rendering of every artifact.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cpu_model;
pub mod experiments;
pub mod imote2;
pub mod metrics;
pub mod node;
pub mod report;
pub mod simple_node;
pub mod sweep;

pub use cpu_model::{
    build_cpu_model, build_cpu_model_with_memory, simulate_cpu_model, CpuModel, CpuModelParams,
    CpuPetriResult,
};
pub use imote2::{run_paper_rig, table_x_comparison, Imote2Measurement, Imote2RigConfig};
pub use metrics::{DeltaEnergyTable, DiffStats};
pub use node::{build_node_model, simulate_node_model, NodeModel, NodePetriResult};
pub use simple_node::{
    analytic_probabilities, build_simple_node, simulate_simple_node, SimpleNodeParams,
    SimpleNodeProbabilities,
};
