//! Paired A/B measurement of the batched engines on the shared
//! [`bench::ab`] harness: adjacent interleaved blocks, alternating order,
//! median of per-pair ratios. Two comparisons per net and width:
//!
//! * **batch**: the interpreter's batched engine vs the scalar
//!   interpreter loop (the PR 7 measurement, kept as the baseline);
//! * **lowered**: the lowered micro-op engine vs the interpreter's
//!   batched engine — the compiled-stepping win on top of batching.
//!
//! Every block runs the same replication set on the same seeds and
//! checksums the *full* per-replication output (per-transition firing
//! counts and reward bit patterns), so the harness itself asserts the
//! engines are byte-identical, not just that they fired the same number
//! of events. Writes `BENCH_engine.json`-ready numbers (the `batch` and
//! `lowered` sections) to stdout.
//!
//! ```text
//! cargo run --release -p bench --bin batch_ab [pairs_per_case]
//! ```

use petri_core::prelude::*;
use std::time::Instant;

/// Replications per timed block — divisible by every measured width.
const REPS_PER_BLOCK: u64 = 64;

/// Batch widths to sweep (1 = the batched path at width one, isolating
/// the SoA engine's per-lane overhead from the batching win).
const WIDTHS: [usize; 4] = [1, 4, 16, 64];

fn mm1_net() -> Net {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    b.build().unwrap()
}

/// FNV-style fold of one output's identity-relevant bits: per-transition
/// firing counts and the exact bit patterns of every reward.
fn fold_output(mut h: u64, out: &SimOutput) -> u64 {
    for &c in &out.firing_counts {
        h = (h ^ c).wrapping_mul(0x100_0000_01b3);
    }
    for &r in &out.rewards {
        h = (h ^ r.to_bits()).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One scalar block: `runs` independent replications on the interpreter,
/// one at a time.
fn time_scalar(sim: &Simulator<'_>, seed0: u64, runs: u64) -> (f64, u64) {
    let t0 = Instant::now();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..runs {
        h = fold_output(h, &sim.run_interp(seed0 + i).unwrap());
    }
    (t0.elapsed().as_nanos() as f64, h)
}

/// One batched block on the chosen engine: the same `runs` replications
/// on the same seeds, advanced `width` lanes at a time.
fn time_batched(
    sim: &Simulator<'_>,
    engine: EngineKind,
    seed0: u64,
    runs: u64,
    width: usize,
) -> (f64, u64) {
    let seeds: Vec<u64> = (0..runs).map(|i| seed0 + i).collect();
    let t0 = Instant::now();
    let batcher = BatchSimulator::new(sim);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in seeds.chunks(width) {
        let outs = match engine {
            EngineKind::Interp => batcher.run_interp(chunk),
            EngineKind::Lowered => batcher.run_lowered(chunk),
        };
        for out in outs {
            h = fold_output(h, &out.unwrap());
        }
    }
    (t0.elapsed().as_nanos() as f64, h)
}

fn measure(label: &str, sim: &Simulator<'_>, pairs: usize) {
    // Events per block (identical across variants; pair 0's count is the
    // representative denominator).
    let mut events = 0u64;
    for i in 0..REPS_PER_BLOCK {
        events += sim.run_interp(1 + i).unwrap().total_firings();
    }
    for width in WIDTHS {
        let s0 = |p: usize| (p as u64) * REPS_PER_BLOCK + 1;
        let stats = bench::ab::run_paired(
            pairs,
            |p| time_batched(sim, EngineKind::Interp, s0(p), REPS_PER_BLOCK, width),
            |p| time_scalar(sim, s0(p), REPS_PER_BLOCK),
        );
        println!(
            "{label:<16} batch   width {width:>2}: scalar {:6.1} ns/event  batched {:6.1} ns/event  \
             median paired speedup {:5.2}x",
            stats.b_ns / events as f64,
            stats.a_ns / events as f64,
            stats.speedup,
        );
    }
    for width in WIDTHS {
        let s0 = |p: usize| (p as u64) * REPS_PER_BLOCK + 1;
        let stats = bench::ab::run_paired(
            pairs,
            |p| time_batched(sim, EngineKind::Lowered, s0(p), REPS_PER_BLOCK, width),
            |p| time_batched(sim, EngineKind::Interp, s0(p), REPS_PER_BLOCK, width),
        );
        println!(
            "{label:<16} lowered width {width:>2}: interp {:6.1} ns/event  lowered {:6.1} ns/event  \
             median paired speedup {:5.2}x",
            stats.b_ns / events as f64,
            stats.a_ns / events as f64,
            stats.speedup,
        );
    }
}

fn main() {
    let pairs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    println!(
        "paired A/B, {pairs} pairs per case, {REPS_PER_BLOCK} replications per block \
         (median of adjacent-block ratios; same seeds, full-output checksums)"
    );

    let net = mm1_net();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(2_000.0));
    sim.reward_place(PlaceId::from_index(0));
    measure("mm1/2k_seconds", &sim, pairs);

    let model = wsn::build_cpu_model(&wsn::CpuModelParams::paper_defaults(0.1, 0.3));
    let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(1_000.0));
    sim.reward_place(model.places.buffer);
    measure("fig3_cpu_1000s", &sim, pairs);
}
