//! Adaptive stopping: run replications per point until the estimate settles.
//!
//! The paper states its Petri nets ran "until steady state probability
//! values were obtained" (Sec. V) without saying how that was judged. Here
//! the criterion is explicit and budget-aware: per sweep point, run
//! replications in rounds and stop once the Student-t confidence-interval
//! half-width of every *watched* metric falls under a target — or the
//! replication budget runs out. Because replications are claimed from the
//! same flattened task stream as everything else (see [`crate::grid`]) and
//! folded in index order, the outcome is bit-identical at any thread count.

use crate::grid::{Runner, Segment};
use crate::stats::{ConfidenceLevel, Welford};
use serde::{Deserialize, Serialize};

/// When to stop adding replications to a point.
///
/// A point is *settled* when every watched metric's confidence interval
/// satisfies the precision targets (both, when both are set; a metric
/// passes if **either** an absolute or a relative target is met, since a
/// mean near zero can make relative precision unreachable). At least
/// `min_replications` are always run; never more than `max_replications`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingRule {
    /// Confidence level of the interval test.
    pub level: ConfidenceLevel,
    /// Target relative half-width (`half_width / |mean|`), if any.
    pub relative: Option<f64>,
    /// Target absolute half-width, if any.
    pub absolute: Option<f64>,
    /// Replications always run before the first test (≥ 2; one observation
    /// has an infinite interval).
    pub min_replications: u64,
    /// Hard budget per point.
    pub max_replications: u64,
    /// Replications added per round after the first test fails.
    pub round: u64,
}

impl StoppingRule {
    /// Stop at `rel` relative 95 % CI half-width, with the default budget
    /// (min 8, max 256, rounds of 8).
    pub fn relative(rel: f64) -> Self {
        assert!(rel > 0.0, "relative precision target must be positive");
        StoppingRule {
            level: ConfidenceLevel::P95,
            relative: Some(rel),
            absolute: None,
            min_replications: 8,
            max_replications: 256,
            round: 8,
        }
    }

    /// Stop at `abs` absolute 95 % CI half-width, with the default budget.
    pub fn absolute(abs: f64) -> Self {
        assert!(abs > 0.0, "absolute precision target must be positive");
        StoppingRule {
            level: ConfidenceLevel::P95,
            relative: None,
            absolute: Some(abs),
            min_replications: 8,
            max_replications: 256,
            round: 8,
        }
    }

    /// Override the replication budget (`min`, `max`) and round size.
    pub fn with_budget(mut self, min: u64, max: u64, round: u64) -> Self {
        assert!(min >= 2, "need at least two replications for an interval");
        assert!(max >= min, "max replications below min");
        assert!(round >= 1, "round size must be positive");
        self.min_replications = min;
        self.max_replications = max;
        self.round = round;
        self
    }

    /// Is this accumulator's estimate settled under the rule?
    ///
    /// Works on any [`Welford`] — per-replication rewards here, but equally
    /// the batch means of a single long run (`BatchMeans::stats`).
    pub fn settled(&self, w: &Welford) -> bool {
        if w.count() < 2 {
            return false;
        }
        let ci = w.confidence_interval(self.level);
        // A zero half-width is an exact estimate: settled by definition,
        // even at mean 0 where the relative width is undefined (infinite).
        let rel_ok = self
            .relative
            .map(|t| ci.half_width == 0.0 || ci.relative_half_width() <= t);
        let abs_ok = self.absolute.map(|t| ci.half_width <= t);
        match (rel_ok, abs_ok) {
            (None, None) => true,
            (Some(r), None) => r,
            (None, Some(a)) => a,
            // Either precision notion suffices when both are requested.
            (Some(r), Some(a)) => r || a,
        }
    }
}

/// The adaptive estimate for one sweep point.
#[derive(Debug, Clone)]
pub struct AdaptivePoint {
    /// Per-metric statistics over the replications run (same order as the
    /// task's observation vector).
    pub stats: Vec<Welford>,
    /// Replications actually run.
    pub replications: u64,
    /// Whether the watched metrics settled within the budget (`false`
    /// means the point exhausted `max_replications` unsettled).
    pub converged: bool,
}

impl AdaptivePoint {
    fn empty() -> Self {
        AdaptivePoint {
            stats: Vec::new(),
            replications: 0,
            converged: false,
        }
    }
}

/// Plan the next adaptive round: one segment of additional replications per
/// still-unsettled point. An empty plan means every point is done (settled
/// or out of budget).
fn plan_round(out: &[AdaptivePoint], rule: &StoppingRule, round: u64) -> Vec<Segment> {
    out.iter()
        .enumerate()
        .filter(|(_, p)| !p.converged && p.replications < rule.max_replications)
        .map(|(point, p)| {
            let want = if p.replications < rule.min_replications {
                rule.min_replications - p.replications
            } else {
                round
            };
            let budget = rule.max_replications - p.replications;
            Segment {
                point,
                base_rep: p.replications,
                count: want.min(budget) as usize,
            }
        })
        .collect()
}

/// Fold one segment's observation vectors into its point and re-test the
/// stopping rule. Pushes are in replication-index order, so the outcome is
/// bit-identical at any thread/shard count.
fn fold_segment(
    p: &mut AdaptivePoint,
    observations: Vec<Vec<f64>>,
    rule: &StoppingRule,
    watch: &[usize],
) {
    for obs in observations {
        if p.stats.is_empty() {
            p.stats = vec![Welford::new(); obs.len()];
            for &w in watch {
                assert!(
                    w < obs.len(),
                    "watch index {w} out of range: tasks return {} metric(s)",
                    obs.len()
                );
            }
        }
        assert_eq!(
            p.stats.len(),
            obs.len(),
            "observation vectors must have a fixed length"
        );
        for (w, x) in p.stats.iter_mut().zip(obs) {
            w.push(x);
        }
        p.replications += 1;
    }
    let watched_settled = if watch.is_empty() {
        p.stats.iter().all(|w| rule.settled(w))
    } else {
        watch.iter().all(|&i| rule.settled(&p.stats[i]))
    };
    if p.replications >= rule.min_replications && watched_settled {
        p.converged = true;
    }
}

impl Runner {
    /// Run an adaptive `(point × replication)` grid: each of `points`
    /// points runs rounds of replications until `rule` declares the watched
    /// metrics settled or the budget is spent.
    ///
    /// `task(point, rep)` returns the observation vector of one
    /// replication; all points must produce vectors of equal length.
    /// `watch` lists the metric indices the rule tests (empty = all).
    /// Rounds are scheduled as one flattened task stream across all still
    /// unsettled points, so late-converging points keep every core busy.
    /// Closures always run in-process; the portable analogue is
    /// [`Runner::run_adaptive_job`].
    pub fn run_adaptive<E, F>(
        &self,
        points: usize,
        rule: &StoppingRule,
        watch: &[usize],
        task: F,
    ) -> Result<Vec<AdaptivePoint>, E>
    where
        E: Send,
        F: Fn(usize, u64) -> Result<Vec<f64>, E> + Sync,
    {
        // The struct's fields are public (and deserializable), so the
        // `with_budget` asserts may have been bypassed: a zero round size
        // would plan empty rounds forever. Clamp rather than hang.
        let round = rule.round.max(1);
        let mut out: Vec<AdaptivePoint> = (0..points).map(|_| AdaptivePoint::empty()).collect();
        loop {
            let segments = plan_round(&out, rule, round);
            if segments.is_empty() {
                return Ok(out);
            }
            for (seg, observations) in self.run_segments(&segments, &task)? {
                fold_segment(&mut out[seg.point], observations, rule, watch);
            }
        }
    }

    /// Adaptive rounds of a *portable* job on the configured backend: the
    /// sharded analogue of [`Runner::run_adaptive`].
    ///
    /// Each slot of `job` must return its observation vector encoded with
    /// [`crate::wire::put_f64s`]. Every round is planned from the folded
    /// statistics (deterministic), described as a [`crate::exec::TaskManifest`]
    /// and dispatched to the backend — so a run with 4 worker subprocesses
    /// spends its replication budget, point by point, bit-identically to an
    /// in-process run.
    pub fn run_adaptive_job(
        &self,
        job: &dyn crate::exec::PortableJob,
        points: usize,
        rule: &StoppingRule,
        watch: &[usize],
        seed_of: &dyn Fn(usize, u64) -> u64,
    ) -> Result<Vec<AdaptivePoint>, crate::exec::ExecError> {
        use crate::exec::{ExecError, TaskManifest};
        let round = rule.round.max(1);
        let mut out: Vec<AdaptivePoint> = (0..points).map(|_| AdaptivePoint::empty()).collect();
        loop {
            let segments = plan_round(&out, rule, round);
            if segments.is_empty() {
                return Ok(out);
            }
            let manifest = TaskManifest::for_job(job, segments.clone(), seed_of);
            let flat = self.dispatch(job, &manifest)?;
            debug_assert_eq!(flat.len(), manifest.total_slots());
            let mut slots = flat.into_iter();
            for seg in &segments {
                let observations: Vec<Vec<f64>> = slots
                    .by_ref()
                    .take(seg.count)
                    .map(|bytes| {
                        crate::wire::decode_f64s(&bytes).map_err(|e| {
                            ExecError::Protocol(format!(
                                "point {} observation vector: {e}",
                                seg.point
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                fold_segment(&mut out[seg.point], observations, rule, watch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BatchMeans;

    /// Deterministic pseudo-noise in [-0.5, 0.5) from (point, rep).
    fn noise(point: usize, rep: u64) -> f64 {
        let mut z = (point as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(rep.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z ^= z >> 30;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn tight_points_stop_at_min_noisy_points_run_longer() {
        let rule = StoppingRule::relative(0.02).with_budget(4, 512, 16);
        // Point 0: tiny noise around 10 (settles immediately).
        // Point 1: large noise around 10 (needs many replications).
        let out = Runner::new(4)
            .run_adaptive(2, &rule, &[], |p, r| {
                let scale = if p == 0 { 0.001 } else { 2.0 };
                Ok::<_, std::convert::Infallible>(vec![10.0 + scale * noise(p, r)])
            })
            .unwrap();
        assert!(out[0].converged);
        assert_eq!(out[0].replications, 4);
        assert!(out[1].converged, "wide point should still settle in budget");
        assert!(
            out[1].replications > out[0].replications,
            "noisy point must take more replications: {} vs {}",
            out[1].replications,
            out[0].replications
        );
        assert!((out[0].stats[0].mean() - 10.0).abs() < 0.01);
    }

    #[test]
    fn budget_cap_marks_unconverged() {
        let rule = StoppingRule::relative(1e-6).with_budget(2, 10, 4);
        let out = Runner::new(2)
            .run_adaptive(1, &rule, &[], |p, r| {
                Ok::<_, std::convert::Infallible>(vec![noise(p, r)])
            })
            .unwrap();
        assert!(!out[0].converged);
        assert_eq!(out[0].replications, 10);
    }

    #[test]
    fn watch_restricts_the_test() {
        // Metric 0 is noisy, metric 1 is constant. Watching only metric 1
        // stops at min; watching all runs past it.
        let rule = StoppingRule::relative(0.01).with_budget(4, 64, 4);
        let task = |p: usize, r: u64| Ok::<_, std::convert::Infallible>(vec![noise(p, r), 5.0]);
        let watched = Runner::new(2).run_adaptive(1, &rule, &[1], task).unwrap();
        assert_eq!(watched[0].replications, 4);
        assert!(watched[0].converged);
        let all = Runner::new(2).run_adaptive(1, &rule, &[], task).unwrap();
        assert!(all[0].replications > 4);
    }

    #[test]
    fn adaptive_is_deterministic_across_thread_counts() {
        let rule = StoppingRule::relative(0.05).with_budget(4, 128, 8);
        let run = |threads: usize| {
            Runner::new(threads)
                .run_adaptive(3, &rule, &[], |p, r| {
                    Ok::<_, std::convert::Infallible>(vec![
                        1.0 + noise(p, r),
                        100.0 + noise(p, r + 1000),
                    ])
                })
                .unwrap()
        };
        let a = run(1);
        for threads in [2, 8] {
            let b = run(threads);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.replications, y.replications);
                assert_eq!(x.converged, y.converged);
                // Bit-identical moments, not just approximately equal.
                assert_eq!(x.stats, y.stats);
            }
        }
    }

    #[test]
    fn errors_cancel_the_round() {
        let rule = StoppingRule::relative(0.05).with_budget(4, 64, 8);
        let err = Runner::new(4)
            .run_adaptive(2, &rule, &[], |p, r| {
                if p == 1 && r == 2 {
                    Err("replication failed")
                } else {
                    Ok(vec![noise(p, r)])
                }
            })
            .unwrap_err();
        assert_eq!(err, "replication failed");
    }

    #[test]
    fn batch_means_feed_the_rule() {
        // A single long correlated run: the rule applies unchanged to the
        // batch-means accumulator.
        let mut bm = BatchMeans::new(100);
        let mut x = 0.0f64;
        for i in 0..20_000 {
            // AR(1)-ish correlated stream around 3.0.
            x = 0.9 * x + noise(7, i);
            bm.push(3.0 + x);
        }
        let loose = StoppingRule::relative(0.1);
        let tight = StoppingRule::relative(1e-9);
        assert!(loose.settled(bm.stats()), "{:?}", bm.stats());
        assert!(!tight.settled(bm.stats()));
        // An absolute target works on the same stats.
        assert!(StoppingRule::absolute(1.0).settled(bm.stats()));
    }

    #[test]
    fn zero_round_rule_still_terminates() {
        // Public fields / deserialization can bypass with_budget's asserts;
        // the runner must clamp rather than plan empty rounds forever.
        let rule = StoppingRule {
            level: crate::stats::ConfidenceLevel::P95,
            relative: Some(1e-9), // unreachable: forces budget exhaustion
            absolute: None,
            min_replications: 2,
            max_replications: 7,
            round: 0,
        };
        let out = Runner::new(2)
            .run_adaptive(1, &rule, &[], |p, r| {
                Ok::<_, std::convert::Infallible>(vec![noise(p, r)])
            })
            .unwrap();
        assert!(!out[0].converged);
        assert_eq!(out[0].replications, 7);
    }

    #[test]
    fn adaptive_job_matches_adaptive_closure_bit_for_bit() {
        // The portable path (observation vectors through the wire codec)
        // must spend the budget and fold the moments exactly like the
        // closure path.
        struct NoiseJob;
        impl crate::exec::PortableJob for NoiseJob {
            fn kind(&self) -> &'static str {
                "test-noise"
            }
            fn encode_payload(&self, _buf: &mut Vec<u8>) {}
            fn run_slot(&self, point: usize, rep: u64, _seed: u64) -> Result<Vec<u8>, String> {
                let mut out = Vec::new();
                crate::wire::put_f64s(
                    &mut out,
                    &[1.0 + noise(point, rep), 100.0 + noise(point, rep + 1000)],
                );
                Ok(out)
            }
        }
        let rule = StoppingRule::relative(0.05).with_budget(4, 128, 8);
        let by_closure = Runner::new(2)
            .run_adaptive(3, &rule, &[], |p, r| {
                Ok::<_, std::convert::Infallible>(vec![
                    1.0 + noise(p, r),
                    100.0 + noise(p, r + 1000),
                ])
            })
            .unwrap();
        for threads in [1, 4] {
            let by_job = Runner::new(threads)
                .run_adaptive_job(&NoiseJob, 3, &rule, &[], &|_, _| 0)
                .unwrap();
            for (a, b) in by_closure.iter().zip(by_job.iter()) {
                assert_eq!(a.replications, b.replications);
                assert_eq!(a.converged, b.converged);
                assert_eq!(a.stats, b.stats);
            }
        }
    }

    #[test]
    fn settled_needs_two_observations() {
        let rule = StoppingRule::relative(0.5);
        let mut w = Welford::new();
        assert!(!rule.settled(&w));
        w.push(1.0);
        assert!(!rule.settled(&w));
        w.push(1.0);
        // Zero variance: interval collapses, rule passes.
        assert!(rule.settled(&w));
    }

    #[test]
    fn exactly_zero_metric_settles_at_min_replications() {
        // A reward that is 0.0 in every replication (state never reached)
        // has an exact zero-width interval; a relative-only rule must not
        // burn the whole budget on it.
        let rule = StoppingRule::relative(0.05).with_budget(4, 256, 8);
        let out = Runner::new(2)
            .run_adaptive(1, &rule, &[], |_p, _r| {
                Ok::<_, std::convert::Infallible>(vec![0.0])
            })
            .unwrap();
        assert!(out[0].converged);
        assert_eq!(out[0].replications, 4);
    }
}
