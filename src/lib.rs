//! # wsn-petri — Energy Modeling of Wireless Sensor Nodes Based on Petri Nets
//!
//! A from-scratch Rust reproduction of Shareef & Zhu (2010). This umbrella
//! crate re-exports the five sub-crates; see the README for a guided tour
//! and `examples/` for runnable entry points.
//!
//! | Crate | Role |
//! |-------|------|
//! | [`sim_runtime`] | Two-level (sweep × replication) orchestration: flattened work-stealing grid, deterministic aggregation, adaptive stopping |
//! | [`petri_core`] | EDSPN/SCPN modeling + simulation engine (the TimeNET stand-in) |
//! | [`markov`] | CTMC/DTMC solvers + the paper's supplementary-variable equations |
//! | [`des`] | Discrete-event simulators (the paper's ground truth) |
//! | [`energy`] | Typed power/energy units, tables, accounting, breakdowns |
//! | [`wsn`] | The paper's concrete models, sweeps and experiment drivers |
//!
//! ## Thirty-second tour
//!
//! ```
//! use wsn_petri::prelude::*;
//!
//! // The paper's headline question: what Power-Down Threshold minimizes
//! // a sensor node's energy? Sweep the closed-workload node model:
//! let grid = [1e-9, 0.00177, 0.01, 1.0, 100.0];
//! let cfg = NodeSweepConfig { horizon: 120.0, ..Default::default() };
//! let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &cfg);
//! let best = sweep.optimum_analysis();
//! assert!(best.optimal_pdt > 1e-9 && best.optimal_pdt < 100.0); // interior!
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use des;
pub use energy;
pub use markov;
pub use petri_core;
pub use sim_runtime;
pub use wsn;

/// One-stop imports for the common workflows.
pub mod prelude {
    pub use des::{
        simulate_cpu, simulate_node, CpuSimParams, NodeSimParams, NodeSimResult, Workload,
    };
    pub use energy::{
        Battery, ComponentPower, Energy, NodeBreakdown, Power, PowerState, CC2420_RADIO,
        IMOTE2_MEASURED, PXA271_CPU,
    };
    pub use markov::{CpuMarkovParams, CpuPowerRates, Ctmc, Mm1};
    pub use petri_core::prelude::*;
    pub use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
    pub use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig, OptimumAnalysis};
    pub use wsn::experiments::simple_system::{run_simple_system, run_table_x};
    pub use wsn::{
        analytic_probabilities, build_cpu_model, build_node_model, simulate_cpu_model,
        simulate_node_model, simulate_simple_node, CpuModelParams, SimpleNodeParams,
    };
}
