//! Portable-job descriptions of the experiment drivers' task families.
//!
//! Each parallel driver in this module's siblings describes its unit task
//! as a [`PortableJob`]: a registry key plus a hand-encoded payload from
//! which a **worker subprocess** can rebuild the exact task closure. The
//! slot outputs use the `wire::put_f64s` observation-vector convention, so
//! every job works both under fixed grids (`Runner::run_job`) and the
//! adaptive stopping rounds (`Runner::run_adaptive_job`) — and because the
//! caller decodes the same bytes whether a slot ran in this process or in a
//! `repro --worker` shard, driver results are **byte-identical across
//! backends** by construction.
//!
//! Binaries that want to serve as workers register every decoder here via
//! [`register`].

use crate::cpu_model::{simulate_cpu_model, simulate_cpu_model_batch, CpuModelParams};
use crate::node::simulate_node_model;
use des::{simulate_cpu, simulate_node, CpuSimParams, NodeSimParams, Workload};
use energy::{CC2420_RADIO, PXA271_CPU};
use sim_runtime::wire::{self, Reader, WireError};
use sim_runtime::{JobRegistry, PortableJob};

/// Register every wsn experiment job; workers (e.g. `repro --worker`) call
/// this at startup.
pub fn register(reg: &mut JobRegistry) {
    reg.register(CpuComparisonJob::KIND, CpuComparisonJob::decode_boxed);
    reg.register(NodeSweepJob::KIND, NodeSweepJob::decode_boxed);
    reg.register(ValidationJob::KIND, ValidationJob::decode_boxed);
    reg.register(SeedAblationJob::KIND, SeedAblationJob::decode_boxed);
}

fn put_workload(buf: &mut Vec<u8>, w: Workload) {
    match w {
        Workload::Closed { interval } => {
            wire::put_u8(buf, 0);
            wire::put_f64(buf, interval);
        }
        Workload::Open { rate } => {
            wire::put_u8(buf, 1);
            wire::put_f64(buf, rate);
        }
    }
}

fn get_workload(r: &mut Reader<'_>) -> Result<Workload, WireError> {
    match r.get_u8()? {
        0 => Ok(Workload::Closed {
            interval: r.get_f64()?,
        }),
        1 => Ok(Workload::Open { rate: r.get_f64()? }),
        tag => Err(WireError::new(format!("unknown workload tag {tag}"))),
    }
}

// --- CPU comparison (Figs. 4–9, Tables IV–VI) ----------------------------

/// One replication's worth of stochastic output at one sweep point of the
/// three-way CPU comparison (the DES and Petri runs share a slot so the
/// grid stays dense).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RepOutput {
    pub sim_probs: [f64; 4],
    pub sim_energy_j: f64,
    pub petri_probs: [f64; 4],
    pub petri_energy_j: f64,
}

impl RepOutput {
    pub(crate) fn to_obs(self) -> Vec<f64> {
        let mut v = Vec::with_capacity(10);
        v.extend(self.sim_probs);
        v.push(self.sim_energy_j);
        v.extend(self.petri_probs);
        v.push(self.petri_energy_j);
        v
    }

    pub(crate) fn from_obs(obs: &[f64]) -> Result<Self, WireError> {
        if obs.len() != CPU_COMPARISON_OBS_LEN {
            return Err(WireError::new(format!(
                "cpu-comparison slot has {} metric(s), expected {CPU_COMPARISON_OBS_LEN}",
                obs.len()
            )));
        }
        Ok(RepOutput {
            sim_probs: obs[0..4].try_into().unwrap(),
            sim_energy_j: obs[4],
            petri_probs: obs[5..9].try_into().unwrap(),
            petri_energy_j: obs[9],
        })
    }
}

/// Observation length of a [`CpuComparisonJob`] slot: 4 DES state
/// fractions, DES energy, 4 Petri state fractions, Petri energy.
pub const CPU_COMPARISON_OBS_LEN: usize = 10;

/// Watch indices for adaptive CPU-comparison budgets: the DES and Petri
/// energy curves. Of the three curves the figures plot, the Markov column
/// is a closed form with zero variance; requiring *both* stochastic
/// curves' CIs to settle means the stopping decision always tracks
/// whichever of them is currently the widest — the variance-aware pick.
pub const CPU_COMPARISON_WATCH: [usize; 2] = [4, 9];

/// The unit task of `run_cpu_comparison`: one DES + one Petri replication
/// of one threshold point.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuComparisonJob {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
    /// Horizon (s).
    pub horizon: f64,
    /// The fixed Power-Up Delay (s).
    pub power_up_delay: f64,
    /// Base RNG seed (the Petri stream is derived from it per slot).
    pub seed: u64,
    /// Threshold grid; `point` indexes into it.
    pub grid: Vec<f64>,
}

impl CpuComparisonJob {
    /// Registry key.
    pub const KIND: &'static str = "wsn/cpu-comparison";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = CpuComparisonJob {
            lambda: r.get_f64()?,
            mu: r.get_f64()?,
            horizon: r.get_f64()?,
            power_up_delay: r.get_f64()?,
            seed: r.get_u64()?,
            grid: r.get_f64s()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for CpuComparisonJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        wire::put_f64(buf, self.lambda);
        wire::put_f64(buf, self.mu);
        wire::put_f64(buf, self.horizon);
        wire::put_f64(buf, self.power_up_delay);
        wire::put_u64(buf, self.seed);
        wire::put_f64s(buf, &self.grid);
    }

    fn run_slot(&self, point: usize, rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        let pdt = *self
            .grid
            .get(point)
            .ok_or_else(|| format!("point {point} outside the {}-point grid", self.grid.len()))?;
        // Ground truth: one DES replication on the manifest seed.
        let sim_r = simulate_cpu(
            &CpuSimParams {
                lambda: self.lambda,
                mu: self.mu,
                power_down_threshold: pdt,
                power_up_delay: self.power_up_delay,
                horizon: self.horizon,
            },
            seed,
        );
        // One Petri-net replication of the same point, on its own stream.
        let petri_seed = petri_core::rng::SimRng::child_seed(self.seed ^ 0xA5A5, rep);
        let petri_r = simulate_cpu_model(
            &CpuModelParams {
                lambda: self.lambda,
                mu: self.mu,
                power_down_threshold: pdt,
                power_up_delay: self.power_up_delay,
            },
            self.horizon,
            petri_seed,
        );
        let out = RepOutput {
            sim_probs: sim_r.probabilities(),
            sim_energy_j: sim_r.energy(&PXA271_CPU).joules(),
            petri_probs: petri_r.probabilities,
            petri_energy_j: petri_r.energy(&PXA271_CPU, self.horizon).joules(),
        };
        let mut bytes = Vec::with_capacity(10 * 8 + 4);
        wire::put_f64s(&mut bytes, &out.to_obs());
        Ok(bytes)
    }

    fn run_batch(
        &self,
        point: usize,
        base_rep: u64,
        seeds: &[u64],
    ) -> Vec<Result<Vec<u8>, String>> {
        let pdt = match self.grid.get(point) {
            Some(&pdt) => pdt,
            None => {
                let e = format!("point {point} outside the {}-point grid", self.grid.len());
                return seeds.iter().map(|_| Err(e.clone())).collect();
            }
        };
        // The Petri half of every lane shares one compiled net; the DES
        // half stays scalar (its engine has no batched entry). Seeds are
        // derived exactly as `run_slot` derives them, so bytes match.
        let petri_seeds: Vec<u64> = (0..seeds.len() as u64)
            .map(|i| petri_core::rng::SimRng::child_seed(self.seed ^ 0xA5A5, base_rep + i))
            .collect();
        let petri_params = CpuModelParams {
            lambda: self.lambda,
            mu: self.mu,
            power_down_threshold: pdt,
            power_up_delay: self.power_up_delay,
        };
        let petri = simulate_cpu_model_batch(&petri_params, self.horizon, &petri_seeds);
        seeds
            .iter()
            .zip(petri)
            .map(|(&seed, petri_r)| {
                let sim_r = simulate_cpu(
                    &CpuSimParams {
                        lambda: self.lambda,
                        mu: self.mu,
                        power_down_threshold: pdt,
                        power_up_delay: self.power_up_delay,
                        horizon: self.horizon,
                    },
                    seed,
                );
                let out = RepOutput {
                    sim_probs: sim_r.probabilities(),
                    sim_energy_j: sim_r.energy(&PXA271_CPU).joules(),
                    petri_probs: petri_r.probabilities,
                    petri_energy_j: petri_r.energy(&PXA271_CPU, self.horizon).joules(),
                };
                let mut bytes = Vec::with_capacity(10 * 8 + 4);
                wire::put_f64s(&mut bytes, &out.to_obs());
                Ok(bytes)
            })
            .collect()
    }
}

// --- node sweep (Figs. 14/15) --------------------------------------------

/// Observation layout of a [`NodeSweepJob`] slot:
/// `[total_j, cpu_probs×4, radio_probs×4, cpu_wakeups, radio_wakeups,
/// cycles]`. Index 0 (total node energy) is the natural watch metric for
/// adaptive budgets.
pub const NODE_SWEEP_OBS_LEN: usize = 12;

/// Watch index of total node energy in a node-sweep observation.
pub const NODE_SWEEP_WATCH_TOTAL_J: usize = 0;

/// The unit task of `run_node_sweep`: one replication of the Fig. 12/13
/// node SCPN at one threshold point.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSweepJob {
    /// Workload generator.
    pub workload: Workload,
    /// Horizon (s).
    pub horizon: f64,
    /// Threshold grid; `point` indexes into it.
    pub grid: Vec<f64>,
}

impl NodeSweepJob {
    /// Registry key.
    pub const KIND: &'static str = "wsn/node-sweep";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = NodeSweepJob {
            workload: get_workload(&mut r)?,
            horizon: r.get_f64()?,
            grid: r.get_f64s()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }

    /// Rebuild the simulation result a slot observed (the inverse of
    /// `run_slot`'s encoding; `total_j` is redundant and dropped).
    pub(crate) fn result_from_obs(
        &self,
        obs: &[f64],
    ) -> Result<crate::node::NodePetriResult, WireError> {
        if obs.len() != NODE_SWEEP_OBS_LEN {
            return Err(WireError::new(format!(
                "node-sweep slot has {} metric(s), expected {NODE_SWEEP_OBS_LEN}",
                obs.len()
            )));
        }
        Ok(crate::node::NodePetriResult {
            cpu_probabilities: obs[1..5].try_into().unwrap(),
            radio_probabilities: obs[5..9].try_into().unwrap(),
            cpu_wakeups: obs[9],
            radio_wakeups: obs[10],
            cycles_completed: obs[11],
            horizon: self.horizon,
        })
    }
}

impl PortableJob for NodeSweepJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_workload(buf, self.workload);
        wire::put_f64(buf, self.horizon);
        wire::put_f64s(buf, &self.grid);
    }

    fn run_slot(&self, point: usize, _rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        let pdt = *self
            .grid
            .get(point)
            .ok_or_else(|| format!("point {point} outside the {}-point grid", self.grid.len()))?;
        let mut params = NodeSimParams::paper_defaults(self.workload, pdt);
        params.horizon = self.horizon;
        let out = simulate_node_model(&params, seed);
        let total_j = out.breakdown(&PXA271_CPU, &CC2420_RADIO).total().joules();
        let mut obs = Vec::with_capacity(NODE_SWEEP_OBS_LEN);
        obs.push(total_j);
        obs.extend(out.cpu_probabilities);
        obs.extend(out.radio_probabilities);
        obs.push(out.cpu_wakeups);
        obs.push(out.radio_wakeups);
        obs.push(out.cycles_completed);
        let mut bytes = Vec::with_capacity(NODE_SWEEP_OBS_LEN * 8 + 4);
        wire::put_f64s(&mut bytes, &obs);
        Ok(bytes)
    }
}

// --- validation sweep ----------------------------------------------------

/// Observation layout of a [`ValidationJob`] slot:
/// `[petri_j, des_j, petri_cpu_wakeups, des_cpu_wakeups]`.
pub const VALIDATION_OBS_LEN: usize = 4;

/// Watch indices (Petri and DES energy) for adaptive validation budgets.
pub const VALIDATION_WATCH: [usize; 2] = [0, 1];

/// The unit task of `run_validation`: one Petri run plus one DES run of the
/// same point. The DES stream uses `seed + 1`, exactly as the fixed
/// single-run sweep always has.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationJob {
    /// Workload generator.
    pub workload: Workload,
    /// Horizon (s).
    pub horizon: f64,
    /// Threshold grid; `point` indexes into it.
    pub grid: Vec<f64>,
}

impl ValidationJob {
    /// Registry key.
    pub const KIND: &'static str = "wsn/validation";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = ValidationJob {
            workload: get_workload(&mut r)?,
            horizon: r.get_f64()?,
            grid: r.get_f64s()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for ValidationJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_workload(buf, self.workload);
        wire::put_f64(buf, self.horizon);
        wire::put_f64s(buf, &self.grid);
    }

    fn run_slot(&self, point: usize, _rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        let pdt = *self
            .grid
            .get(point)
            .ok_or_else(|| format!("point {point} outside the {}-point grid", self.grid.len()))?;
        let mut params = NodeSimParams::paper_defaults(self.workload, pdt);
        params.horizon = self.horizon;
        let petri = simulate_node_model(&params, seed);
        let des = simulate_node(&params, seed.wrapping_add(1));
        let petri_j = petri.breakdown(&PXA271_CPU, &CC2420_RADIO).total().joules();
        let des_j = des.total_energy(&PXA271_CPU, &CC2420_RADIO).joules();
        let mut bytes = Vec::with_capacity(VALIDATION_OBS_LEN * 8 + 4);
        wire::put_f64s(
            &mut bytes,
            &[petri_j, des_j, petri.cpu_wakeups, des.cpu_wakeups as f64],
        );
        Ok(bytes)
    }
}

// --- seed ablation -------------------------------------------------------

/// The unit task of `seed_ablation`: one CPU-net replication, observing
/// `P(standby)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedAblationJob {
    /// CPU model parameters.
    pub params: CpuModelParams,
    /// Horizon (s).
    pub horizon: f64,
}

impl SeedAblationJob {
    /// Registry key.
    pub const KIND: &'static str = "wsn/seed-ablation";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = SeedAblationJob {
            params: CpuModelParams {
                lambda: r.get_f64()?,
                mu: r.get_f64()?,
                power_down_threshold: r.get_f64()?,
                power_up_delay: r.get_f64()?,
            },
            horizon: r.get_f64()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for SeedAblationJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        wire::put_f64(buf, self.params.lambda);
        wire::put_f64(buf, self.params.mu);
        wire::put_f64(buf, self.params.power_down_threshold);
        wire::put_f64(buf, self.params.power_up_delay);
        wire::put_f64(buf, self.horizon);
    }

    fn run_slot(&self, _point: usize, _rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        use petri_core::prelude::*;
        let model = crate::cpu_model::build_cpu_model(&self.params);
        let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(self.horizon));
        let r_standby = sim.reward_place(model.places.stand_by);
        let out = sim.run(seed).map_err(|e| e.to_string())?;
        let mut bytes = Vec::with_capacity(12);
        wire::put_f64s(&mut bytes, &[out.reward(r_standby)]);
        Ok(bytes)
    }

    fn run_batch(
        &self,
        _point: usize,
        _base_rep: u64,
        seeds: &[u64],
    ) -> Vec<Result<Vec<u8>, String>> {
        use petri_core::prelude::*;
        let model = crate::cpu_model::build_cpu_model(&self.params);
        let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(self.horizon));
        let r_standby = sim.reward_place(model.places.stand_by);
        BatchSimulator::new(&sim)
            .run(seeds)
            .into_iter()
            .map(|out| {
                let out = out.map_err(|e| e.to_string())?;
                let mut bytes = Vec::with_capacity(12);
                wire::put_f64s(&mut bytes, &[out.reward(r_standby)]);
                Ok(bytes)
            })
            .collect()
    }
}

/// Decode one slot's observation vector, mapping wire errors to the
/// driver-facing executor error type.
pub(crate) fn decode_obs(bytes: &[u8], what: &str) -> Result<Vec<f64>, String> {
    wire::decode_f64s(bytes).map_err(|e| format!("{what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(job: &dyn PortableJob, reg: &JobRegistry) -> Box<dyn PortableJob> {
        let mut payload = Vec::new();
        job.encode_payload(&mut payload);
        reg.decode(job.kind(), &payload).unwrap()
    }

    #[test]
    fn payloads_round_trip_and_slots_agree() {
        let mut reg = JobRegistry::new();
        register(&mut reg);
        let jobs: Vec<Box<dyn PortableJob>> = vec![
            Box::new(CpuComparisonJob {
                lambda: 1.0,
                mu: 10.0,
                horizon: 150.0,
                power_up_delay: 0.3,
                seed: 0x5EED,
                grid: vec![0.001, 0.5],
            }),
            Box::new(NodeSweepJob {
                workload: Workload::Closed { interval: 1.0 },
                horizon: 80.0,
                grid: vec![0.00177, 1.0],
            }),
            Box::new(ValidationJob {
                workload: Workload::Open { rate: 1.0 },
                horizon: 80.0,
                grid: vec![0.01],
            }),
            Box::new(SeedAblationJob {
                params: CpuModelParams::paper_defaults(0.3, 0.3),
                horizon: 100.0,
            }),
        ];
        for job in &jobs {
            let back = round_trip(job.as_ref(), &reg);
            assert_eq!(back.kind(), job.kind());
            // Decoded job computes the exact same slot bytes.
            let a = job.run_slot(0, 1, 77).unwrap();
            let b = back.run_slot(0, 1, 77).unwrap();
            assert_eq!(a, b, "{} diverged after round-trip", job.kind());
        }
    }

    #[test]
    fn rep_output_obs_round_trips() {
        let out = RepOutput {
            sim_probs: [0.1, 0.2, 0.3, 0.4],
            sim_energy_j: 12.5,
            petri_probs: [0.4, 0.3, 0.2, 0.1],
            petri_energy_j: 11.25,
        };
        assert_eq!(RepOutput::from_obs(&out.to_obs()).unwrap(), out);
        assert!(RepOutput::from_obs(&[1.0; 9]).is_err());
    }

    #[test]
    fn batch_overrides_match_scalar_slot_bytes() {
        let jobs: Vec<Box<dyn PortableJob>> = vec![
            Box::new(CpuComparisonJob {
                lambda: 1.0,
                mu: 10.0,
                horizon: 120.0,
                power_up_delay: 0.3,
                seed: 0x5EED,
                grid: vec![0.001, 0.5],
            }),
            Box::new(SeedAblationJob {
                params: CpuModelParams::paper_defaults(0.3, 0.3),
                horizon: 100.0,
            }),
        ];
        for job in &jobs {
            let seeds: Vec<u64> = (100..107).collect();
            let base_rep = 2u64;
            let batched = job.run_batch(0, base_rep, &seeds);
            assert_eq!(batched.len(), seeds.len());
            for (i, (&seed, got)) in seeds.iter().zip(&batched).enumerate() {
                let want = job.run_slot(0, base_rep + i as u64, seed).unwrap();
                assert_eq!(
                    got.as_ref().unwrap(),
                    &want,
                    "{} lane {i} diverged from scalar",
                    job.kind()
                );
            }
        }
    }

    #[test]
    fn batch_override_reports_out_of_range_point_per_lane() {
        let job = CpuComparisonJob {
            lambda: 1.0,
            mu: 10.0,
            horizon: 50.0,
            power_up_delay: 0.3,
            seed: 1,
            grid: vec![0.1],
        };
        let out = job.run_batch(7, 0, &[1, 2, 3]);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn out_of_range_point_is_a_task_error() {
        let job = NodeSweepJob {
            workload: Workload::Closed { interval: 1.0 },
            horizon: 50.0,
            grid: vec![0.1],
        };
        assert!(job.run_slot(1, 0, 1).is_err());
    }
}
