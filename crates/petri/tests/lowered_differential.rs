//! Differential tests for the lowered micro-op engine: the default
//! executor behind `Simulator::run` and `BatchSimulator::run` must
//! reproduce the interpreter (`run_interp`) and the reference engine
//! (`run_reference`) **bit for bit** — identical firing counts, reward
//! values, final markings, traces, and errors — for every seed, at every
//! batch width, across every feature the compiler lowers: uncolored and
//! colored nets, reducible and program-fallback guards, inhibitors,
//! immediate priorities and weights, all three memory policies, the
//! >32-transition heap-scheduler fallback, traces, and warm-up windows.
//!
//! All engines share one RNG and are written to consume draws in the same
//! order, so any divergence is a real bug in the lowering pass or the
//! direct-threaded executor, not floating-point noise — hence `assert_eq`
//! on `f64` values, not tolerances.

use petri_core::arc::ColorExpr;
use petri_core::prelude::*;
use petri_core::sim::RewardSpec;
use proptest::prelude::*;

/// Batch widths every net is checked at (1 = degenerate batch, 2/8 split
/// the seed set unevenly, 33 runs everything in one ragged chunk).
const WIDTHS: [usize; 4] = [1, 2, 8, 33];
const SEEDS: std::ops::Range<u64> = 0..25;

fn assert_same_output(a: &SimOutput, b: &SimOutput, ctx: &str) {
    assert_eq!(
        a.firing_counts, b.firing_counts,
        "{ctx}: firing counts diverged"
    );
    assert_eq!(a.rewards, b.rewards, "{ctx}: rewards diverged");
    assert_eq!(
        a.final_marking, b.final_marking,
        "{ctx}: final markings diverged"
    );
    assert_eq!(a.trace, b.trace, "{ctx}: traces diverged");
    assert_eq!(a.trace_dropped, b.trace_dropped, "{ctx}: trace_dropped");
    assert_eq!(a.observed_time, b.observed_time, "{ctx}: observed_time");
}

fn assert_same_result(a: &Result<SimOutput, SimError>, b: &Result<SimOutput, SimError>, ctx: &str) {
    match (a, b) {
        (Ok(a), Ok(b)) => assert_same_output(a, b, ctx),
        (Err(a), Err(b)) => assert_eq!(a, b, "{ctx}: errors diverged"),
        (a, b) => panic!("{ctx}: {a:?} vs {b:?}"),
    }
}

/// The full cross-engine check: scalar lowered vs scalar interpreter vs
/// the reference engine on every seed, then both batched engines at every
/// width against the scalar results.
fn assert_lowered_identical(sim: &Simulator<'_>, label: &str) {
    let seeds: Vec<u64> = SEEDS.collect();
    let interp: Vec<_> = seeds.iter().map(|&s| sim.run_interp(s)).collect();
    for (&seed, interp) in seeds.iter().zip(&interp) {
        let lowered = sim.run_lowered(seed);
        assert_same_result(&lowered, interp, &format!("{label} seed {seed} scalar"));
        let reference = sim.run_reference(seed);
        assert_same_result(
            &lowered,
            &reference,
            &format!("{label} seed {seed} vs reference"),
        );
    }
    let batcher = BatchSimulator::new(sim);
    for &w in &WIDTHS {
        for (ci, chunk) in seeds.chunks(w).enumerate() {
            let lowered = batcher.run_lowered(chunk);
            let interp_batch = batcher.run_interp(chunk);
            for (j, res) in lowered.iter().enumerate() {
                let i = ci * w + j;
                let ctx = format!("{label} seed {} width {w}", seeds[i]);
                assert_same_result(res, &interp[i], &ctx);
                assert_same_result(res, &interp_batch[j], &format!("{ctx} (interp batch)"));
            }
        }
    }
}

// --- net shapes (mirroring tests/differential.rs, plus the heap net) ---

#[test]
fn lowered_differential_mm1_with_traces() {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    let arrive = b
        .transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(500.0).with_trace(64));
    sim.reward_place(q);
    sim.reward(RewardSpec::Throughput(arrive)).unwrap();
    assert_lowered_identical(&sim, "mm1");
}

#[test]
fn lowered_differential_colored_dvs_with_warmup() {
    let dvs1 = Color(1);
    let dvs2 = Color(2);
    let dvs3 = Color(3);
    let mut b = NetBuilder::new("dvs");
    let buffer = b.place("Buffer").build();
    let stage = b.place("Stage").build();
    let idle = b.place("Idle").tokens(1).build();
    let slept = b.place("Slept").build();
    let done = b.place("Done").build();
    b.transition("gen", Timing::exponential(0.8))
        .output_colored(
            buffer,
            1,
            ColorExpr::Choice(vec![(dvs1, 0.5), (dvs2, 0.3), (dvs3, 0.2)]),
        )
        .build();
    b.transition("dispatch", Timing::immediate())
        .input(buffer, 1)
        .output_colored(stage, 1, ColorExpr::Transfer { arc_index: 0 })
        .build();
    b.transition("exec1", Timing::exponential(10.0))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs1))
        .output(done, 1)
        .build();
    b.transition("exec2", Timing::exponential(5.0))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs2))
        .output(done, 1)
        .build();
    b.transition("exec3", Timing::exponential(2.5))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs3))
        .output(done, 1)
        .build();
    b.transition("sleep", Timing::deterministic(0.7))
        .input(idle, 1)
        .output(slept, 1)
        .inhibitor(stage, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    b.transition("wake", Timing::exponential(1.0))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    b.transition("collect", Timing::deterministic(2.0))
        .input(done, 1)
        .guard(Expr::count(done).gt_c(0))
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0).with_warmup(20.0));
    sim.reward_place(buffer);
    sim.reward_predicate(Expr::count_color(stage, dvs1).gt_c(0))
        .unwrap();
    assert_lowered_identical(&sim, "colored-dvs");
}

/// A guard the lowering pass cannot reduce to a count threshold
/// (`#a + #b <= 3` is not a single-place compare), forcing the
/// program-fallback tail op while the rest of the net stays dense.
#[test]
fn lowered_differential_unreducible_guard() {
    let mut b = NetBuilder::new("guard-fallback");
    let a = b.place("a").build();
    let z = b.place("z").build();
    b.transition("gen_a", Timing::exponential(2.0))
        .output(a, 1)
        .build();
    b.transition("gen_z", Timing::exponential(1.5))
        .output(z, 1)
        .build();
    b.transition("drain", Timing::exponential(3.0))
        .input(a, 1)
        .guard(Expr::count(a).add(Expr::count(z)).le_c(3))
        .build();
    b.transition("drain_z", Timing::exponential(2.0))
        .input(z, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
    sim.reward_place(a);
    assert_lowered_identical(&sim, "guard-fallback");
}

fn memory_policy_net(policy: MemoryPolicy) -> Net {
    let mut b = NetBuilder::new("memory");
    let idle = b.place("idle").tokens(1).build();
    let buf = b.place("buf").build();
    let slept = b.place("slept").build();
    b.transition("arrive", Timing::exponential(1.4))
        .output(buf, 1)
        .build();
    b.transition("serve", Timing::exponential(6.0))
        .input(buf, 1)
        .build();
    b.transition("sleep", Timing::uniform(0.3, 1.1))
        .input(idle, 1)
        .output(slept, 1)
        .guard(Expr::count(buf).eq_c(0))
        .memory(policy)
        .build();
    b.transition("wake", Timing::erlang(3, 9.0))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    b.build().unwrap()
}

#[test]
fn lowered_differential_memory_policies() {
    for policy in [
        MemoryPolicy::RaceEnable,
        MemoryPolicy::RaceAge,
        MemoryPolicy::Resample,
    ] {
        let net = memory_policy_net(policy);
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
        sim.reward_place(net.place_by_name("slept").unwrap());
        assert_lowered_identical(&sim, &format!("memory-{policy:?}"));
    }
}

#[test]
fn lowered_differential_immediate_conflicts() {
    let mut b = NetBuilder::new("conflicts");
    let src = b.place("src").build();
    let a = b.place("a").build();
    let z = b.place("z").build();
    let gate = b.place("gate").tokens(1).build();
    b.transition("gen", Timing::exponential(3.0))
        .output(src, 1)
        .build();
    b.transition(
        "hi",
        Timing::Immediate {
            priority: 2,
            weight: 1.0,
        },
    )
    .input(src, 1)
    .output(a, 1)
    .inhibitor(a, 4)
    .build();
    b.transition(
        "lo1",
        Timing::Immediate {
            priority: 1,
            weight: 1.0,
        },
    )
    .input(src, 1)
    .output(z, 1)
    .build();
    b.transition(
        "lo2",
        Timing::Immediate {
            priority: 1,
            weight: 2.5,
        },
    )
    .input(src, 1)
    .output(z, 2)
    .build();
    b.transition("drain_a", Timing::deterministic(0.9))
        .input(a, 1)
        .guard(Expr::count(gate).gt_c(0))
        .build();
    b.transition("drain_z", Timing::exponential(4.0))
        .input(z, 1)
        .build();
    b.transition("flap", Timing::uniform(0.2, 0.6))
        .input(gate, 1)
        .output(gate, 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0));
    sim.reward_place(a);
    sim.reward_place(z);
    assert_lowered_identical(&sim, "immediate-conflicts");
}

/// A 40-stage tandem line: more than 32 transitions, so the lowered
/// engine falls back from the stripe scan to the lazy-deletion heap —
/// this keeps the heap instantiation under differential coverage.
#[test]
fn lowered_differential_wide_net_heap_scheduler() {
    const STAGES: usize = 40;
    let mut b = NetBuilder::new("wide-tandem");
    let places: Vec<_> = (0..STAGES)
        .map(|i| b.place(format!("p{i}")).build())
        .collect();
    b.transition("source", Timing::exponential(1.5))
        .output(places[0], 1)
        .build();
    for i in 0..STAGES - 1 {
        b.transition(format!("t{i}"), Timing::exponential(2.0 + (i % 3) as f64))
            .input(places[i], 1)
            .output(places[i + 1], 1)
            .build();
    }
    b.transition("sink", Timing::exponential(2.0))
        .input(places[STAGES - 1], 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(60.0).with_trace(32));
    sim.reward_place(net.place_by_name("p0").unwrap());
    sim.reward_place(net.place_by_name("p20").unwrap());
    assert_lowered_identical(&sim, "wide-tandem-heap");
}

/// Error outcomes must match exactly too: an overflowing lane trips the
/// same `TokenOverflow` (place, time, limit) on every engine.
#[test]
fn lowered_differential_token_overflow_errors() {
    let mut b = NetBuilder::new("boom");
    let q = b.place("q").build();
    b.transition("gen", Timing::exponential(5.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(1.0))
        .input(q, 1)
        .build();
    let net = b.build().unwrap();
    let mut cfg = SimConfig::for_horizon(10_000.0);
    cfg.max_tokens_per_place = 40;
    let sim = Simulator::new(&net, cfg);
    let mut overflowed = 0;
    for seed in SEEDS {
        let lowered = sim.run_lowered(seed);
        assert_same_result(
            &lowered,
            &sim.run_interp(seed),
            &format!("boom seed {seed}"),
        );
        if matches!(lowered, Err(SimError::TokenOverflow { .. })) {
            overflowed += 1;
        }
    }
    assert!(
        overflowed > 0,
        "overflow net never overflowed (vacuous test)"
    );
}

// --- randomized cross-engine agreement -------------------------------------

/// One random uncolored transition description.
#[derive(Debug, Clone)]
struct RandTransition {
    timing: u8,
    rate: f64,
    lo: f64,
    span: f64,
    k: u32,
    priority: u8,
    weight: f64,
    policy: u8,
    input: (usize, u32),
    output: Option<(usize, u32)>,
    inhibitor: Option<(usize, u32)>,
    guard: Option<(usize, i64)>,
}

fn arb_transition(places: usize) -> impl Strategy<Value = RandTransition> {
    (
        0u8..5,
        0.5f64..5.0,
        0.05f64..0.5,
        0.01f64..1.0,
        1u32..4,
        1u8..4,
        0.5f64..3.0,
        0u8..3,
        (0..places, 1u32..3),
        proptest::option::of((0..places, 1u32..3)),
        proptest::option::of((0..places, 1u32..4)),
        proptest::option::of((0..places, 0i64..4)),
    )
        .prop_map(
            |(
                timing,
                rate,
                lo,
                span,
                k,
                priority,
                weight,
                policy,
                input,
                output,
                inhibitor,
                guard,
            )| {
                RandTransition {
                    timing,
                    rate,
                    lo,
                    span,
                    k,
                    priority,
                    weight,
                    policy,
                    input,
                    output,
                    inhibitor,
                    guard,
                }
            },
        )
}

fn build_random_net(tokens: &[u32], transitions: &[RandTransition]) -> Net {
    let mut b = NetBuilder::new("random");
    let places: Vec<_> = tokens
        .iter()
        .enumerate()
        .map(|(i, &n)| b.place(format!("p{i}")).tokens(n as usize).build())
        .collect();
    for (i, t) in transitions.iter().enumerate() {
        let timing = match t.timing {
            0 => Timing::exponential(t.rate),
            1 => Timing::deterministic(t.lo),
            2 => Timing::uniform(t.lo, t.lo + t.span),
            3 => Timing::erlang(t.k, t.rate),
            _ => Timing::Immediate {
                priority: t.priority,
                weight: t.weight,
            },
        };
        let policy = match t.policy {
            0 => MemoryPolicy::RaceEnable,
            1 => MemoryPolicy::RaceAge,
            _ => MemoryPolicy::Resample,
        };
        let mut tb = b
            .transition(format!("t{i}"), timing)
            .input(places[t.input.0], t.input.1)
            .memory(policy);
        if let Some((p, m)) = t.output {
            tb = tb.output(places[p], m);
        }
        if let Some((p, th)) = t.inhibitor {
            tb = tb.inhibitor(places[p], th);
        }
        if let Some((p, c)) = t.guard {
            tb = tb.guard(Expr::count(places[p]).le_c(c));
        }
        tb.build();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random small nets: every engine — reference, interpreter, lowered,
    /// and both batched paths — must agree bit-for-bit on the outcome,
    /// whether that outcome is a clean run, an immediate livelock, or a
    /// token overflow.
    #[test]
    fn random_nets_agree_across_all_engines(
        tokens in proptest::collection::vec(0u32..4, 2..5),
        transitions in proptest::collection::vec(arb_transition(2), 2..6),
        seed in 0u64..10_000,
    ) {
        // Arc place indices were drawn against the minimum place count;
        // clamp them into range for the actual vector length.
        let np = tokens.len();
        let transitions: Vec<RandTransition> = transitions
            .into_iter()
            .map(|mut t| {
                t.input.0 %= np;
                if let Some(o) = &mut t.output { o.0 %= np; }
                if let Some(i) = &mut t.inhibitor { i.0 %= np; }
                if let Some(g) = &mut t.guard { g.0 %= np; }
                t
            })
            .collect();
        let net = build_random_net(&tokens, &transitions);
        let mut cfg = SimConfig::for_horizon(25.0);
        cfg.max_tokens_per_place = 200;
        let mut sim = Simulator::new(&net, cfg);
        sim.reward_place(net.place_by_name("p0").unwrap());
        let reference = sim.run_reference(seed);
        let interp = sim.run_interp(seed);
        let lowered = sim.run_lowered(seed);
        assert_same_result(&lowered, &interp, "random net scalar");
        assert_same_result(&lowered, &reference, "random net vs reference");
        let batcher = BatchSimulator::new(&sim);
        let seeds = [seed, seed + 1, seed + 2];
        let lowered_batch = batcher.run_lowered(&seeds);
        let interp_batch = batcher.run_interp(&seeds);
        for i in 0..seeds.len() {
            assert_same_result(&lowered_batch[i], &interp_batch[i], "random net batched");
        }
        assert_same_result(&lowered_batch[0], &lowered, "random net batch lane 0");
    }
}
