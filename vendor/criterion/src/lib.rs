//! Offline stand-in for `criterion`, implementing the API surface this
//! workspace's benches use: `Criterion` with `warm_up_time` /
//! `measurement_time` / `sample_size`, benchmark groups with optional
//! throughput annotations, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each sample times a batch of iterations sized so a
//! sample lasts ≳1 ms, reports the per-iteration mean of the fastest third
//! of samples (robust against scheduler noise), and prints one line per
//! benchmark. If `CRITERION_SHIM_JSON` names a file, a JSON line per
//! benchmark is appended there so scripts can collect results.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benches that use it.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    cfg: &'a Config,
    result_ns: f64,
}

impl Bencher<'_> {
    /// Time `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, measuring a rough
        // per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.cfg.warm_up {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Batch size targeting ~1 ms per sample (min 1 iteration).
        let batch = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let samples = self.cfg.sample_size.max(4);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        let measure_deadline = Instant::now() + self.cfg.measurement;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            times.push(t0.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > measure_deadline && times.len() >= 4 {
                break;
            }
        }
        // Mean of the fastest third: robust location estimate under noise.
        times.sort_by(|a, b| a.total_cmp(b));
        let keep = (times.len() / 3).max(1);
        let mean = times[..keep].iter().sum::<f64>() / keep as f64;
        self.result_ns = mean * 1e9;
    }
}

#[derive(Debug, Clone)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    cfg: Config,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain argument.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            cfg: Config::default(),
            filter,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            cfg_override: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let cfg = self.cfg.clone();
        self.run_one(name, None, &cfg, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, cfg: &Config, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            cfg,
            result_ns: f64::NAN,
        };
        f(&mut b);
        let ns = b.result_ns;
        let mut line = format!("{id:<40} time: {:>12} /iter", format_ns(ns));
        let mut rate = None;
        if let Some(t) = throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let per_sec = n as f64 / (ns * 1e-9);
            rate = Some((per_sec, unit));
            line.push_str(&format!("   thrpt: {per_sec:.3e} {unit}"));
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
            if let Ok(mut fh) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let rate_json = match rate {
                    Some((v, u)) => format!(",\"throughput\":{v},\"throughput_unit\":\"{u}\""),
                    None => String::new(),
                };
                let _ = writeln!(fh, "{{\"id\":\"{id}\",\"mean_ns\":{ns}{rate_json}}}");
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and options.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    cfg_override: Option<Config>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut cfg = self
            .cfg_override
            .clone()
            .unwrap_or_else(|| self.criterion.cfg.clone());
        cfg.sample_size = n;
        self.cfg_override = Some(cfg);
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let cfg = self
            .cfg_override
            .clone()
            .unwrap_or_else(|| self.criterion.cfg.clone());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, &cfg, f);
        self
    }

    /// Benchmark a closure with an input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declare a group-runner function from a config expression and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        // Must not panic, and must run the closure.
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("f", 2).id, "f/2");
    }
}
