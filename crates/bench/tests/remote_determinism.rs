//! Acceptance suite for the remote TCP executor: `RemoteBackend` must be
//! **byte-identical** to the in-process backend for every portable job and
//! every experiment driver at hosts ∈ {1, 2, 4} × threads ∈ {1, 2} over
//! loopback, peer failures must propagate with lowest-flat-index-wins
//! semantics (matching the shard suite), and a peer killed mid-run must be
//! survivable: its undelivered chunk re-dispatches to the remaining peers
//! and the gathered bytes still equal the in-process run exactly.
//!
//! Workers are real `repro --worker --listen` processes
//! (`CARGO_BIN_EXE_repro`) on ephemeral loopback ports, spawned through
//! `bench::remote::LocalCluster` — the full TCP protocol end to end:
//! manifest frame over the socket → registry decode → in-worker scheduling
//! → per-slot result frames → ordered gather → graceful shutdown frames at
//! teardown.

use bench::remote::LocalCluster;
use bench::shard::{EnvCrashJob, FailJob, Mm1ReplicationJob};
use des::Workload;
use proptest::prelude::*;
use sim_runtime::{Exec, ExecError, StoppingRule};
use wsn::experiments::ablations::seed_ablation;
use wsn::experiments::cpu_comparison::{run_cpu_comparison, CpuComparisonConfig};
use wsn::experiments::node_energy::{run_node_sweep, NodeSweepConfig};
use wsn::experiments::validation::run_validation;
use wsn::CpuModelParams;

fn repro_bin() -> &'static str {
    env!("CARGO_BIN_EXE_repro")
}

const HOST_GRID: [usize; 3] = [1, 2, 4];
const THREAD_GRID: [usize; 2] = [1, 2];

#[test]
fn cluster_spawns_announces_and_shuts_down() {
    let cluster = LocalCluster::spawn(repro_bin(), 2).expect("cluster spawns");
    let hosts = cluster.hosts();
    assert_eq!(hosts.len(), 2);
    for h in &hosts {
        assert!(h.starts_with("127.0.0.1:"), "{h}");
    }
    let exec = cluster.exec(2, 2);
    assert!(exec.is_remote());
    assert!(exec.label().contains("hosts=2"));
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Uncolored net: an M/M/1 replication grid produces the same bytes
    /// in-process and under every host × thread combination.
    #[test]
    fn mm1_uncolored_bit_identical_across_hosts(base_seed in 0u64..10_000) {
        let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
        let job = Mm1ReplicationJob {
            horizon: 200.0,
            warmup: 20.0,
            mu_grid: vec![2.0, 5.0, 10.0],
        };
        let reps = [3u64, 1, 4];
        let seed_of = move |p: usize, r: u64| base_seed ^ ((p as u64) << 32) ^ r;
        let baseline = Exec::in_process(1)
            .runner()
            .run_job(&job, &reps, &seed_of)
            .unwrap();
        for hosts in HOST_GRID {
            for threads in THREAD_GRID {
                let out = cluster
                    .exec(threads, hosts)
                    .runner()
                    .run_job(&job, &reps, &seed_of)
                    .unwrap();
                prop_assert!(
                    baseline == out,
                    "hosts={} threads={} diverged",
                    hosts,
                    threads
                );
            }
        }
        cluster.shutdown();
    }
}

/// Colored net (the Fig. 12/13 node SCPN with DVS job colors): the fixed
/// open-workload sweep driver is bit-identical across hosts.
#[test]
fn colored_node_sweep_driver_identical_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let grid = [1e-9, 0.00177, 0.1, 10.0];
    let run = |exec: Exec| {
        run_node_sweep(
            Workload::Open { rate: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 120.0,
                replications: 3,
                exec,
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(2));
    for hosts in HOST_GRID {
        for threads in THREAD_GRID {
            assert_eq!(
                baseline,
                run(cluster.exec(threads, hosts)),
                "hosts={hosts} threads={threads}"
            );
        }
    }
    cluster.shutdown();
}

/// The adaptive open sweep: budget decisions (replications per point) and
/// folded statistics are identical when rounds run across remote peers —
/// each round is a fresh set of connections against the same workers.
#[test]
fn adaptive_node_sweep_identical_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let grid = [1e-9, 0.01, 1.0];
    let run = |exec: Exec| {
        run_node_sweep(
            Workload::Open { rate: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 100.0,
                exec,
                open_rule: Some(StoppingRule::relative(0.08).with_budget(3, 12, 3)),
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(1));
    for hosts in HOST_GRID {
        assert_eq!(baseline, run(cluster.exec(2, hosts)), "hosts={hosts}");
    }
    cluster.shutdown();
}

/// The closed node sweep (deterministic single-replication points).
#[test]
fn closed_node_sweep_driver_identical_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let grid = [1e-9, 0.00177, 1.0];
    let run = |exec: Exec| {
        run_node_sweep(
            Workload::Closed { interval: 1.0 },
            &grid,
            &NodeSweepConfig {
                horizon: 120.0,
                exec,
                ..Default::default()
            },
        )
    };
    let baseline = run(Exec::in_process(2));
    for hosts in HOST_GRID {
        assert_eq!(baseline, run(cluster.exec(1, hosts)), "hosts={hosts}");
    }
    cluster.shutdown();
}

/// The three-way CPU comparison driver, fixed and adaptive (the adaptive
/// mode watches the wider of the DES/Petri energy CIs per point).
#[test]
fn cpu_comparison_driver_identical_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let grid = [0.001, 0.3, 1.0];
    let fixed = |exec: Exec| {
        run_cpu_comparison(
            0.3,
            &grid,
            &CpuComparisonConfig {
                horizon: 150.0,
                replications: 2,
                exec,
                ..Default::default()
            },
        )
    };
    let adaptive = |exec: Exec| {
        run_cpu_comparison(
            0.3,
            &grid,
            &CpuComparisonConfig {
                horizon: 150.0,
                exec,
                rule: Some(StoppingRule::relative(0.08).with_budget(2, 8, 2)),
                ..Default::default()
            },
        )
    };
    let fixed_base = fixed(Exec::in_process(2));
    let adaptive_base = adaptive(Exec::in_process(2));
    for hosts in HOST_GRID {
        for threads in THREAD_GRID {
            assert_eq!(
                fixed_base,
                fixed(cluster.exec(threads, hosts)),
                "fixed hosts={hosts} threads={threads}"
            );
        }
        assert_eq!(
            adaptive_base,
            adaptive(cluster.exec(1, hosts)),
            "adaptive hosts={hosts}"
        );
    }
    cluster.shutdown();
}

/// The Petri-vs-DES validation driver, fixed and adaptive.
#[test]
fn validation_driver_identical_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let grid = [1e-9, 0.01, 1.0];
    let fixed = |exec: Exec| {
        run_validation(
            Workload::Closed { interval: 1.0 },
            &grid,
            100.0,
            9,
            &exec,
            None,
        )
    };
    let rule = StoppingRule::relative(0.1).with_budget(3, 9, 3);
    let adaptive = |exec: Exec| {
        run_validation(
            Workload::Open { rate: 1.0 },
            &grid,
            100.0,
            9,
            &exec,
            Some(&rule),
        )
    };
    let fixed_base = fixed(Exec::in_process(2));
    let adaptive_base = adaptive(Exec::in_process(2));
    for hosts in HOST_GRID {
        assert_eq!(fixed_base, fixed(cluster.exec(2, hosts)), "hosts={hosts}");
        assert_eq!(
            adaptive_base,
            adaptive(cluster.exec(1, hosts)),
            "hosts={hosts}"
        );
    }
    cluster.shutdown();
}

/// The seed-ablation driver (prefix-folded replication grid).
#[test]
fn seed_ablation_driver_identical_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let params = CpuModelParams::paper_defaults(0.3, 0.3);
    let run = |exec: Exec| seed_ablation(&params, 150.0, &[3, 8], 0xCAFE, &exec);
    let baseline = run(Exec::in_process(2));
    for hosts in HOST_GRID {
        assert_eq!(baseline, run(cluster.exec(2, hosts)), "hosts={hosts}");
    }
    cluster.shutdown();
}

/// Every slot from `(1, 1)` on fails, on every peer that owns one: the
/// surfaced error must be exactly the boundary slot — the lowest global
/// flat index — matching the shard suite and `try_grid`.
#[test]
fn lowest_index_task_error_wins_across_hosts() {
    let cluster = LocalCluster::spawn(repro_bin(), 4).expect("cluster spawns");
    let job = FailJob {
        fail_point: 1,
        fail_rep: 1,
    };
    let reps = [3u64, 3, 3]; // boundary slot = flat index 4
    for hosts in HOST_GRID {
        for threads in THREAD_GRID {
            let err = cluster
                .exec(threads, hosts)
                .runner()
                .run_job(&job, &reps, &|_, _| 0)
                .unwrap_err();
            match err {
                ExecError::Task {
                    flat_index,
                    point,
                    replication,
                    ref message,
                } => {
                    assert_eq!(
                        (flat_index, point, replication),
                        (4, 1, 1),
                        "hosts={hosts} threads={threads}: {message}"
                    );
                }
                other => panic!("expected task error, got {other:?}"),
            }
        }
    }
    cluster.shutdown();
}

/// Kill one peer mid-run: worker 0 is armed (via environment variable) to
/// `exit(3)` at a slot inside its chunk; the survivors must absorb the
/// re-dispatched remainder and the gathered bytes must equal the
/// in-process baseline **exactly** — seeded pure slots make retry
/// invisible in the output.
#[test]
fn killed_peer_redispatch_produces_identical_bytes() {
    const ARM: &str = "BENCH_REMOTE_SELFTEST_CRASH";
    let cluster = LocalCluster::spawn_with_env(repro_bin(), 3, |i| {
        if i == 0 {
            vec![(ARM.to_string(), "1".to_string())]
        } else {
            Vec::new()
        }
    })
    .expect("cluster spawns");
    let reps = [2u64, 2, 2, 2, 2, 2]; // 12 slots; 3 chunks of 4
    let job = EnvCrashJob {
        // Boundary (0, 0): the armed worker dies on the first slot of
        // whichever chunk it claims — the kill is schedule-independent.
        crash_point: 0,
        crash_rep: 0,
        env_var: ARM.into(),
    };
    // The test process does not set ARM, so the in-process baseline (and
    // every unarmed worker) treats the slot as a normal success.
    let baseline = Exec::in_process(1)
        .runner()
        .run_job(&job, &reps, &|p, r| (p as u64) * 100 + r)
        .unwrap();
    let out = cluster
        .exec(1, 3)
        .runner()
        .run_job(&job, &reps, &|p, r| (p as u64) * 100 + r)
        .unwrap();
    assert_eq!(baseline, out, "re-dispatched gather diverged");
    cluster.shutdown();
}

/// Externally killing a peer *between* dispatches is also survivable: the
/// liveness probe routes around the corpse and results stay identical.
#[test]
fn externally_killed_idle_peer_is_routed_around() {
    let mut cluster = LocalCluster::spawn(repro_bin(), 3).expect("cluster spawns");
    let job = Mm1ReplicationJob {
        horizon: 100.0,
        warmup: 10.0,
        mu_grid: vec![2.0, 5.0],
    };
    let reps = [3u64, 3];
    let exec = cluster.exec(1, 3);
    let baseline = Exec::in_process(1)
        .runner()
        .run_job(&job, &reps, &|p, r| (p as u64) << 16 | r)
        .unwrap();
    // First dispatch: all three peers healthy.
    assert_eq!(
        baseline,
        exec.runner()
            .run_job(&job, &reps, &|p, r| (p as u64) << 16 | r)
            .unwrap()
    );
    // Kill one worker, then dispatch again against the same host list:
    // the dead peer's chunk must re-route to the survivors.
    cluster.kill(0);
    assert_eq!(
        baseline,
        exec.runner()
            .run_job(&job, &reps, &|p, r| (p as u64) << 16 | r)
            .unwrap(),
        "gather diverged after an idle peer was killed"
    );
    cluster.shutdown();
}

/// With every peer dead, the error is a worker failure (or, when nothing
/// connects at all, a protocol error) — never a hang.
#[test]
fn all_peers_dead_is_an_error_not_a_hang() {
    let mut cluster = LocalCluster::spawn(repro_bin(), 2).expect("cluster spawns");
    let exec = cluster.exec(1, 2);
    cluster.kill(0);
    cluster.kill(1);
    let job = Mm1ReplicationJob {
        horizon: 50.0,
        warmup: 0.0,
        mu_grid: vec![2.0],
    };
    let err = exec.runner().run_job(&job, &[2], &|_, _| 1).unwrap_err();
    assert!(
        matches!(err, ExecError::Worker { .. } | ExecError::Protocol(_)),
        "{err:?}"
    );
}
