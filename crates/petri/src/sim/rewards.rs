//! Reward measures: what a simulation run reports.
//!
//! The paper computes "the average number of tokens in a certain place
//! during the duration of the simulation time", which equals the
//! steady-state fraction of time the modeled component spends in that state
//! (Sec. III-B). [`RewardSpec`] generalizes this slightly:
//!
//! * [`RewardSpec::PlaceTokens`] — time-average token count of a place
//!   (the paper's primary measure).
//! * [`RewardSpec::Predicate`] — fraction of time a marking predicate holds
//!   (needed when a conceptual state is a *conjunction*, e.g. "CPU on AND
//!   buffer empty" = idle).
//! * [`RewardSpec::Throughput`] — firings per second of a transition.
//! * [`RewardSpec::FiringCount`] — raw number of firings (used to count CPU
//!   wake-ups for the transitional-energy series of Figs. 14–15).

use crate::expr::{Expr, ExprKind};
use crate::ids::{PlaceId, TransitionId};
use crate::net::Net;
use std::fmt;

/// Handle to a configured reward; indexes [`super::SimOutput::rewards`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewardId(pub(crate) usize);

impl RewardId {
    /// Dense index into the output reward vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A quantity to measure during simulation.
#[derive(Debug, Clone)]
pub enum RewardSpec {
    /// Time-average number of tokens in the place (over the post-warmup
    /// window).
    PlaceTokens(PlaceId),
    /// Fraction of (post-warmup) time during which the boolean marking
    /// expression holds.
    Predicate(Expr),
    /// Firings per second of the transition over the post-warmup window.
    Throughput(TransitionId),
    /// Number of firings of the transition in the post-warmup window.
    FiringCount(TransitionId),
}

/// Why a reward specification was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewardSpecError {
    /// The place id does not belong to the net.
    PlaceOutOfRange,
    /// The transition id does not belong to the net.
    TransitionOutOfRange,
    /// The predicate expression is not boolean-typed.
    NotBoolean,
    /// The predicate references a place outside the net.
    ExprPlaceOutOfRange,
}

impl fmt::Display for RewardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RewardSpecError::PlaceOutOfRange => "reward place id out of range",
            RewardSpecError::TransitionOutOfRange => "reward transition id out of range",
            RewardSpecError::NotBoolean => "reward predicate is not boolean-typed",
            RewardSpecError::ExprPlaceOutOfRange => "reward predicate references unknown place",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RewardSpecError {}

impl RewardSpec {
    /// Validate against a net.
    pub fn validate(&self, net: &Net) -> Result<(), RewardSpecError> {
        match self {
            RewardSpec::PlaceTokens(p) => {
                if p.index() >= net.num_places() {
                    return Err(RewardSpecError::PlaceOutOfRange);
                }
            }
            RewardSpec::Predicate(e) => {
                if e.kind() != Some(ExprKind::Bool) {
                    return Err(RewardSpecError::NotBoolean);
                }
                if let Some(max) = e.max_place_index() {
                    if max >= net.num_places() {
                        return Err(RewardSpecError::ExprPlaceOutOfRange);
                    }
                }
            }
            RewardSpec::Throughput(t) | RewardSpec::FiringCount(t) => {
                if t.index() >= net.num_transitions() {
                    return Err(RewardSpecError::TransitionOutOfRange);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::timing::Timing;

    fn tiny_net() -> Net {
        let mut b = NetBuilder::new("tiny");
        let p = b.place("p").tokens(1).build();
        b.transition("t", Timing::exponential(1.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn valid_specs_pass() {
        let net = tiny_net();
        let p = net.place_by_name("p").unwrap();
        let t = net.transition_by_name("t").unwrap();
        assert!(RewardSpec::PlaceTokens(p).validate(&net).is_ok());
        assert!(RewardSpec::Throughput(t).validate(&net).is_ok());
        assert!(RewardSpec::FiringCount(t).validate(&net).is_ok());
        assert!(RewardSpec::Predicate(Expr::count(p).gt_c(0))
            .validate(&net)
            .is_ok());
    }

    #[test]
    fn out_of_range_place_rejected() {
        let net = tiny_net();
        let bad = PlaceId::from_index(99);
        assert_eq!(
            RewardSpec::PlaceTokens(bad).validate(&net),
            Err(RewardSpecError::PlaceOutOfRange)
        );
    }

    #[test]
    fn out_of_range_transition_rejected() {
        let net = tiny_net();
        let bad = TransitionId::from_index(99);
        assert_eq!(
            RewardSpec::Throughput(bad).validate(&net),
            Err(RewardSpecError::TransitionOutOfRange)
        );
    }

    #[test]
    fn non_boolean_predicate_rejected() {
        let net = tiny_net();
        let p = net.place_by_name("p").unwrap();
        assert_eq!(
            RewardSpec::Predicate(Expr::count(p)).validate(&net),
            Err(RewardSpecError::NotBoolean)
        );
    }

    #[test]
    fn predicate_with_unknown_place_rejected() {
        let net = tiny_net();
        let bad = PlaceId::from_index(42);
        assert_eq!(
            RewardSpec::Predicate(Expr::count(bad).gt_c(0)).validate(&net),
            Err(RewardSpecError::ExprPlaceOutOfRange)
        );
    }
}
