//! Global-guard expression language.
//!
//! TimeNET-style *global guards* are boolean expressions over the current
//! marking, e.g. `(#Buffer == 0) && (#Idle > 0)` from Table XI of the paper.
//! Using guards instead of extra arcs "simplifies the construction of the
//! Petri net significantly" (Sec. VI) — the engine evaluates the guard
//! whenever it re-checks a transition's enabling.
//!
//! The AST distinguishes integer-valued and boolean-valued expressions via
//! [`Expr::kind`]; [`crate::builder::NetBuilder::build`] type-checks every
//! guard so malformed guards are rejected at net-construction time, not
//! mid-simulation.

use crate::ids::PlaceId;
use crate::marking::Marking;
use crate::token::Color;
use std::fmt;

/// Comparison operators available in guard expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    #[inline]
    fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The static type of an expression: integer-valued or boolean-valued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprKind {
    /// Evaluates to an `i64`.
    Int,
    /// Evaluates to a `bool`.
    Bool,
}

/// A guard/reward expression over a marking.
///
/// Build expressions with the constructor helpers ([`Expr::count`],
/// [`Expr::constant`], comparison and logic combinators) rather than the enum
/// variants directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// `#place` — total tokens in a place, or `#place[color]` when a color is
    /// given.
    Count(PlaceId, Option<Color>),
    /// Integer addition.
    Add(Box<Expr>, Box<Expr>),
    /// Integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer comparison producing a boolean.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Boolean conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Boolean literal `true`.
    True,
    /// Boolean literal `false`.
    False,
}

impl Expr {
    // ---- constructors ----

    /// `#p`: total token count of place `p`.
    pub fn count(p: PlaceId) -> Expr {
        Expr::Count(p, None)
    }

    /// `#p[c]`: count of tokens of color `c` in place `p`.
    pub fn count_color(p: PlaceId, c: Color) -> Expr {
        Expr::Count(p, Some(c))
    }

    /// Integer literal.
    pub fn constant(v: i64) -> Expr {
        Expr::Const(v)
    }

    // ---- integer combinators ----

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    // ---- comparisons (int -> bool) ----

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(rhs))
    }

    // ---- convenience comparisons against integer literals ----

    /// `self == v`.
    pub fn eq_c(self, v: i64) -> Expr {
        self.eq(Expr::constant(v))
    }

    /// `self > v`.
    pub fn gt_c(self, v: i64) -> Expr {
        self.gt(Expr::constant(v))
    }

    /// `self >= v`.
    pub fn ge_c(self, v: i64) -> Expr {
        self.ge(Expr::constant(v))
    }

    /// `self < v`.
    pub fn lt_c(self, v: i64) -> Expr {
        self.lt(Expr::constant(v))
    }

    /// `self <= v`.
    pub fn le_c(self, v: i64) -> Expr {
        self.le(Expr::constant(v))
    }

    // ---- boolean combinators ----

    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    // ---- analysis ----

    /// The static type of this expression, or `None` if it is ill-typed
    /// (e.g. `And` over integers).
    pub fn kind(&self) -> Option<ExprKind> {
        match self {
            Expr::Const(_) | Expr::Count(..) => Some(ExprKind::Int),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                if a.kind() == Some(ExprKind::Int) && b.kind() == Some(ExprKind::Int) {
                    Some(ExprKind::Int)
                } else {
                    None
                }
            }
            Expr::Cmp(a, _, b) => {
                if a.kind() == Some(ExprKind::Int) && b.kind() == Some(ExprKind::Int) {
                    Some(ExprKind::Bool)
                } else {
                    None
                }
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                if a.kind() == Some(ExprKind::Bool) && b.kind() == Some(ExprKind::Bool) {
                    Some(ExprKind::Bool)
                } else {
                    None
                }
            }
            Expr::Not(a) => {
                if a.kind() == Some(ExprKind::Bool) {
                    Some(ExprKind::Bool)
                } else {
                    None
                }
            }
            Expr::True | Expr::False => Some(ExprKind::Bool),
        }
    }

    /// Collect every place referenced by this expression into `out`
    /// (used to build the guard-dependency index for incremental enabling
    /// checks).
    pub fn collect_places(&self, out: &mut Vec<PlaceId>) {
        match self {
            Expr::Const(_) | Expr::True | Expr::False => {}
            Expr::Count(p, _) => out.push(*p),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_places(out);
                b.collect_places(out);
            }
            Expr::Cmp(a, _, b) => {
                a.collect_places(out);
                b.collect_places(out);
            }
            Expr::Not(a) => a.collect_places(out),
        }
    }

    /// Largest place index referenced, if any (for builder validation).
    pub fn max_place_index(&self) -> Option<usize> {
        let mut places = Vec::new();
        self.collect_places(&mut places);
        places.iter().map(|p| p.index()).max()
    }

    // ---- evaluation ----

    /// Evaluate as an integer. Panics on boolean nodes; the builder's
    /// type-check makes that unreachable for guards stored in a net.
    pub fn eval_int(&self, m: &Marking) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Count(p, None) => m.count(*p) as i64,
            Expr::Count(p, Some(c)) => m.count_color(*p, *c) as i64,
            Expr::Add(a, b) => a.eval_int(m) + b.eval_int(m),
            Expr::Sub(a, b) => a.eval_int(m) - b.eval_int(m),
            _ => panic!("eval_int on boolean expression: {self:?}"),
        }
    }

    /// Evaluate as a boolean. Panics on integer nodes; the builder's
    /// type-check makes that unreachable for guards stored in a net.
    pub fn eval_bool(&self, m: &Marking) -> bool {
        match self {
            Expr::Cmp(a, op, b) => op.apply(a.eval_int(m), b.eval_int(m)),
            Expr::And(a, b) => a.eval_bool(m) && b.eval_bool(m),
            Expr::Or(a, b) => a.eval_bool(m) || b.eval_bool(m),
            Expr::Not(a) => !a.eval_bool(m),
            Expr::True => true,
            Expr::False => false,
            _ => panic!("eval_bool on integer expression: {self:?}"),
        }
    }
}

/// One step of a compiled (postfix) expression program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ExprOp {
    /// Push an integer literal.
    ConstI(i64),
    /// Push the total token count of a place (a dense-vector load).
    Count(u32),
    /// Push the count of tokens of one color in a place.
    CountColor(u32, Color),
    /// Pop two ints, push their sum.
    Add,
    /// Pop two ints, push their difference.
    Sub,
    /// Pop two ints, push the comparison result (0/1).
    Cmp(CmpOp),
    /// Pop two bools, push the conjunction.
    And,
    /// Pop two bools, push the disjunction.
    Or,
    /// Pop one bool, push the negation.
    Not,
    /// Push a boolean literal (0/1).
    ConstB(bool),
}

/// A guard/predicate [`Expr`] flattened to a postfix program, evaluated
/// against the marking's dense count vector with a caller-provided scratch
/// stack — no recursion, no `Box` pointer chasing in the simulator's hot
/// loop. Booleans are represented as 0/1 on the integer stack; the
/// builder's type-check guarantees programs are well-formed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledExpr {
    ops: Vec<ExprOp>,
    /// Exact stack high-water mark, so callers can reserve once.
    stack_needed: usize,
}

impl CompiledExpr {
    /// Flatten `e` (postorder walk).
    pub(crate) fn compile(e: &Expr) -> CompiledExpr {
        fn emit(e: &Expr, ops: &mut Vec<ExprOp>) {
            match e {
                Expr::Const(v) => ops.push(ExprOp::ConstI(*v)),
                Expr::Count(p, None) => ops.push(ExprOp::Count(p.index() as u32)),
                Expr::Count(p, Some(c)) => ops.push(ExprOp::CountColor(p.index() as u32, *c)),
                Expr::Add(a, b) => {
                    emit(a, ops);
                    emit(b, ops);
                    ops.push(ExprOp::Add);
                }
                Expr::Sub(a, b) => {
                    emit(a, ops);
                    emit(b, ops);
                    ops.push(ExprOp::Sub);
                }
                Expr::Cmp(a, op, b) => {
                    emit(a, ops);
                    emit(b, ops);
                    ops.push(ExprOp::Cmp(*op));
                }
                Expr::And(a, b) => {
                    emit(a, ops);
                    emit(b, ops);
                    ops.push(ExprOp::And);
                }
                Expr::Or(a, b) => {
                    emit(a, ops);
                    emit(b, ops);
                    ops.push(ExprOp::Or);
                }
                Expr::Not(a) => {
                    emit(a, ops);
                    ops.push(ExprOp::Not);
                }
                Expr::True => ops.push(ExprOp::ConstB(true)),
                Expr::False => ops.push(ExprOp::ConstB(false)),
            }
        }
        let mut ops = Vec::new();
        emit(e, &mut ops);
        // Stack high-water mark: pushes add one, binary ops net -1.
        let mut depth = 0usize;
        let mut max_depth = 0usize;
        for op in &ops {
            match op {
                ExprOp::ConstI(_)
                | ExprOp::Count(_)
                | ExprOp::CountColor(..)
                | ExprOp::ConstB(_) => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                ExprOp::Add | ExprOp::Sub | ExprOp::Cmp(_) | ExprOp::And | ExprOp::Or => depth -= 1,
                ExprOp::Not => {}
            }
        }
        CompiledExpr {
            ops,
            stack_needed: max_depth,
        }
    }

    /// Scratch capacity the evaluation stack needs.
    #[inline]
    pub(crate) fn stack_needed(&self) -> usize {
        self.stack_needed
    }

    /// If the whole program is a bare `count(place) cmp constant`
    /// comparison, return its parts — the lowering pass replaces such
    /// guards/predicates with direct count-threshold ops.
    pub(crate) fn as_count_cmp(&self) -> Option<(u32, CmpOp, i64)> {
        match self.ops.as_slice() {
            [ExprOp::Count(p), ExprOp::ConstI(v), ExprOp::Cmp(op)] => Some((*p, *op, *v)),
            _ => None,
        }
    }

    /// Evaluate as a boolean. `stack` is caller-owned scratch (cleared
    /// here); `m` supplies counts.
    #[inline]
    pub(crate) fn eval_bool(&self, m: &Marking, stack: &mut Vec<i64>) -> bool {
        stack.clear();
        let counts = m.counts();
        for op in &self.ops {
            match *op {
                ExprOp::ConstI(v) => stack.push(v),
                ExprOp::Count(p) => stack.push(counts[p as usize] as i64),
                ExprOp::CountColor(p, c) => {
                    stack.push(m.count_color(crate::ids::PlaceId(p), c) as i64)
                }
                ExprOp::ConstB(b) => stack.push(b as i64),
                ExprOp::Add => {
                    let b = stack.pop().expect("well-formed program");
                    let a = stack.last_mut().expect("well-formed program");
                    *a += b;
                }
                ExprOp::Sub => {
                    let b = stack.pop().expect("well-formed program");
                    let a = stack.last_mut().expect("well-formed program");
                    *a -= b;
                }
                ExprOp::Cmp(op) => {
                    let b = stack.pop().expect("well-formed program");
                    let a = stack.last_mut().expect("well-formed program");
                    *a = op.apply(*a, b) as i64;
                }
                ExprOp::And => {
                    let b = stack.pop().expect("well-formed program");
                    let a = stack.last_mut().expect("well-formed program");
                    *a = (*a != 0 && b != 0) as i64;
                }
                ExprOp::Or => {
                    let b = stack.pop().expect("well-formed program");
                    let a = stack.last_mut().expect("well-formed program");
                    *a = (*a != 0 || b != 0) as i64;
                }
                ExprOp::Not => {
                    let a = stack.last_mut().expect("well-formed program");
                    *a = (*a == 0) as i64;
                }
            }
        }
        debug_assert_eq!(stack.len(), 1);
        stack.pop().expect("well-formed program") != 0
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Count(p, None) => write!(f, "#{p}"),
            Expr::Count(p, Some(c)) => write!(f, "#{p}[{c}]"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Cmp(a, op, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Not(a) => write!(f, "!{a}"),
            Expr::True => write!(f, "true"),
            Expr::False => write!(f, "false"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    fn marking(counts: &[usize]) -> Marking {
        let mut m = Marking::empty(counts.len());
        for (i, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                m.deposit(p(i), Color::NONE);
            }
        }
        m
    }

    #[test]
    fn count_and_constant() {
        let m = marking(&[3, 0]);
        assert_eq!(Expr::count(p(0)).eval_int(&m), 3);
        assert_eq!(Expr::constant(7).eval_int(&m), 7);
    }

    #[test]
    fn color_count() {
        let mut m = Marking::empty(1);
        m.deposit(p(0), Color(2));
        m.deposit(p(0), Color(2));
        m.deposit(p(0), Color(5));
        assert_eq!(Expr::count_color(p(0), Color(2)).eval_int(&m), 2);
        assert_eq!(Expr::count_color(p(0), Color(5)).eval_int(&m), 1);
        assert_eq!(Expr::count(p(0)).eval_int(&m), 3);
    }

    #[test]
    fn arithmetic() {
        let m = marking(&[3, 2]);
        let e = Expr::count(p(0))
            .add(Expr::count(p(1)))
            .sub(Expr::constant(1));
        assert_eq!(e.eval_int(&m), 4);
    }

    #[test]
    fn comparisons() {
        let m = marking(&[3]);
        assert!(Expr::count(p(0)).gt_c(2).eval_bool(&m));
        assert!(Expr::count(p(0)).ge_c(3).eval_bool(&m));
        assert!(Expr::count(p(0)).eq_c(3).eval_bool(&m));
        assert!(Expr::count(p(0)).le_c(3).eval_bool(&m));
        assert!(Expr::count(p(0)).lt_c(4).eval_bool(&m));
        assert!(Expr::count(p(0)).ne(Expr::constant(2)).eval_bool(&m));
        assert!(!Expr::count(p(0)).gt_c(3).eval_bool(&m));
    }

    #[test]
    fn logic() {
        let m = marking(&[1, 0]);
        let a = Expr::count(p(0)).gt_c(0);
        let b = Expr::count(p(1)).eq_c(0);
        assert!(a.clone().and(b.clone()).eval_bool(&m));
        assert!(a.clone().or(Expr::False).eval_bool(&m));
        assert!(!a.clone().and(Expr::False).eval_bool(&m));
        assert!(!a.and(b).not().eval_bool(&m));
        assert!(Expr::True.eval_bool(&m));
        assert!(!Expr::False.eval_bool(&m));
    }

    #[test]
    fn table_xi_style_guard() {
        // (#Buffer == 0) && (#Idle > 0) from the paper's Table XI.
        let buffer = p(0);
        let idle = p(1);
        let guard = Expr::count(buffer).eq_c(0).and(Expr::count(idle).gt_c(0));
        assert!(guard.eval_bool(&marking(&[0, 1])));
        assert!(!guard.eval_bool(&marking(&[1, 1])));
        assert!(!guard.eval_bool(&marking(&[0, 0])));
    }

    #[test]
    fn kind_typechecks() {
        assert_eq!(Expr::constant(1).kind(), Some(ExprKind::Int));
        assert_eq!(Expr::count(p(0)).kind(), Some(ExprKind::Int));
        assert_eq!(Expr::count(p(0)).gt_c(0).kind(), Some(ExprKind::Bool));
        assert_eq!(Expr::True.kind(), Some(ExprKind::Bool));
        // Ill-typed: And over ints.
        let bad = Expr::And(Box::new(Expr::Const(1)), Box::new(Expr::Const(2)));
        assert_eq!(bad.kind(), None);
        // Ill-typed: Add over bools.
        let bad2 = Expr::Add(Box::new(Expr::True), Box::new(Expr::False));
        assert_eq!(bad2.kind(), None);
    }

    #[test]
    fn collect_places_finds_all() {
        let e = Expr::count(p(0))
            .gt_c(0)
            .and(Expr::count_color(p(2), Color(1)).eq_c(0));
        let mut places = Vec::new();
        e.collect_places(&mut places);
        places.sort();
        assert_eq!(places, vec![p(0), p(2)]);
        assert_eq!(e.max_place_index(), Some(2));
    }

    #[test]
    fn compiled_matches_tree_walk() {
        let exprs = [
            Expr::count(p(0)).eq_c(0).and(Expr::count(p(1)).gt_c(0)),
            Expr::count(p(0))
                .add(Expr::count(p(1)))
                .sub(Expr::constant(1))
                .ge_c(2),
            Expr::count(p(2))
                .lt_c(3)
                .or(Expr::count(p(0)).ne(Expr::constant(1))),
            Expr::count_color(p(2), Color(1)).eq_c(0).not(),
            Expr::True,
            Expr::False.or(Expr::count(p(1)).le_c(5)),
        ];
        let markings = [
            marking(&[0, 1, 0]),
            marking(&[1, 0, 3]),
            marking(&[2, 5, 1]),
            {
                let mut m = Marking::empty(3);
                m.deposit(p(2), Color(1));
                m.deposit(p(2), Color(4));
                m
            },
        ];
        let mut stack = Vec::new();
        for e in &exprs {
            let prog = CompiledExpr::compile(e);
            assert!(prog.stack_needed() >= 1);
            for m in &markings {
                assert_eq!(
                    prog.eval_bool(m, &mut stack),
                    e.eval_bool(m),
                    "expr {e} diverged on {:?}",
                    m.count_vector()
                );
            }
        }
    }

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::count(p(0)).eq_c(0).and(Expr::count(p(1)).gt_c(0));
        assert_eq!(e.to_string(), "((#P0 == 0) && (#P1 > 0))");
    }
}
