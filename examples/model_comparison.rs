//! The paper's methodological claim (Secs. III–IV): Petri nets predict the
//! CPU's behaviour better than Markov models, dramatically so when the
//! deterministic Power-Up Delay grows.
//!
//! Reproduces the content of Figs. 7–9 / Tables IV–VI at the three
//! published Power-Up Delays.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use wsn_petri::prelude::*;
use wsn_petri::wsn::report::render_delta_table;
use wsn_petri::wsn::sweep::fig4_9_pdt_grid;

fn main() {
    // One flattened (threshold × replication) grid per Power-Up Delay on
    // the shared runtime (SWEEP_THREADS overrides the per-core default;
    // the numbers are bit-identical either way).
    let cfg = CpuComparisonConfig {
        exec: wsn_petri::sim_runtime::Exec::in_process(
            wsn_petri::sim_runtime::env_threads("SWEEP_THREADS")
                .unwrap_or_else(wsn_petri::sim_runtime::default_threads),
        ),
        ..Default::default()
    };
    let grid = fig4_9_pdt_grid();

    for (pud, table) in [(0.001, "IV"), (0.3, "V"), (10.0, "VI")] {
        let c = run_cpu_comparison(pud, &grid, &cfg);
        println!("--- Power_Up_Delay = {pud} s ---");
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            "PDT", "Sim (J)", "Markov (J)", "Petri (J)"
        );
        for (pdt, sim, markov, petri) in c.energy_rows() {
            println!("{pdt:>8.3} {sim:>12.2} {markov:>12.2} {petri:>12.2}");
        }
        println!();
        print!(
            "{}",
            render_delta_table(
                &format!("Table {table} analogue (Joules)"),
                &c.delta_table()
            )
        );
        let t = c.delta_table();
        if t.sim_petri.avg < t.sim_markov.avg {
            println!(
                "=> Petri net tracks the simulator {:.1}x more closely than the Markov model\n",
                t.sim_markov.avg / t.sim_petri.avg.max(1e-9)
            );
        } else {
            println!("=> both models track the simulator equally well here\n");
        }
    }
}
