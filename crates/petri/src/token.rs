//! Colored tokens and token bags.
//!
//! In a Stochastic *Colored* Petri Net (SCPN) every token carries a value —
//! its *color*. The paper (Sec. VI) uses colors to select among the DVS
//! service levels `DVS_1`, `DVS_2`, `DVS_3`: "Tokens of different values
//! result in different execution speeds". Uncolored nets simply use
//! [`Color::NONE`] everywhere.
//!
//! A [`TokenBag`] is the contents of one place: a FIFO multiset of colors.
//! FIFO order matters only when an input arc's color filter matches several
//! tokens; consuming the oldest matching token gives deterministic,
//! fair behaviour.

use std::collections::VecDeque;

/// A token color: a small integer attribute attached to each token.
///
/// `Color(0)` ([`Color::NONE`]) is the conventional color of uncolored nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color(pub u32);

impl Color {
    /// The default color carried by tokens of uncolored nets.
    pub const NONE: Color = Color(0);
}

impl From<u32> for Color {
    #[inline]
    fn from(v: u32) -> Self {
        Color(v)
    }
}

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A predicate over token colors, used as the *local guard* of an input arc.
///
/// TimeNET's local guards (e.g. `dvs1 == 1.0` in Table XI of the paper)
/// restrict which tokens may enable a transition through a given arc.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ColorFilter {
    /// Any token matches (the default for uncolored nets).
    #[default]
    Any,
    /// Only tokens of exactly this color match.
    Eq(Color),
    /// Tokens of any listed color match.
    In(Vec<Color>),
    /// Tokens of any color except this one match.
    Ne(Color),
}

impl ColorFilter {
    /// Does `c` satisfy this filter?
    #[inline]
    pub fn matches(&self, c: Color) -> bool {
        match self {
            ColorFilter::Any => true,
            ColorFilter::Eq(x) => c == *x,
            ColorFilter::In(xs) => xs.contains(&c),
            ColorFilter::Ne(x) => c != *x,
        }
    }
}

/// FIFO multiset of token colors held by one place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenBag {
    tokens: VecDeque<Color>,
}

impl TokenBag {
    /// Empty bag.
    pub fn new() -> Self {
        TokenBag {
            tokens: VecDeque::new(),
        }
    }

    /// Bag holding `n` tokens of [`Color::NONE`].
    pub fn with_plain(n: usize) -> Self {
        TokenBag {
            tokens: (0..n).map(|_| Color::NONE).collect(),
        }
    }

    /// Bag holding the given colors in FIFO order.
    pub fn with_colors(colors: &[Color]) -> Self {
        TokenBag {
            tokens: colors.iter().copied().collect(),
        }
    }

    /// Total token count.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Is the bag empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of tokens of exactly color `c`.
    #[inline]
    pub fn count_color(&self, c: Color) -> usize {
        self.tokens.iter().filter(|&&t| t == c).count()
    }

    /// Number of tokens matching `filter`.
    #[inline]
    pub fn count_matching(&self, filter: &ColorFilter) -> usize {
        match filter {
            // Fast path: no scan needed for `Any`.
            ColorFilter::Any => self.tokens.len(),
            _ => self.tokens.iter().filter(|&&t| filter.matches(t)).count(),
        }
    }

    /// Deposit a token of color `c` at the back of the FIFO.
    #[inline]
    pub fn push(&mut self, c: Color) {
        self.tokens.push_back(c);
    }

    /// Remove and return the oldest token matching `filter`, if any.
    pub fn take_matching(&mut self, filter: &ColorFilter) -> Option<Color> {
        match filter {
            ColorFilter::Any => self.tokens.pop_front(),
            _ => {
                let idx = self.tokens.iter().position(|&t| filter.matches(t))?;
                self.tokens.remove(idx)
            }
        }
    }

    /// Iterate over the colors currently in the bag (FIFO order).
    pub fn iter(&self) -> impl Iterator<Item = Color> + '_ {
        self.tokens.iter().copied()
    }

    /// Remove all tokens.
    pub fn clear(&mut self) {
        self.tokens.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_bag_counts() {
        let bag = TokenBag::with_plain(3);
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.count_color(Color::NONE), 3);
        assert_eq!(bag.count_color(Color(1)), 0);
        assert!(!bag.is_empty());
    }

    #[test]
    fn colored_bag_counts() {
        let bag = TokenBag::with_colors(&[Color(1), Color(2), Color(1)]);
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.count_color(Color(1)), 2);
        assert_eq!(bag.count_color(Color(2)), 1);
    }

    #[test]
    fn filter_any_matches_all() {
        assert!(ColorFilter::Any.matches(Color(0)));
        assert!(ColorFilter::Any.matches(Color(99)));
    }

    #[test]
    fn filter_eq() {
        let f = ColorFilter::Eq(Color(2));
        assert!(f.matches(Color(2)));
        assert!(!f.matches(Color(3)));
    }

    #[test]
    fn filter_in() {
        let f = ColorFilter::In(vec![Color(1), Color(3)]);
        assert!(f.matches(Color(1)));
        assert!(f.matches(Color(3)));
        assert!(!f.matches(Color(2)));
    }

    #[test]
    fn filter_ne() {
        let f = ColorFilter::Ne(Color(1));
        assert!(!f.matches(Color(1)));
        assert!(f.matches(Color(0)));
    }

    #[test]
    fn take_matching_is_fifo() {
        let mut bag = TokenBag::with_colors(&[Color(1), Color(2), Color(1)]);
        // Oldest matching token of color 1 is at the front.
        assert_eq!(
            bag.take_matching(&ColorFilter::Eq(Color(1))),
            Some(Color(1))
        );
        assert_eq!(bag.len(), 2);
        // Remaining front token is color 2.
        assert_eq!(bag.take_matching(&ColorFilter::Any), Some(Color(2)));
        assert_eq!(bag.take_matching(&ColorFilter::Any), Some(Color(1)));
        assert_eq!(bag.take_matching(&ColorFilter::Any), None);
    }

    #[test]
    fn take_matching_skips_nonmatching() {
        let mut bag = TokenBag::with_colors(&[Color(5), Color(7)]);
        assert_eq!(
            bag.take_matching(&ColorFilter::Eq(Color(7))),
            Some(Color(7))
        );
        // Color 5 left untouched at the front.
        assert_eq!(bag.take_matching(&ColorFilter::Any), Some(Color(5)));
    }

    #[test]
    fn take_matching_none_when_no_match() {
        let mut bag = TokenBag::with_colors(&[Color(5)]);
        assert_eq!(bag.take_matching(&ColorFilter::Eq(Color(7))), None);
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn count_matching_filters() {
        let bag = TokenBag::with_colors(&[Color(1), Color(2), Color(1), Color(3)]);
        assert_eq!(bag.count_matching(&ColorFilter::Any), 4);
        assert_eq!(bag.count_matching(&ColorFilter::Eq(Color(1))), 2);
        assert_eq!(
            bag.count_matching(&ColorFilter::In(vec![Color(2), Color(3)])),
            2
        );
        assert_eq!(bag.count_matching(&ColorFilter::Ne(Color(1))), 2);
    }

    #[test]
    fn clear_empties() {
        let mut bag = TokenBag::with_plain(5);
        bag.clear();
        assert!(bag.is_empty());
    }
}
