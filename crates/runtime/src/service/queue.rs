//! The daemon's job table: a bounded FIFO queue, per-job state machine,
//! and the single-flight index.
//!
//! All methods here mutate plain state and are called under the service's
//! one mutex (see [`crate::service::Service`]); nothing in this module
//! blocks. Keeping the transitions lock-free and synchronous makes the
//! state machine unit-testable without threads: submit, claim, complete
//! and cancel are each a single deterministic step.

use super::cache::CacheKey;
use super::protocol::{Disposition, JobId, JobProgress, JobState};
use crate::exec::{ExecError, TaskManifest};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live progress counters for one running job, shared between the
/// dispatcher executing it (writer) and fetch keep-alives / the HTTP
/// gateway (readers). Purely observational: readers only render these
/// values — nothing in scheduling or gathering branches on them, which is
/// what keeps progress cosmetic and results byte-identical whether anyone
/// watches or not.
#[derive(Debug, Default)]
pub struct ProgressCell {
    done: AtomicU64,
    total: AtomicU64,
    point: AtomicU64,
    replication: AtomicU64,
}

impl ProgressCell {
    /// Publish the job's total slot count (at claim time, before the
    /// first completion can tick).
    pub fn set_total(&self, total: u64) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// Record one completed slot. `done` is folded in with `fetch_max`,
    /// so out-of-order callbacks from concurrent workers can never move
    /// the published count backwards.
    pub fn record(&self, done: u64, point: u64, replication: u64) {
        self.done.fetch_max(done, Ordering::Relaxed);
        self.point.store(point, Ordering::Relaxed);
        self.replication.store(replication, Ordering::Relaxed);
    }

    /// Snapshot for rendering.
    pub fn snapshot(&self) -> JobProgress {
        JobProgress {
            done: self.done.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            point: self.point.load(Ordering::Relaxed),
            replication: self.replication.load(Ordering::Relaxed),
        }
    }
}

/// One job's record, from submission to (retained) terminal state.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's content-addressed cache key.
    pub key: CacheKey,
    /// The manifest to execute (cleared once terminal to bound memory).
    pub manifest: Option<TaskManifest>,
    /// Current lifecycle state.
    pub state: JobState,
    /// The result blob, once `Done` — pinned only while the record is
    /// within the table's recent-results window; older fetches resolve
    /// through the cache tiers by `key`.
    pub result: Option<Arc<Vec<u8>>>,
    /// The failure, once `Failed` (or a cancellation notice).
    pub error: Option<ExecError>,
    /// How many *additional* submissions coalesced onto this job while it
    /// was live. A shared job refuses cancellation — one caller must not
    /// silently fail everyone else's fetch.
    pub coalesced: u64,
    /// Live progress counters (a cache hit's stay zeroed: `total == 0`
    /// marks "never executed").
    pub progress: Arc<ProgressCell>,
    /// When the submission was admitted — the queue-wait measurement
    /// base.
    pub admitted: Instant,
}

/// One claimed unit of work, handed from the job table to a dispatcher.
#[derive(Debug)]
pub struct ClaimedJob {
    /// The job being executed.
    pub job: JobId,
    /// Its manifest (a clone; the record keeps its copy until terminal).
    pub manifest: TaskManifest,
    /// Its content-addressed cache key (so completion never re-hashes).
    pub key: CacheKey,
    /// The shared progress counters the execution writes into.
    pub progress: Arc<ProgressCell>,
    /// How long the job sat queued before this claim.
    pub queue_wait: Duration,
}

/// What a cancellation request resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The queued job was cancelled.
    Cancelled,
    /// Refused: other submissions coalesced onto this job, and one caller
    /// must not discard work the others are still waiting on.
    Shared {
        /// Coalesced submissions sharing the job.
        waiters: u64,
    },
    /// Refused: the job is not queued (running work cannot be revoked;
    /// terminal states are final).
    NotQueued(JobState),
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitRejected {
    /// The bounded queue is at capacity.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitRejected::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} job(s) queued)")
            }
        }
    }
}

/// The job table. Owned by the service behind its mutex.
#[derive(Debug)]
pub struct JobTable {
    next_id: u64,
    jobs: HashMap<u64, JobRecord>,
    /// FIFO of queued job ids (cancelled entries are skipped on claim).
    queue: VecDeque<u64>,
    /// Queue capacity (counts `Queued` jobs only, not running ones).
    capacity: usize,
    /// Single-flight index: cache key → the live (queued or running) job
    /// computing it. Identical submissions coalesce onto this job.
    inflight_by_key: HashMap<CacheKey, u64>,
    /// Terminal jobs in completion order, for bounded retention.
    terminal_order: VecDeque<u64>,
    /// Terminal records retained for late status/fetch callers.
    retain_terminal: usize,
    /// How many of the *most recent* terminal records keep their result
    /// blob pinned. Older `Done` records drop the blob (bounding daemon
    /// memory by count of recent results, not every result ever served);
    /// late fetches re-resolve through the cache tiers by key.
    retain_results: usize,
}

impl JobTable {
    /// An empty table with the given queue capacity, terminal-record
    /// retention bound, and pinned-result window.
    pub fn new(capacity: usize, retain_terminal: usize, retain_results: usize) -> Self {
        JobTable {
            next_id: 1,
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            inflight_by_key: HashMap::new(),
            terminal_order: VecDeque::new(),
            retain_terminal: retain_terminal.max(1),
            retain_results: retain_results.max(1),
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Look up a job record.
    pub fn get(&self, job: JobId) -> Option<&JobRecord> {
        self.jobs.get(&job.0)
    }

    /// The live (queued or running) job computing `key`, if any — the
    /// single-flight probe.
    pub fn live(&self, key: &CacheKey) -> Option<JobId> {
        self.inflight_by_key.get(key).map(|&id| JobId(id))
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Record a submission that the cache already answered: the job is
    /// born `Done` with the cached blob.
    pub fn admit_hit(&mut self, key: CacheKey, blob: Arc<Vec<u8>>) -> JobId {
        let id = self.fresh_id();
        self.jobs.insert(
            id,
            JobRecord {
                key,
                manifest: None,
                state: JobState::Done,
                result: Some(blob),
                error: None,
                coalesced: 0,
                progress: Arc::new(ProgressCell::default()),
                admitted: Instant::now(),
            },
        );
        self.retire(id);
        JobId(id)
    }

    /// Admit new work: coalesce onto an identical live job if one exists,
    /// otherwise enqueue (bounded).
    pub fn admit(
        &mut self,
        key: CacheKey,
        manifest: TaskManifest,
    ) -> Result<(JobId, Disposition), SubmitRejected> {
        if let Some(&live) = self.inflight_by_key.get(&key) {
            if let Some(rec) = self.jobs.get_mut(&live) {
                rec.coalesced += 1;
            }
            return Ok((JobId(live), Disposition::Coalesced));
        }
        if self.queue.len() >= self.capacity {
            return Err(SubmitRejected::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = self.fresh_id();
        self.jobs.insert(
            id,
            JobRecord {
                key,
                manifest: Some(manifest),
                state: JobState::Queued,
                result: None,
                error: None,
                coalesced: 0,
                progress: Arc::new(ProgressCell::default()),
                admitted: Instant::now(),
            },
        );
        self.queue.push_back(id);
        self.inflight_by_key.insert(key, id);
        Ok((JobId(id), Disposition::Queued))
    }

    /// Claim the oldest queued job for execution: `Queued → Running`.
    /// Returns the job, a clone of its manifest, its cache key (so
    /// completion never has to re-hash the manifest), its shared progress
    /// cell, and the measured queue wait.
    pub fn claim(&mut self) -> Option<ClaimedJob> {
        while let Some(id) = self.queue.pop_front() {
            // A cancelled entry may linger in the FIFO briefly, and its
            // record may even have been evicted from terminal retention
            // already — both are skips, never a panic (a panic here would
            // poison the service mutex and take the whole daemon down).
            let Some(rec) = self.jobs.get_mut(&id) else {
                continue;
            };
            if rec.state != JobState::Queued {
                continue;
            }
            rec.state = JobState::Running;
            let manifest = rec.manifest.clone().expect("queued job keeps its manifest");
            return Some(ClaimedJob {
                job: JobId(id),
                manifest,
                key: rec.key,
                progress: rec.progress.clone(),
                queue_wait: rec.admitted.elapsed(),
            });
        }
        None
    }

    /// Terminal transition: `Running → Done` with the result blob.
    pub fn complete(&mut self, job: JobId, blob: Arc<Vec<u8>>) {
        let rec = self.jobs.get_mut(&job.0).expect("running job has a record");
        debug_assert_eq!(rec.state, JobState::Running);
        rec.state = JobState::Done;
        rec.result = Some(blob);
        rec.manifest = None;
        self.inflight_by_key.remove(&rec.key);
        self.retire(job.0);
    }

    /// Terminal transition: `Running → Failed` with the executor error.
    pub fn fail(&mut self, job: JobId, error: ExecError) {
        let rec = self.jobs.get_mut(&job.0).expect("running job has a record");
        debug_assert_eq!(rec.state, JobState::Running);
        rec.state = JobState::Failed;
        rec.error = Some(error);
        rec.manifest = None;
        self.inflight_by_key.remove(&rec.key);
        self.retire(job.0);
    }

    /// Cancel a job that is still queued: `Queued → Cancelled`. `None`
    /// means the id is unknown; a shared (coalesced-onto) or non-queued
    /// job is refused with the reason.
    pub fn cancel(&mut self, job: JobId) -> Option<CancelOutcome> {
        let rec = self.jobs.get_mut(&job.0)?;
        if rec.state != JobState::Queued {
            return Some(CancelOutcome::NotQueued(rec.state));
        }
        if rec.coalesced > 0 {
            return Some(CancelOutcome::Shared {
                waiters: rec.coalesced,
            });
        }
        rec.state = JobState::Cancelled;
        rec.error = Some(ExecError::Protocol(format!("{job} cancelled while queued")));
        rec.manifest = None;
        self.inflight_by_key.remove(&rec.key);
        // Release the bounded-queue slot immediately: a cancelled
        // tombstone must not cause queue-full rejections while it waits
        // to be popped.
        self.queue.retain(|&q| q != job.0);
        self.retire(job.0);
        Some(CancelOutcome::Cancelled)
    }

    /// Register a terminal record for bounded retention: evict whole
    /// records past `retain_terminal`, and unpin the result blob of the
    /// record sliding out of the `retain_results` window (each retire
    /// pushes one id, so unpinning the single id at the window edge keeps
    /// this amortized O(1)).
    fn retire(&mut self, id: u64) {
        self.terminal_order.push_back(id);
        while self.terminal_order.len() > self.retain_terminal {
            let evict = self.terminal_order.pop_front().expect("non-empty");
            self.jobs.remove(&evict);
        }
        let n = self.terminal_order.len();
        if n > self.retain_results {
            let aged = self.terminal_order[n - self.retain_results - 1];
            if let Some(rec) = self.jobs.get_mut(&aged) {
                rec.result = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::MulJob;
    use crate::grid::Segment;

    fn manifest(mix: u64) -> TaskManifest {
        TaskManifest::for_job(
            &MulJob { factor: 1 },
            vec![Segment {
                point: 0,
                base_rep: 0,
                count: 2,
            }],
            &|_, r| mix + r,
        )
    }

    fn key(mix: u64) -> CacheKey {
        CacheKey::of_manifest(&manifest(mix))
    }

    #[test]
    fn fifo_claim_order_and_state_transitions() {
        let mut t = JobTable::new(8, 64, 64);
        let (a, da) = t.admit(key(1), manifest(1)).unwrap();
        let (b, db) = t.admit(key(2), manifest(2)).unwrap();
        assert_eq!((da, db), (Disposition::Queued, Disposition::Queued));
        assert_eq!(t.queued_len(), 2);

        let claimed = t.claim().unwrap();
        assert_eq!(claimed.job, a);
        assert_eq!(claimed.manifest, manifest(1));
        assert_eq!(t.get(a).unwrap().state, JobState::Running);

        t.complete(a, Arc::new(vec![1]));
        assert_eq!(t.get(a).unwrap().state, JobState::Done);
        assert!(t.get(a).unwrap().manifest.is_none(), "manifest released");

        let second = t.claim().unwrap().job;
        assert_eq!(second, b);
        t.fail(b, ExecError::Protocol("x".into()));
        assert_eq!(t.get(b).unwrap().state, JobState::Failed);
        assert!(t.claim().is_none());
    }

    #[test]
    fn identical_submissions_coalesce_until_terminal() {
        let mut t = JobTable::new(8, 64, 64);
        let (a, _) = t.admit(key(5), manifest(5)).unwrap();
        // Same key while queued: coalesced.
        let (a2, d) = t.admit(key(5), manifest(5)).unwrap();
        assert_eq!((a2, d), (a, Disposition::Coalesced));
        // Still coalesced while running.
        let _ = t.claim().unwrap();
        let (a3, d) = t.admit(key(5), manifest(5)).unwrap();
        assert_eq!((a3, d), (a, Disposition::Coalesced));
        // After completion the key is free again (the cache layer above
        // answers it from now on).
        t.complete(a, Arc::new(vec![9]));
        let (b, d) = t.admit(key(5), manifest(5)).unwrap();
        assert_ne!(b, a);
        assert_eq!(d, Disposition::Queued);
    }

    #[test]
    fn queue_capacity_is_enforced_and_excludes_running_jobs() {
        let mut t = JobTable::new(1, 64, 64);
        let (_a, _) = t.admit(key(1), manifest(1)).unwrap();
        // Queue full: a *different* manifest is rejected.
        assert!(matches!(
            t.admit(key(2), manifest(2)),
            Err(SubmitRejected::QueueFull { capacity: 1 })
        ));
        // But an identical one still coalesces (no queue slot needed).
        assert!(matches!(
            t.admit(key(1), manifest(1)),
            Ok((_, Disposition::Coalesced))
        ));
        // Claiming frees the slot: running jobs do not count.
        let _ = t.claim().unwrap();
        assert!(t.admit(key(2), manifest(2)).is_ok());
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let mut t = JobTable::new(8, 64, 64);
        let (a, _) = t.admit(key(1), manifest(1)).unwrap();
        let (b, _) = t.admit(key(2), manifest(2)).unwrap();
        assert_eq!(t.cancel(b), Some(CancelOutcome::Cancelled));
        assert_eq!(t.get(b).unwrap().state, JobState::Cancelled);
        // The cancelled entry is skipped by claim.
        let claimed = t.claim().unwrap().job;
        assert_eq!(claimed, a);
        assert!(t.claim().is_none());
        // Running and terminal jobs report their state, unchanged.
        assert_eq!(
            t.cancel(a),
            Some(CancelOutcome::NotQueued(JobState::Running))
        );
        assert_eq!(t.get(a).unwrap().state, JobState::Running);
        t.complete(a, Arc::new(vec![0]));
        assert_eq!(t.cancel(a), Some(CancelOutcome::NotQueued(JobState::Done)));
        assert_eq!(t.cancel(JobId(999)), None);
        // A new identical submission after cancellation re-queues (the
        // single-flight entry was released).
        assert!(matches!(
            t.admit(key(2), manifest(2)),
            Ok((_, Disposition::Queued))
        ));
    }

    #[test]
    fn cancel_refuses_jobs_other_submissions_coalesced_onto() {
        // Regression: one caller's cancel must not silently fail every
        // coalesced waiter's fetch.
        let mut t = JobTable::new(8, 64, 64);
        let (a, _) = t.admit(key(1), manifest(1)).unwrap();
        let (a2, d) = t.admit(key(1), manifest(1)).unwrap();
        assert_eq!((a2, d), (a, Disposition::Coalesced));
        assert_eq!(t.cancel(a), Some(CancelOutcome::Shared { waiters: 1 }));
        assert_eq!(t.get(a).unwrap().state, JobState::Queued, "job survives");
        // The job still claims and completes for everyone.
        assert_eq!(t.claim().map(|c| c.job), Some(a));
        t.complete(a, Arc::new(vec![1]));
        assert_eq!(t.get(a).unwrap().state, JobState::Done);
    }

    #[test]
    fn cancelled_job_releases_its_queue_slot_immediately() {
        // Regression: a cancelled tombstone used to keep occupying the
        // bounded queue until a dispatcher popped it, causing spurious
        // queue-full rejections for the lifetime of whatever ran ahead.
        let mut t = JobTable::new(1, 64, 64);
        let (a, _) = t.admit(key(1), manifest(1)).unwrap();
        assert!(matches!(
            t.admit(key(2), manifest(2)),
            Err(SubmitRejected::QueueFull { .. })
        ));
        assert_eq!(t.cancel(a), Some(CancelOutcome::Cancelled));
        assert_eq!(t.queued_len(), 0, "the slot frees on cancel, not on pop");
        let (b, d) = t.admit(key(2), manifest(2)).unwrap();
        assert_eq!(d, Disposition::Queued);
        // And the dispatcher claims the live job directly.
        assert_eq!(t.claim().map(|c| c.job), Some(b));
        assert!(t.claim().is_none());
    }

    #[test]
    fn claim_tolerates_evicted_records_in_the_fifo() {
        // Defense in depth: even if an id lingers in the FIFO after its
        // record was evicted from terminal retention, claim must skip it
        // — a panic here would poison the daemon's mutex.
        let mut t = JobTable::new(8, 1, 1);
        let (a, _) = t.admit(key(1), manifest(1)).unwrap();
        // Force the pathological shape directly: terminal-retire a's id
        // twice over a retention bound of one, evicting its record while
        // the FIFO still references it.
        t.retire(a.0);
        t.retire(a.0);
        assert!(t.get(a).is_none());
        assert!(t.claim().is_none(), "missing record must be a skip");
    }

    #[test]
    fn terminal_records_are_retained_up_to_the_bound() {
        let mut t = JobTable::new(8, 2, 2);
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let (id, _) = t.admit(key(i), manifest(i)).unwrap();
            let _ = t.claim().unwrap();
            t.complete(id, Arc::new(vec![i as u8]));
            ids.push(id);
        }
        // Only the two most recent terminal records survive.
        assert!(t.get(ids[0]).is_none());
        assert!(t.get(ids[1]).is_none());
        assert!(t.get(ids[2]).is_some());
        assert!(t.get(ids[3]).is_some());
    }

    #[test]
    fn progress_cell_is_monotone_and_shared_with_the_claim() {
        let mut t = JobTable::new(8, 64, 64);
        let (a, _) = t.admit(key(1), manifest(1)).unwrap();
        let claimed = t.claim().unwrap();
        claimed.progress.set_total(2);
        claimed.progress.record(1, 0, 0);
        claimed.progress.record(2, 0, 1);
        // A straggling out-of-order callback can never move `done` back.
        claimed.progress.record(1, 0, 0);
        let snap = t.get(a).unwrap().progress.snapshot();
        assert_eq!((snap.done, snap.total), (2, 2));
        // Cache hits never execute: total stays 0.
        let hit = t.admit_hit(key(9), Arc::new(vec![1]));
        assert_eq!(t.get(hit).unwrap().progress.snapshot().total, 0);
    }

    #[test]
    fn cache_hits_are_born_done() {
        let mut t = JobTable::new(8, 64, 64);
        let id = t.admit_hit(key(1), Arc::new(vec![7]));
        let rec = t.get(id).unwrap();
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(**rec.result.as_ref().unwrap(), vec![7]);
        // A hit does not occupy the single-flight index.
        assert!(matches!(
            t.admit(key(1), manifest(1)),
            Ok((_, Disposition::Queued))
        ));
    }
}
