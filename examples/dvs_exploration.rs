//! DVS exploration: the paper's colored tokens select among DVS service
//! levels ("tokens of different values result in different execution
//! speeds", Sec. VI). This example sweeps the computation job's DVS level
//! and the workload mix to show the speed/energy trade-off the mechanism
//! exists for.
//!
//! ```sh
//! cargo run --release --example dvs_exploration
//! ```

use wsn_petri::prelude::*;

fn main() {
    println!("computation-job DVS level vs node energy (closed workload, PDT = 0.00177 s)\n");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>10}",
        "level", "service (s)", "energy (J)", "CPU act (J)", "cycles"
    );
    for level in 1u8..=3 {
        let mut params = NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, 0.00177);
        params.comp_dvs_level = level;
        params.horizon = 900.0;
        let r = simulate_node_model(&params, 1);
        let b = r.breakdown(&PXA271_CPU, &CC2420_RADIO);
        println!(
            "{:>6} {:>14} {:>12.2} {:>12.2} {:>10.0}",
            level,
            params.dvs_overhead + params.dvs_levels[(level - 1) as usize],
            b.total().joules(),
            b.cpu.active.joules(),
            r.cycles_completed,
        );
    }

    println!("\ntasks-per-job scaling (computation burden per event):\n");
    println!("{:>6} {:>12} {:>10}", "tasks", "energy (J)", "cycles");
    for tasks in [1u32, 1000, 100_000] {
        let mut params = NodeSimParams::paper_defaults(Workload::Closed { interval: 1.0 }, 0.00177);
        params.tasks_per_job = tasks;
        params.horizon = 900.0;
        let r = simulate_node_model(&params, 1);
        let b = r.breakdown(&PXA271_CPU, &CC2420_RADIO);
        println!(
            "{:>6} {:>12.2} {:>10.0}",
            tasks,
            b.total().joules(),
            r.cycles_completed
        );
    }
    println!("\n(DVS_2 finishes fastest; heavier task counts stretch each cycle and shift\n energy from sleep into active — the trade the paper's colored tokens model)");
}
