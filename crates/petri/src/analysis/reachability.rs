//! Bounded reachability exploration.
//!
//! Explores the marking graph breadth-first. Immediate transitions are
//! treated like any other edge (we explore the *full* graph including
//! vanishing markings — adequate for the structural questions asked here:
//! boundedness, deadlock-freedom, state counts).

use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::Net;
use crate::rng::SimRng;
use crate::transition::Transition;
use std::collections::{HashMap, VecDeque};

/// Limits protecting the explorer from state-space explosion.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Stop after discovering this many distinct markings.
    pub max_states: usize,
    /// Treat any place exceeding this token count as evidence of
    /// unboundedness and stop.
    pub max_tokens_per_place: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 100_000,
            max_tokens_per_place: 1_000,
        }
    }
}

/// Result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of distinct markings discovered.
    pub states: usize,
    /// Number of edges (transition firings) discovered.
    pub edges: usize,
    /// Markings with no enabled transition.
    pub deadlocks: Vec<Marking>,
    /// True if the exploration finished without hitting a limit.
    pub complete: bool,
    /// True if a place exceeded the token bound (the net is unbounded or
    /// effectively so).
    pub bound_exceeded: bool,
    /// The maximum token count observed in any single place.
    pub max_place_tokens: usize,
}

impl Exploration {
    /// Did the (completed) exploration prove the net deadlock-free?
    pub fn deadlock_free(&self) -> bool {
        self.complete && self.deadlocks.is_empty()
    }

    /// Did the (completed) exploration prove the net k-bounded for the
    /// returned `max_place_tokens`?
    pub fn bounded(&self) -> bool {
        self.complete && !self.bound_exceeded
    }
}

/// Can `t` fire in `m`, and if so, what markings can it produce?
///
/// Colored `Choice` output arcs make successor computation nondeterministic;
/// the explorer enumerates each choice color once (probability-blind — this
/// is a *possibility* analysis).
fn successors(net: &Net, m: &Marking, t: &Transition, out: &mut Vec<Marking>) {
    out.clear();
    // Enabling (same rules as the engine).
    for arc in &t.inputs {
        if m.count_matching(arc.place, &arc.filter) < arc.multiplicity as usize {
            return;
        }
    }
    for inh in &t.inhibitors {
        if m.count_matching(inh.place, &inh.filter) >= inh.threshold as usize {
            return;
        }
    }
    if let Some(g) = &t.guard {
        if !g.eval_bool(m) {
            return;
        }
    }
    let _ = net;

    // Consume.
    let mut base = m.clone();
    let mut consumed = Vec::new();
    let mut offsets = Vec::new();
    for arc in &t.inputs {
        offsets.push(consumed.len());
        for _ in 0..arc.multiplicity {
            let c = base
                .withdraw(arc.place, &arc.filter)
                .expect("enabled implies tokens available");
            consumed.push(c);
        }
    }

    // Produce: expand Choice arcs over every alternative color.
    // (Cartesian product across arcs; bounded nets keep this tiny.)
    let mut variants: Vec<Marking> = vec![base];
    let mut rng = SimRng::seed_from_u64(0); // only used by Const/Transfer paths (no-ops)
    for arc in &t.outputs {
        match &arc.color {
            crate::arc::ColorExpr::Choice(pairs) => {
                let mut next: Vec<Marking> = Vec::with_capacity(variants.len() * pairs.len());
                for v in &variants {
                    for (color, _) in pairs {
                        let mut w = v.clone();
                        for _ in 0..arc.multiplicity {
                            w.deposit(arc.place, *color);
                        }
                        next.push(w);
                    }
                }
                variants = next;
            }
            expr => {
                for v in &mut variants {
                    for _ in 0..arc.multiplicity {
                        let c = expr.eval(&consumed, &offsets, &mut rng);
                        v.deposit(arc.place, c);
                    }
                }
            }
        }
    }
    out.extend(variants);
}

/// Breadth-first exploration from the initial marking.
pub fn explore(net: &Net, limits: ExploreLimits) -> Exploration {
    let initial = net.initial_marking();
    let mut seen: HashMap<Vec<u32>, ()> = HashMap::new();
    let mut queue: VecDeque<Marking> = VecDeque::new();
    let mut deadlocks = Vec::new();
    let mut edges = 0usize;
    let mut complete = true;
    let mut bound_exceeded = false;
    let mut max_place_tokens = 0usize;
    let mut succ_buf: Vec<Marking> = Vec::new();

    seen.insert(initial.canonical_key(), ());
    queue.push_back(initial);

    while let Some(m) = queue.pop_front() {
        for p in net.place_ids() {
            max_place_tokens = max_place_tokens.max(m.count(p));
            if m.count(p) > limits.max_tokens_per_place {
                bound_exceeded = true;
            }
        }
        if bound_exceeded {
            complete = false;
            break;
        }

        let mut any_enabled = false;
        for ti in 0..net.num_transitions() {
            let t = net.transition(TransitionId::from_index(ti));
            successors(net, &m, t, &mut succ_buf);
            if !succ_buf.is_empty() {
                any_enabled = true;
            }
            for s in succ_buf.drain(..) {
                edges += 1;
                let key = s.canonical_key();
                if !seen.contains_key(&key) {
                    if seen.len() >= limits.max_states {
                        complete = false;
                        continue;
                    }
                    seen.insert(key, ());
                    queue.push_back(s);
                }
            }
        }
        if !any_enabled {
            deadlocks.push(m);
        }
    }

    Exploration {
        states: seen.len(),
        edges,
        deadlocks,
        complete,
        bound_exceeded,
        max_place_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::expr::Expr;
    use crate::timing::Timing;

    #[test]
    fn two_state_cycle() {
        let mut b = NetBuilder::new("cycle");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        b.transition("pq", Timing::exponential(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("qp", Timing::exponential(1.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let ex = explore(&net, ExploreLimits::default());
        assert_eq!(ex.states, 2);
        assert_eq!(ex.edges, 2);
        assert!(ex.deadlock_free());
        assert!(ex.bounded());
        assert_eq!(ex.max_place_tokens, 1);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new("dead");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        b.transition("pq", Timing::exponential(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let ex = explore(&net, ExploreLimits::default());
        assert_eq!(ex.states, 2);
        assert_eq!(ex.deadlocks.len(), 1);
        assert!(!ex.deadlock_free());
        // The deadlocked marking has the token in q.
        assert_eq!(ex.deadlocks[0].count(q), 1);
    }

    #[test]
    fn unbounded_net_hits_limit() {
        let mut b = NetBuilder::new("unbounded");
        let q = b.place("q").build();
        b.transition("gen", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let ex = explore(
            &net,
            ExploreLimits {
                max_states: 1000,
                max_tokens_per_place: 50,
            },
        );
        assert!(ex.bound_exceeded);
        assert!(!ex.bounded());
    }

    #[test]
    fn guard_prunes_state_space() {
        let mut b = NetBuilder::new("guarded");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        let gate = b.place("gate").build();
        b.transition("pq", Timing::exponential(1.0))
            .input(p, 1)
            .output(q, 1)
            .guard(Expr::count(gate).gt_c(0)) // never true
            .build();
        let net = b.build().unwrap();
        let ex = explore(&net, ExploreLimits::default());
        // Only the initial marking; it is a deadlock.
        assert_eq!(ex.states, 1);
        assert_eq!(ex.deadlocks.len(), 1);
    }

    #[test]
    fn choice_colors_expand_alternatives() {
        use crate::arc::ColorExpr;
        use crate::token::Color;
        let mut b = NetBuilder::new("choice");
        let src = b.place("src").tokens(1).build();
        let dst = b.place("dst").build();
        b.transition("t", Timing::exponential(1.0))
            .input(src, 1)
            .output_colored(
                dst,
                1,
                ColorExpr::Choice(vec![(Color(1), 0.5), (Color(2), 0.5)]),
            )
            .build();
        let net = b.build().unwrap();
        let ex = explore(&net, ExploreLimits::default());
        // initial + {dst:1-colored} + {dst:2-colored} = 3 states.
        assert_eq!(ex.states, 3);
    }

    #[test]
    fn state_count_mm1k_like() {
        // Closed 3-token net: states = C(3+1-1, ...) — here simply 4
        // distributions of 3 tokens over 2 places.
        let mut b = NetBuilder::new("closed3");
        let p = b.place("p").tokens(3).build();
        let q = b.place("q").build();
        b.transition("pq", Timing::exponential(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("qp", Timing::exponential(2.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let ex = explore(&net, ExploreLimits::default());
        assert_eq!(ex.states, 4);
        assert!(ex.deadlock_free());
    }
}
