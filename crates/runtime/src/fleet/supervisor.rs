//! Supervisor bookkeeping: the quarantine table for repeat offenders
//! and the shared retry-with-backoff loop.
//!
//! Offenders are identified by a stable string key — a remote peer's
//! `host:port`, never an anonymous shard subprocess (those are
//! interchangeable; quarantining their spawn command would take out the
//! whole tier for every concurrent caller). A key that fails
//! [`QUARANTINE_THRESHOLD`] times in a row without an intervening
//! success is quarantined for [`QUARANTINE_WINDOW`]; during the window
//! checkouts and reconnects skip it, so a flapping peer stops burning
//! retry budget on every dispatch. Any success clears the record.

use super::{fleet_stats, FaultPolicy, FleetStats};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Consecutive failures before a key is quarantined.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// How long a quarantined key is skipped before it may be probed again.
pub const QUARANTINE_WINDOW: Duration = Duration::from_secs(10);

#[derive(Debug)]
struct Offender {
    consecutive_failures: u32,
    quarantined_until: Option<Instant>,
}

/// Process-global table of flapping fleet members.
#[derive(Debug, Default)]
pub struct Quarantine {
    inner: Mutex<HashMap<String, Offender>>,
}

/// The process-global quarantine table.
pub fn quarantine() -> &'static Quarantine {
    static TABLE: OnceLock<Quarantine> = OnceLock::new();
    TABLE.get_or_init(Quarantine::default)
}

impl Quarantine {
    /// Record a failure for `key`; returns `true` if this failure
    /// pushed the key into quarantine.
    pub fn record_failure(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.entry(key.to_string()).or_insert(Offender {
            consecutive_failures: 0,
            quarantined_until: None,
        });
        entry.consecutive_failures += 1;
        if entry.consecutive_failures >= QUARANTINE_THRESHOLD && entry.quarantined_until.is_none() {
            entry.quarantined_until = Some(Instant::now() + QUARANTINE_WINDOW);
            FleetStats::bump(&fleet_stats().quarantined);
            eprintln!(
                "[fleet] quarantining {key} for {QUARANTINE_WINDOW:?} after \
                 {} consecutive failure(s)",
                entry.consecutive_failures
            );
            true
        } else {
            false
        }
    }

    /// Record a success for `key`, clearing any failure streak or
    /// quarantine.
    pub fn record_success(&self, key: &str) {
        self.inner.lock().unwrap().remove(key);
    }

    /// Is `key` currently quarantined? Expired windows are cleared (the
    /// key gets a fresh probation: one more failure re-quarantines).
    pub fn is_quarantined(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.get_mut(key) else {
            return false;
        };
        match entry.quarantined_until {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                // Window expired: allow one probe, but keep the streak
                // at threshold-1 so a single new failure re-quarantines.
                entry.quarantined_until = None;
                entry.consecutive_failures = QUARANTINE_THRESHOLD - 1;
                false
            }
            None => false,
        }
    }

    #[cfg(test)]
    fn clear(&self, key: &str) {
        self.inner.lock().unwrap().remove(key);
    }
}

/// Run `attempt_fn` up to `1 + policy.retry_budget` times, sleeping the
/// policy's backoff between failures. The closure receives the 0-based
/// attempt index; `salt` de-correlates backoff jitter between
/// concurrent callers (use the shard index, peer hash, or similar).
pub fn with_retries<T>(
    policy: &FaultPolicy,
    salt: u64,
    mut attempt_fn: impl FnMut(usize) -> Result<T, String>,
) -> Result<T, String> {
    let mut last_err = String::new();
    for attempt in 0..=policy.retry_budget {
        match attempt_fn(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                last_err = e;
                if attempt < policy.retry_budget {
                    std::thread::sleep(policy.backoff_delay(attempt, salt));
                }
            }
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_trips_after_threshold_and_clears_on_success() {
        let q = Quarantine::default();
        let key = "127.0.0.1:19999";
        for i in 1..QUARANTINE_THRESHOLD {
            assert!(!q.record_failure(key), "failure {i} must not quarantine");
            assert!(!q.is_quarantined(key));
        }
        // Note: this path does not go through the global table, so the
        // global counter bump is an accepted side effect here.
        assert!(q.record_failure(key), "threshold failure quarantines");
        assert!(q.is_quarantined(key));
        q.record_success(key);
        assert!(!q.is_quarantined(key));
        q.clear(key);
    }

    #[test]
    fn retries_honour_the_budget() {
        let policy = FaultPolicy::default().with_retry_budget(2).with_backoff(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(2),
        );
        let mut calls = 0;
        let out: Result<(), String> = with_retries(&policy, 0, |_| {
            calls += 1;
            Err("nope".into())
        });
        assert_eq!(calls, 3, "1 try + 2 retries");
        assert_eq!(out.unwrap_err(), "nope");

        let mut calls = 0;
        let out = with_retries(&policy, 0, |attempt| {
            calls += 1;
            if attempt < 1 {
                Err("transient".into())
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 1);
        assert_eq!(calls, 2);
    }
}
