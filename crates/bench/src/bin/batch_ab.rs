//! Paired A/B measurement of the cross-replication batched engine vs the
//! scalar replication loop, on the shared [`bench::ab`] harness: adjacent
//! interleaved blocks, alternating order, median of per-pair ratios.
//! Every block runs the same replication set on the same seeds, so the
//! firings checksum doubles as a bit-identity witness. Writes
//! `BENCH_engine.json`-ready numbers (the `batch` section) to stdout.
//!
//! ```text
//! cargo run --release -p bench --bin batch_ab [pairs_per_case]
//! ```

use petri_core::prelude::*;
use std::time::Instant;

/// Replications per timed block — divisible by every measured width.
const REPS_PER_BLOCK: u64 = 64;

/// Batch widths to sweep (1 = the batched path at width one, isolating
/// the SoA engine's per-lane overhead from the batching win).
const WIDTHS: [usize; 4] = [1, 4, 16, 64];

fn mm1_net() -> Net {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    b.build().unwrap()
}

/// One scalar block: `runs` independent replications, one at a time.
fn time_scalar(sim: &Simulator<'_>, seed0: u64, runs: u64) -> (f64, u64) {
    let t0 = Instant::now();
    let mut firings = 0u64;
    for i in 0..runs {
        firings += sim.run(seed0 + i).unwrap().total_firings();
    }
    (t0.elapsed().as_nanos() as f64, firings)
}

/// One batched block: the same `runs` replications on the same seeds,
/// advanced `width` lanes at a time.
fn time_batched(sim: &Simulator<'_>, seed0: u64, runs: u64, width: usize) -> (f64, u64) {
    let seeds: Vec<u64> = (0..runs).map(|i| seed0 + i).collect();
    let t0 = Instant::now();
    let batcher = BatchSimulator::new(sim);
    let mut firings = 0u64;
    for chunk in seeds.chunks(width) {
        for out in batcher.run(chunk) {
            firings += out.unwrap().total_firings();
        }
    }
    (t0.elapsed().as_nanos() as f64, firings)
}

fn measure(label: &str, sim: &Simulator<'_>, pairs: usize) {
    // Events per block (identical across variants and pairs' seeds differ,
    // so use pair 0's count as the representative denominator).
    let (_, events) = time_scalar(sim, 1, REPS_PER_BLOCK);
    for width in WIDTHS {
        let stats = bench::ab::run_paired(
            pairs,
            |p| time_batched(sim, (p as u64) * REPS_PER_BLOCK + 1, REPS_PER_BLOCK, width),
            |p| time_scalar(sim, (p as u64) * REPS_PER_BLOCK + 1, REPS_PER_BLOCK),
        );
        // Both variants fire the same events (checksum-enforced), so the
        // block-time ratio IS the aggregate events/s ratio.
        println!(
            "{label:<16} width {width:>2}: scalar {:6.1} ns/event  batched {:6.1} ns/event  \
             median paired speedup {:5.2}x",
            stats.b_ns / events as f64,
            stats.a_ns / events as f64,
            stats.speedup,
        );
    }
}

fn main() {
    let pairs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    println!(
        "paired A/B, {pairs} pairs per case, {REPS_PER_BLOCK} replications per block \
         (median of adjacent-block ratios; batched vs scalar, same seeds)"
    );

    let net = mm1_net();
    let sim = Simulator::new(&net, SimConfig::for_horizon(2_000.0));
    measure("mm1/2k_seconds", &sim, pairs);

    let model = wsn::build_cpu_model(&wsn::CpuModelParams::paper_defaults(0.1, 0.3));
    let sim = Simulator::new(&model.net, SimConfig::for_horizon(1_000.0));
    measure("fig3_cpu_1000s", &sim, pairs);
}
