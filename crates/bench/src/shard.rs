//! Worker-side wiring for the sharded executor, plus self-test jobs.
//!
//! The `repro` binary doubles as the worker subprocess of
//! `sim_runtime::ShardedBackend` (`repro --worker`): this module builds its
//! [`JobRegistry`] — every portable experiment job from `wsn` plus a few
//! self-test jobs the shard-determinism and error-propagation suites need
//! (a plain uncolored M/M/1 net, deliberate task failures, and a
//! worker-killing crash job).

use petri_core::prelude::*;
use sim_runtime::wire::{self, Reader, WireError};
use sim_runtime::{JobRegistry, PortableJob};

/// The registry a `repro --worker` process serves manifests against:
/// every wsn experiment job plus the self-test jobs below.
pub fn worker_registry() -> JobRegistry {
    let mut reg = JobRegistry::new();
    wsn::experiments::jobs::register(&mut reg);
    reg.register(Mm1ReplicationJob::KIND, Mm1ReplicationJob::decode_boxed);
    reg.register(FailJob::KIND, FailJob::decode_boxed);
    reg.register(CrashJob::KIND, CrashJob::decode_boxed);
    reg.register(EnvCrashJob::KIND, EnvCrashJob::decode_boxed);
    reg
}

/// Self-test job: one replication of an uncolored M/M/1 net (`point`
/// selects the service rate from a small grid, so multi-point grids are
/// exercised too). Observations: `[E[N], throughput]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mm1ReplicationJob {
    /// Simulated horizon (s).
    pub horizon: f64,
    /// Warm-up truncation (s).
    pub warmup: f64,
    /// Service rates; `point` indexes into it.
    pub mu_grid: Vec<f64>,
}

impl Mm1ReplicationJob {
    /// Registry key.
    pub const KIND: &'static str = "selftest/mm1";

    /// The canonical submit-spec manifest: `reps` replications of the
    /// standard 3-point service-rate grid, seeded the same way however
    /// the submission arrives (`repro submit mm1`, `POST
    /// /submit?spec=mm1`), so identical parameters always land on the
    /// same cache key.
    pub fn manifest(horizon: f64, warmup: f64, reps: u64, seed: u64) -> sim_runtime::TaskManifest {
        let job = Mm1ReplicationJob {
            horizon,
            warmup,
            mu_grid: vec![2.0, 5.0, 10.0],
        };
        let segments = (0..job.mu_grid.len())
            .map(|point| sim_runtime::Segment {
                point,
                base_rep: 0,
                count: reps as usize,
            })
            .collect();
        sim_runtime::TaskManifest::for_job(&job, segments, &|p, r| {
            petri_core::rng::SimRng::child_seed(seed, ((p as u64) << 32) | r)
        })
    }

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = Mm1ReplicationJob {
            horizon: r.get_f64()?,
            warmup: r.get_f64()?,
            mu_grid: r.get_f64s()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for Mm1ReplicationJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        wire::put_f64(buf, self.horizon);
        wire::put_f64(buf, self.warmup);
        wire::put_f64s(buf, &self.mu_grid);
    }

    fn run_slot(&self, point: usize, rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        let mu = *self
            .mu_grid
            .get(point)
            .ok_or_else(|| format!("point {point} outside the {}-rate grid", self.mu_grid.len()))?;
        sim_runtime::trace::engine_run((point as u64) << 32 | rep, || {
            let mut b = NetBuilder::new("selftest-mm1");
            let q = b.place("q").build();
            b.transition("arrive", Timing::exponential(1.0))
                .output(q, 1)
                .build();
            let serve = b
                .transition("serve", Timing::exponential(mu))
                .input(q, 1)
                .build();
            let net = b.build().map_err(|e| e.to_string())?;
            let mut sim = Simulator::new(
                &net,
                SimConfig::for_horizon(self.horizon).with_warmup(self.warmup),
            );
            let r_q = sim.reward_place(net.place_by_name("q").expect("q exists"));
            let r_served = sim.reward_firings(serve);
            let out = sim.run(seed).map_err(|e| e.to_string())?;
            // Fold the (cumulative) engine profile into the trace as counter
            // events: value = attributed ns, aux = firings. Advisory only.
            let tr = sim_runtime::trace::tracer();
            if tr.is_enabled() && petri_core::sim::profile::armed() {
                let trace = sim_runtime::trace::current();
                for row in petri_core::sim::profile::snapshot() {
                    tr.counter(
                        trace,
                        format!("profile/{}", row.transition),
                        sim_runtime::trace::cat::ENGINE,
                        row.ns,
                        row.firings,
                    );
                }
            }
            let mut bytes = Vec::with_capacity(2 * 8 + 4);
            wire::put_f64s(&mut bytes, &[out.reward(r_q), out.reward(r_served)]);
            Ok(bytes)
        })
    }
}

/// Self-test job: every slot at or after `(fail_point, fail_rep)` (in
/// lexicographic point/replication order) returns a task error — so
/// *multiple shards* fail and the gather must still surface exactly the
/// boundary slot, exercising in-band `E`-frame propagation and
/// lowest-flat-index selection.
#[derive(Debug, Clone, PartialEq)]
pub struct FailJob {
    /// First failing point.
    pub fail_point: u64,
    /// First failing replication within `fail_point`.
    pub fail_rep: u64,
}

impl FailJob {
    /// Registry key.
    pub const KIND: &'static str = "selftest/fail";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = FailJob {
            fail_point: r.get_u64()?,
            fail_rep: r.get_u64()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for FailJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        wire::put_u64(buf, self.fail_point);
        wire::put_u64(buf, self.fail_rep);
    }

    fn run_slot(&self, point: usize, rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        if (point as u64, rep) >= (self.fail_point, self.fail_rep) {
            return Err(format!("selftest failure at ({point}, {rep})"));
        }
        let mut bytes = Vec::new();
        wire::put_f64s(&mut bytes, &[seed as f64]);
        Ok(bytes)
    }
}

/// Self-test job: **kills its own process** at one `(point, replication)`
/// slot — the "kill one worker" scenario. Only ever dispatch this through a
/// sharded backend; in-process it would take the caller down with it.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashJob {
    /// Crashing point.
    pub crash_point: u64,
    /// Crashing replication.
    pub crash_rep: u64,
}

impl CrashJob {
    /// Registry key.
    pub const KIND: &'static str = "selftest/crash";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = CrashJob {
            crash_point: r.get_u64()?,
            crash_rep: r.get_u64()?,
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for CrashJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        wire::put_u64(buf, self.crash_point);
        wire::put_u64(buf, self.crash_rep);
    }

    fn run_slot(&self, point: usize, rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        if point as u64 == self.crash_point && rep == self.crash_rep {
            eprintln!("[selftest] crashing worker at ({point}, {rep}) as requested");
            std::process::exit(3);
        }
        let mut bytes = Vec::new();
        wire::put_f64s(&mut bytes, &[seed as f64]);
        Ok(bytes)
    }
}

/// Self-test job: kills its own process at any slot at or after
/// `(crash_point, crash_rep)` (lexicographic order, like [`FailJob`]) —
/// but **only when `env_var` is set in the executing process**. Unarmed,
/// every slot succeeds with the same bytes [`CrashJob`] would produce.
///
/// This is the kill-one-peer-mid-run probe of the remote suite: a
/// `bench::remote::LocalCluster` starts exactly one worker with the
/// environment variable set, so that worker dies on whichever chunk it
/// claims, the remote backend re-dispatches the undelivered slots to the
/// survivors (which do *not* have the variable), and the gathered bytes
/// must equal an in-process run bit for bit. The boundary semantics (not
/// a single slot) make the crash independent of which peer happens to
/// claim which chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvCrashJob {
    /// First crashing point.
    pub crash_point: u64,
    /// First crashing replication within `crash_point`.
    pub crash_rep: u64,
    /// Environment variable arming the crash.
    pub env_var: String,
}

impl EnvCrashJob {
    /// Registry key.
    pub const KIND: &'static str = "selftest/env-crash";

    fn decode_boxed(payload: &[u8]) -> Result<Box<dyn PortableJob>, WireError> {
        let mut r = Reader::new(payload);
        let job = EnvCrashJob {
            crash_point: r.get_u64()?,
            crash_rep: r.get_u64()?,
            env_var: r.get_str()?.to_string(),
        };
        r.finish()?;
        Ok(Box::new(job))
    }
}

impl PortableJob for EnvCrashJob {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        wire::put_u64(buf, self.crash_point);
        wire::put_u64(buf, self.crash_rep);
        wire::put_str(buf, &self.env_var);
    }

    fn run_slot(&self, point: usize, rep: u64, seed: u64) -> Result<Vec<u8>, String> {
        if (point as u64, rep) >= (self.crash_point, self.crash_rep)
            && std::env::var_os(&self.env_var).is_some()
        {
            eprintln!(
                "[selftest] {} armed: crashing worker at ({point}, {rep})",
                self.env_var
            );
            std::process::exit(3);
        }
        let mut bytes = Vec::new();
        wire::put_f64s(&mut bytes, &[seed as f64]);
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_experiment_and_selftest_jobs() {
        let reg = worker_registry();
        let kinds: Vec<&str> = reg.kinds().collect();
        for k in [
            "wsn/cpu-comparison",
            "wsn/node-sweep",
            "wsn/validation",
            "wsn/seed-ablation",
            Mm1ReplicationJob::KIND,
            FailJob::KIND,
            CrashJob::KIND,
            EnvCrashJob::KIND,
        ] {
            assert!(kinds.contains(&k), "missing {k} in {kinds:?}");
        }
    }

    #[test]
    fn env_crash_job_is_inert_without_its_variable() {
        let job = EnvCrashJob {
            crash_point: 0,
            crash_rep: 0,
            env_var: "BENCH_SELFTEST_CRASH_NEVER_SET".into(),
        };
        // Would exit(3) if armed; unarmed it must produce normal bytes.
        let bytes = job.run_slot(0, 0, 42).unwrap();
        assert_eq!(sim_runtime::wire::decode_f64s(&bytes).unwrap(), vec![42.0]);
        // Round-trips through the registry.
        let mut payload = Vec::new();
        job.encode_payload(&mut payload);
        let back = worker_registry()
            .decode(EnvCrashJob::KIND, &payload)
            .unwrap();
        assert_eq!(
            back.run_slot(1, 1, 7).unwrap(),
            job.run_slot(1, 1, 7).unwrap()
        );
    }

    #[test]
    fn mm1_job_round_trips_and_is_seed_deterministic() {
        let job = Mm1ReplicationJob {
            horizon: 500.0,
            warmup: 50.0,
            mu_grid: vec![2.0, 4.0],
        };
        let mut payload = Vec::new();
        job.encode_payload(&mut payload);
        let back = worker_registry()
            .decode(Mm1ReplicationJob::KIND, &payload)
            .unwrap();
        assert_eq!(
            job.run_slot(1, 0, 42).unwrap(),
            back.run_slot(1, 0, 42).unwrap()
        );
        assert_ne!(
            job.run_slot(1, 0, 42).unwrap(),
            job.run_slot(1, 0, 43).unwrap()
        );
    }

    #[test]
    fn fail_job_fails_from_its_boundary_on() {
        let job = FailJob {
            fail_point: 1,
            fail_rep: 2,
        };
        assert!(job.run_slot(0, 2, 0).is_ok());
        assert!(job.run_slot(1, 1, 0).is_ok());
        assert!(job.run_slot(1, 2, 0).is_err());
        assert!(job.run_slot(1, 3, 0).is_err());
        assert!(job.run_slot(2, 0, 0).is_err());
    }
}
