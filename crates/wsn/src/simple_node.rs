//! The simple sensor-system model of the paper's Fig. 10 / Tables VIII–X.
//!
//! A five-place cycle: `Wait →(Job_Arrival, exp mean 3 s)→ Temp_Place
//! →(Temp, det 1 s)→ Receiving →(det 0.00597 s)→ Computation
//! →(det 1.0274 s)→ Transmitting →(det 0.0059 s)→ Wait`.
//!
//! The `Temp`/`Temp_Place` pair encodes the IMote2's inability to handle
//! events closer than 1 s apart (Sec. V). Energy follows Eq. (8) with the
//! measured Table VII powers; `Wait` and `Temp_Place` are both billed at
//! the idle rate.
//!
//! Because the model is a pure renewal cycle, exact steady-state
//! probabilities are available analytically ([`analytic_probabilities`]):
//! each state's probability is its mean dwell time over the mean cycle
//! length. Table IX's published numbers contain an obvious typo
//! (Transmitting listed at 19.7 % — a 0.0059 s stage of a ~5 s cycle; the
//! five rows sum to 119.5 %). Our values are the self-consistent ones, and
//! they reproduce the paper's own Petri-net energy (0.3265 J vs the
//! published 0.326519 J).

use energy::{Energy, FourState};
use petri_core::prelude::*;

/// Timing parameters (defaults = Table VIII).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimpleNodeParams {
    /// Mean of the exponential `Job_Arrival` delay (s). Table VIII: 3.0.
    pub job_arrival_mean: f64,
    /// Deterministic `Temp` delay (s): 1.0.
    pub temp_delay: f64,
    /// Deterministic `Receive_Delay` (s): 0.00597.
    pub receive_delay: f64,
    /// Deterministic `Computation_Delay` (s): 1.0274.
    pub computation_delay: f64,
    /// Deterministic `Transmit_Delay` (s): 0.0059.
    pub transmit_delay: f64,
}

impl Default for SimpleNodeParams {
    fn default() -> Self {
        SimpleNodeParams {
            job_arrival_mean: 3.0,
            temp_delay: 1.0,
            receive_delay: 0.00597,
            computation_delay: 1.0274,
            transmit_delay: 0.0059,
        }
    }
}

/// Steady-state probabilities of the five places.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimpleNodeProbabilities {
    /// `Wait`.
    pub wait: f64,
    /// `Temp_Place`.
    pub temp_place: f64,
    /// `Receiving`.
    pub receiving: f64,
    /// `Computation`.
    pub computation: f64,
    /// `Transmitting`.
    pub transmitting: f64,
}

impl SimpleNodeProbabilities {
    /// Sum of all five probabilities (≈ 1).
    pub fn total(&self) -> f64 {
        self.wait + self.temp_place + self.receiving + self.computation + self.transmitting
    }

    /// Eq. (8): total energy over `duration` seconds under the Table VII
    /// powers — `Wait` and `Temp_Place` billed at the idle rate.
    pub fn energy(&self, powers: &FourState, duration_s: f64) -> Energy {
        powers
            .average(
                self.wait + self.temp_place,
                self.receiving,
                self.computation,
                self.transmitting,
            )
            .over_seconds(duration_s)
    }
}

/// Place handles of the built net.
#[derive(Debug, Clone, Copy)]
pub struct SimpleNodePlaces {
    /// Waiting for an event.
    pub wait: PlaceId,
    /// Minimum-event-spacing holding place.
    pub temp_place: PlaceId,
    /// Receiving a message.
    pub receiving: PlaceId,
    /// Computing.
    pub computation: PlaceId,
    /// Transmitting.
    pub transmitting: PlaceId,
}

/// A built simple-node model.
#[derive(Debug)]
pub struct SimpleNodeModel {
    /// The net.
    pub net: Net,
    /// Place handles.
    pub places: SimpleNodePlaces,
}

/// Build the Fig. 10 net.
pub fn build_simple_node(params: &SimpleNodeParams) -> SimpleNodeModel {
    assert!(
        params.job_arrival_mean > 0.0,
        "arrival mean must be positive"
    );
    let mut b = NetBuilder::new("fig10-simple-node");
    let wait = b.place("Wait").tokens(1).build();
    let temp_place = b.place("Temp_Place").build();
    let receiving = b.place("Receiving").build();
    let computation = b.place("Computation").build();
    let transmitting = b.place("Transmitting").build();

    b.transition(
        "Job_Arrival",
        Timing::exponential_mean(params.job_arrival_mean),
    )
    .input(wait, 1)
    .output(temp_place, 1)
    .build();
    b.transition("Temp", Timing::deterministic(params.temp_delay))
        .input(temp_place, 1)
        .output(receiving, 1)
        .build();
    b.transition("Receive_Delay", Timing::deterministic(params.receive_delay))
        .input(receiving, 1)
        .output(computation, 1)
        .build();
    b.transition(
        "Computation_Delay",
        Timing::deterministic(params.computation_delay),
    )
    .input(computation, 1)
    .output(transmitting, 1)
    .build();
    b.transition(
        "Transmit_Delay",
        Timing::deterministic(params.transmit_delay),
    )
    .input(transmitting, 1)
    .output(wait, 1)
    .build();

    let net = b.build().expect("simple node net is statically valid");
    SimpleNodeModel {
        net,
        places: SimpleNodePlaces {
            wait,
            temp_place,
            receiving,
            computation,
            transmitting,
        },
    }
}

/// Exact steady-state probabilities from renewal-reward theory:
/// p(state) = mean dwell / mean cycle.
pub fn analytic_probabilities(params: &SimpleNodeParams) -> SimpleNodeProbabilities {
    let cycle = params.job_arrival_mean
        + params.temp_delay
        + params.receive_delay
        + params.computation_delay
        + params.transmit_delay;
    SimpleNodeProbabilities {
        wait: params.job_arrival_mean / cycle,
        temp_place: params.temp_delay / cycle,
        receiving: params.receive_delay / cycle,
        computation: params.computation_delay / cycle,
        transmitting: params.transmit_delay / cycle,
    }
}

/// Simulate the net for `horizon` seconds and return estimated
/// probabilities.
pub fn simulate_simple_node(
    params: &SimpleNodeParams,
    horizon: f64,
    seed: u64,
) -> SimpleNodeProbabilities {
    let model = build_simple_node(params);
    let mut sim = Simulator::new(&model.net, SimConfig::for_horizon(horizon));
    let r_wait = sim.reward_place(model.places.wait);
    let r_temp = sim.reward_place(model.places.temp_place);
    let r_rx = sim.reward_place(model.places.receiving);
    let r_comp = sim.reward_place(model.places.computation);
    let r_tx = sim.reward_place(model.places.transmitting);
    let out = sim.run(seed).expect("simple node cannot livelock");
    SimpleNodeProbabilities {
        wait: out.reward(r_wait),
        temp_place: out.reward(r_temp),
        receiving: out.reward(r_rx),
        computation: out.reward(r_comp),
        transmitting: out.reward(r_tx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy::IMOTE2_MEASURED;
    use petri_core::analysis::{explore, p_invariants, ExploreLimits};

    #[test]
    fn net_is_a_five_state_cycle() {
        let m = build_simple_node(&SimpleNodeParams::default());
        assert_eq!(m.net.num_places(), 5);
        assert_eq!(m.net.num_transitions(), 5);
        let ex = explore(&m.net, ExploreLimits::default());
        assert_eq!(ex.states, 5);
        assert!(ex.deadlock_free());
        assert!(ex.bounded());
        assert_eq!(ex.max_place_tokens, 1);
    }

    #[test]
    fn single_token_invariant() {
        let m = build_simple_node(&SimpleNodeParams::default());
        let invs = p_invariants(&m.net);
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].weights, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn analytic_probabilities_match_table_ix_corrected() {
        // Table IX (with the Transmitting typo corrected): Wait ≈ 59.5 %,
        // Temp ≈ 19.8 %, Receiving ≈ 0.12 %, Computation ≈ 20.4 %,
        // Transmitting ≈ 0.12 %.
        let p = analytic_probabilities(&SimpleNodeParams::default());
        assert!((p.wait - 0.595).abs() < 0.005, "wait={}", p.wait);
        assert!((p.temp_place - 0.198).abs() < 0.005);
        assert!((p.receiving - 0.00118).abs() < 0.0005);
        assert!((p.computation - 0.204).abs() < 0.005);
        assert!((p.transmitting - 0.00117).abs() < 0.0005);
        assert!((p.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simulation_matches_analytic() {
        let params = SimpleNodeParams::default();
        let sim = simulate_simple_node(&params, 50_000.0, 5);
        let exact = analytic_probabilities(&params);
        assert!((sim.wait - exact.wait).abs() < 0.01);
        assert!((sim.temp_place - exact.temp_place).abs() < 0.01);
        assert!((sim.receiving - exact.receiving).abs() < 0.002);
        assert!((sim.computation - exact.computation).abs() < 0.01);
        assert!((sim.transmitting - exact.transmitting).abs() < 0.002);
    }

    #[test]
    fn energy_reproduces_table_x() {
        // The paper: Petri-net energy 0.326519 J over the measured 266.5 s
        // run. Our analytic probabilities give the same number to ~1 %.
        let p = analytic_probabilities(&SimpleNodeParams::default());
        let e = p.energy(&IMOTE2_MEASURED, 266.5).joules();
        assert!(
            (e - 0.326519).abs() < 0.005,
            "energy {e} J vs paper 0.326519 J"
        );
    }

    #[test]
    fn energy_within_three_percent_of_measured() {
        // Table X: measured 0.336137 J; prediction differs by ~3 %.
        let p = analytic_probabilities(&SimpleNodeParams::default());
        let e = p.energy(&IMOTE2_MEASURED, 266.5).joules();
        let diff = (e - 0.336137).abs() / 0.336137;
        assert!(diff < 0.05, "relative difference {diff}");
    }

    #[test]
    fn probabilities_shift_with_parameters() {
        // Faster arrivals shrink the Wait share.
        let fast = SimpleNodeParams {
            job_arrival_mean: 0.5,
            ..Default::default()
        };
        let p_fast = analytic_probabilities(&fast);
        let p_slow = analytic_probabilities(&SimpleNodeParams::default());
        assert!(p_fast.wait < p_slow.wait);
        assert!(p_fast.computation > p_slow.computation);
    }
}
