//! Causal job tracing: a dependency-free, process-wide span collector.
//!
//! Where [`crate::telemetry`] answers *aggregate* questions (queue depth,
//! p99 verb latency), this module answers the per-job one — "where did
//! job X spend its 40 ms: queue, dispatch, worker spawn, or the engine?"
//! Every execution tier records [`Span`]s into one process-global,
//! bounded ring buffer ([`tracer()`]):
//!
//! * `submit` / `queue-wait` / `dispatch` — the service daemon
//!   ([`crate::service`]);
//! * `pool-checkout` — the fleet layer checking a warm worker or peer
//!   out of the pool ([`crate::exec::ShardedBackend`],
//!   [`crate::remote::RemoteBackend`]);
//! * `slot` — one replication slot executing on the grid
//!   ([`crate::grid`]), in-process or inside a worker;
//! * `engine-run` — one simulation engine run inside a slot (recorded by
//!   the job implementation, e.g. the bench crate's replication jobs).
//!
//! Spans are grouped by a **deterministic trace ID** derived from the
//! manifest's SHA-256 (via [`crate::service::cache::CacheKey`]), and
//! slot spans carry the deterministic flat slot index — so re-runs of
//! the same manifest produce directly comparable traces. Cross-process
//! propagation rides the existing worker wire protocol: the manifest
//! request frame carries the trace ID, and workers return their span
//! batches in an advisory tagged frame (like `P` progress frames — a
//! lost batch can never affect results, only observability).
//!
//! Like telemetry, the collector is **observably inert**: recording
//! never touches scheduling, seeding or gather order; `REPRO_TRACE=off`
//! disables it entirely; and artifacts are byte-identical with tracing
//! on or off (enforced by the `observability` integration suite and the
//! `service_ab` <2% overhead gate).
//!
//! Traces render as Chrome trace-event JSON
//! ([`render_chrome_trace`]) — loadable in Perfetto or
//! `chrome://tracing` — with the lowered engine's per-transition
//! profile folded in as counter events. On a failing job, the flight
//! recorder ([`flight_record`]) dumps the trace's last spans to a
//! post-mortem file referenced from the error path.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::wire::{self, Reader, WireError};

/// Spans kept in the ring buffer before the oldest are dropped. Sized
/// for a few thousand jobs' worth of coarse spans; overflow is counted,
/// never an error.
pub const RING_CAPACITY: usize = 64 * 1024;

/// Spans a flight-recorder post-mortem keeps (the *last* N of the
/// failing trace).
pub const FLIGHT_SPANS: usize = 256;

/// The well-known span names, one per instrumented stage. The wire
/// decoder interns onto these so cross-process spans compare pointer-
/// cheap against the same constants.
pub mod name {
    /// Service admission (validation, cache probe, queue insert).
    pub const SUBMIT: &str = "submit";
    /// Time a claimed job spent queued before a dispatcher picked it up.
    pub const QUEUE_WAIT: &str = "queue-wait";
    /// The whole backend dispatch of a job's manifest.
    pub const DISPATCH: &str = "dispatch";
    /// Checking a warm worker subprocess or peer connection out of the
    /// fleet pool (includes cold spawn/connect + health probe).
    pub const POOL_CHECKOUT: &str = "pool-checkout";
    /// One replication slot (or contiguous slot batch) executing on the
    /// grid.
    pub const SLOT: &str = "slot";
    /// One simulation engine run inside a slot.
    pub const ENGINE_RUN: &str = "engine-run";
}

/// Span categories (one per tier), used as the Chrome `cat` field.
pub mod cat {
    /// The service daemon tier.
    pub const SERVICE: &str = "service";
    /// The fleet / pool tier.
    pub const FLEET: &str = "fleet";
    /// The work-stealing grid tier.
    pub const GRID: &str = "grid";
    /// The simulation engine tier.
    pub const ENGINE: &str = "engine";
}

/// What a [`Span`] renders as in Chrome trace-event JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A `ph:"X"` complete event: `start_ns` + `dur_ns` wall-time span.
    Complete,
    /// A `ph:"C"` counter sample: `dur_ns` holds the counter value and
    /// `flat` an auxiliary count (the engine profiler uses value =
    /// attributed ns, aux = firings).
    Counter,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Deterministic trace ID (from the manifest SHA-256); `0` means
    /// "no job context" and is never recorded.
    pub trace: u64,
    /// Stage name — one of [`name`]'s constants for complete spans;
    /// counter spans may carry dynamic names (e.g. a transition name).
    pub name: Cow<'static, str>,
    /// Tier category — one of [`cat`]'s constants.
    pub cat: &'static str,
    /// Complete event or counter sample.
    pub kind: SpanKind,
    /// Flat slot index (slot spans), `(point << 32) | replication`
    /// (engine spans), or an auxiliary count (counter spans).
    pub flat: u64,
    /// Wall-clock start, nanoseconds since the UNIX epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (counter spans: the sampled value).
    pub dur_ns: u64,
    /// OS process ID of the recording process.
    pub pid: u32,
    /// Hash-derived thread ID of the recording thread.
    pub tid: u64,
}

impl Span {
    /// Deterministic span ID: a SplitMix64 mix of the trace ID, the
    /// stage name and the flat index — identical across re-runs of the
    /// same manifest.
    pub fn span_id(&self) -> u64 {
        let mut h = self.trace ^ 0x9E37_79B9_7F4A_7C15;
        for b in self.name.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100_0000_01B3);
        }
        let mut s = h ^ self.flat;
        crate::fleet::splitmix64(&mut s)
    }
}

/// A span's captured start moment: wall clock for the trace timeline,
/// monotonic for the duration. Zero-cost when the tracer is disabled.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart {
    wall_ns: u64,
    mono: Option<Instant>,
}

/// Nanoseconds since the UNIX epoch, saturating.
fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A stable per-thread ID for the Chrome `tid` field (the OS thread ID
/// is not portably readable on stable; a hash of [`std::thread::ThreadId`]
/// distinguishes lanes just as well).
fn thread_tid() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    // Keep it small-ish for readable trace viewers.
    h.finish() % 1_000_000
}

/// The process-wide span collector: a bounded ring buffer behind one
/// mutex, plus the ambient trace-context cell.
///
/// When disabled, every recording method returns before touching the
/// clock or the lock, so the whole stack costs one predictable branch
/// per call site.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
}

impl Tracer {
    /// Construct a collector with the given enable state and ring
    /// capacity (tests; production uses the [`tracer()`] global).
    pub fn new(enabled: bool, capacity: usize) -> Self {
        Tracer {
            enabled,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Capture a span's start moment (no-op when disabled).
    pub fn start(&self) -> SpanStart {
        if !self.enabled {
            return SpanStart {
                wall_ns: 0,
                mono: None,
            };
        }
        SpanStart {
            wall_ns: unix_now_ns(),
            mono: Some(Instant::now()),
        }
    }

    /// Record a complete span from `start` to now. No-op when disabled,
    /// when `trace` is zero (no job context), or when `start` was
    /// captured disabled.
    pub fn record(
        &self,
        trace: u64,
        name: &'static str,
        category: &'static str,
        flat: u64,
        start: SpanStart,
    ) {
        if !self.enabled || trace == 0 {
            return;
        }
        let Some(mono) = start.mono else { return };
        let dur = u64::try_from(mono.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.push(Span {
            trace,
            name: Cow::Borrowed(name),
            cat: category,
            kind: SpanKind::Complete,
            flat,
            start_ns: start.wall_ns,
            dur_ns: dur,
            pid: std::process::id(),
            tid: thread_tid(),
        });
    }

    /// Record a complete span that *ended now* after lasting `dur_ns` —
    /// for durations measured elsewhere (e.g. the scheduler's queue
    /// wait).
    pub fn record_past(
        &self,
        trace: u64,
        name: &'static str,
        category: &'static str,
        flat: u64,
        dur_ns: u64,
    ) {
        if !self.enabled || trace == 0 {
            return;
        }
        let now = unix_now_ns();
        self.push(Span {
            trace,
            name: Cow::Borrowed(name),
            cat: category,
            kind: SpanKind::Complete,
            flat,
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            pid: std::process::id(),
            tid: thread_tid(),
        });
    }

    /// Record a counter sample (`value` = the counter's level, `aux` an
    /// auxiliary count rendered alongside it).
    pub fn counter(
        &self,
        trace: u64,
        counter_name: String,
        category: &'static str,
        value: u64,
        aux: u64,
    ) {
        if !self.enabled || trace == 0 {
            return;
        }
        self.push(Span {
            trace,
            name: Cow::Owned(counter_name),
            cat: category,
            kind: SpanKind::Counter,
            flat: aux,
            start_ns: unix_now_ns(),
            dur_ns: value,
            pid: std::process::id(),
            tid: thread_tid(),
        });
    }

    /// Record an already-built span (the wire decode path). No-op when
    /// disabled or `span.trace` is zero.
    pub fn record_span(&self, span: Span) {
        if !self.enabled || span.trace == 0 {
            return;
        }
        self.push(span);
    }

    fn push(&self, span: Span) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Every retained span of `trace`, in recording order.
    pub fn spans_for(&self, trace: u64) -> Vec<Span> {
        let ring = self.ring.lock().expect("trace ring lock");
        ring.iter().filter(|s| s.trace == trace).cloned().collect()
    }

    /// Remove and return every retained span of `trace` (workers ship
    /// a manifest's batch exactly once this way).
    pub fn take_for(&self, trace: u64) -> Vec<Span> {
        let mut ring = self.ring.lock().expect("trace ring lock");
        let mut out = Vec::new();
        ring.retain(|s| {
            if s.trace == trace {
                out.push(s.clone());
                false
            } else {
                true
            }
        });
        out
    }

    /// Spans evicted by ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The process-global [`Tracer`].
///
/// Enabled unless `REPRO_TRACE` is set to `off`/`false`/`0` (read once,
/// at first use). Disabling is a kill switch, not a correctness knob —
/// artifacts are byte-identical either way.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let off = std::env::var("REPRO_TRACE")
            .map(|v| matches!(v.trim(), "off" | "false" | "0"))
            .unwrap_or(false);
        Tracer::new(!off, RING_CAPACITY)
    })
}

// --- ambient trace context -------------------------------------------------

/// The ambient trace ID deep call sites (grid slots, engine runs)
/// attribute their spans to. One cell per process: exact for workers
/// (which execute one manifest at a time) and for the default
/// single-dispatcher daemon; under concurrent dispatchers attribution
/// is last-enter-wins — spans are advisory observability data, never
/// results.
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);

/// RAII guard restoring the previous ambient trace ID on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

/// Set the ambient trace ID for the enclosing scope.
pub fn enter(trace: u64) -> TraceGuard {
    TraceGuard {
        prev: CURRENT_TRACE.swap(trace, Ordering::Relaxed),
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.store(self.prev, Ordering::Relaxed);
    }
}

/// The ambient trace ID (`0` when no job context is active).
pub fn current() -> u64 {
    CURRENT_TRACE.load(Ordering::Relaxed)
}

/// Run `f` under an `engine-run` span attributed to the ambient trace.
///
/// This is the hook job implementations (which live above the runtime —
/// the engine crate cannot depend on it) wrap their per-slot simulation
/// body in: when tracing is off it is a direct call, and the ambient
/// trace is whatever job context the executing tier entered.
pub fn engine_run<T>(flat: u64, f: impl FnOnce() -> T) -> T {
    let tr = tracer();
    if !tr.is_enabled() {
        return f();
    }
    let started = tr.start();
    let out = f();
    tr.record(current(), name::ENGINE_RUN, cat::ENGINE, flat, started);
    out
}

/// Deterministic trace ID of a manifest: the first eight bytes of its
/// cache key (itself a SHA-256 over the versioned wire encoding), never
/// zero. Re-runs of the same manifest on the same build get the same
/// trace ID, so their traces are directly comparable.
pub fn trace_id_of(manifest: &crate::exec::TaskManifest) -> u64 {
    crate::service::cache::CacheKey::of_manifest(manifest).trace_id()
}

// --- wire encoding (worker span batches) -----------------------------------

/// Encode a span batch for the advisory `T` response frame.
pub(crate) fn encode_spans(spans: &[Span]) -> Vec<u8> {
    let mut body = Vec::new();
    wire::put_u32(&mut body, spans.len() as u32);
    for s in spans {
        wire::put_str(&mut body, &s.name);
        wire::put_str(&mut body, s.cat);
        wire::put_u8(&mut body, matches!(s.kind, SpanKind::Counter) as u8);
        wire::put_u64(&mut body, s.trace);
        wire::put_u64(&mut body, s.flat);
        wire::put_u64(&mut body, s.start_ns);
        wire::put_u64(&mut body, s.dur_ns);
        wire::put_u32(&mut body, s.pid);
        wire::put_u64(&mut body, s.tid);
    }
    body
}

/// Intern a wire span name/category onto the well-known constants so
/// decoded spans compare against the same statics local ones use.
fn intern(s: &str, table: &[&'static str], fallback: &'static str) -> &'static str {
    table.iter().find(|k| **k == s).copied().unwrap_or(fallback)
}

/// Decode a span batch from a `T` frame body (reader positioned after
/// the tag byte). Rejects trailing bytes like every other frame decode.
pub(crate) fn decode_spans(r: &mut Reader<'_>) -> Result<Vec<Span>, WireError> {
    const NAMES: &[&str] = &[
        name::SUBMIT,
        name::QUEUE_WAIT,
        name::DISPATCH,
        name::POOL_CHECKOUT,
        name::SLOT,
        name::ENGINE_RUN,
    ];
    const CATS: &[&str] = &[cat::SERVICE, cat::FLEET, cat::GRID, cat::ENGINE];
    let n = r.get_u32()? as usize;
    // A span batch is bounded by the worker's own ring; cap the decode
    // so a garbled length cannot balloon allocation.
    if n > RING_CAPACITY {
        return Err(WireError::new(format!("span batch too large: {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let raw_name = r.get_str()?.to_string();
        let raw_cat = r.get_str()?.to_string();
        let kind = if r.get_u8()? != 0 {
            SpanKind::Counter
        } else {
            SpanKind::Complete
        };
        let name = match intern(&raw_name, NAMES, "") {
            "" => Cow::Owned(raw_name),
            interned => Cow::Borrowed(interned),
        };
        out.push(Span {
            trace: r.get_u64()?,
            name,
            cat: intern(&raw_cat, CATS, cat::ENGINE),
            kind,
            flat: r.get_u64()?,
            start_ns: r.get_u64()?,
            dur_ns: r.get_u64()?,
            pid: r.get_u32()?,
            tid: r.get_u64()?,
        });
    }
    Ok(out)
}

// --- Chrome trace-event rendering ------------------------------------------

/// Minimal JSON string escape (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond remainder, the Chrome `ts`/`dur` unit.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render one trace's spans as Chrome trace-event JSON — loadable in
/// Perfetto / `chrome://tracing`. Complete spans become `ph:"X"` events
/// with deterministic `span_id`/`trace_id` args; counter spans (the
/// engine profile) become `ph:"C"` events.
pub fn render_chrome_trace(trace: u64, spans: &[Span]) -> String {
    let mut events = Vec::with_capacity(spans.len());
    for s in spans {
        match s.kind {
            SpanKind::Complete => events.push(format!(
                concat!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},",
                    "\"pid\":{},\"tid\":{},\"args\":{{\"flat\":{},\"span_id\":\"{:#018x}\",",
                    "\"trace_id\":\"{:#018x}\"}}}}"
                ),
                json_escape(&s.name),
                json_escape(s.cat),
                micros(s.start_ns),
                micros(s.dur_ns),
                s.pid,
                s.tid,
                s.flat,
                s.span_id(),
                s.trace,
            )),
            SpanKind::Counter => events.push(format!(
                concat!(
                    "{{\"ph\":\"C\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},",
                    "\"pid\":{},\"tid\":{},\"args\":{{\"value\":{},\"aux\":{}}}}}"
                ),
                json_escape(&s.name),
                json_escape(s.cat),
                micros(s.start_ns),
                s.pid,
                s.tid,
                s.dur_ns,
                s.flat,
            )),
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_id\":\"{:#018x}\",\"spans\":{}}},\"traceEvents\":[{}]}}",
        trace,
        spans.len(),
        events.join(",")
    )
}

// --- flight recorder -------------------------------------------------------

/// Directory post-mortem files land in: `REPRO_FLIGHT_DIR` if set
/// (`off`/`0` disables the recorder), else `repro-flight` under the OS
/// temp dir.
fn flight_dir() -> Option<std::path::PathBuf> {
    match std::env::var("REPRO_FLIGHT_DIR") {
        Ok(v) if matches!(v.trim(), "off" | "false" | "0") => None,
        Ok(v) if !v.trim().is_empty() => Some(std::path::PathBuf::from(v)),
        _ => Some(std::env::temp_dir().join("repro-flight")),
    }
}

/// Dump the last [`FLIGHT_SPANS`] spans of a failing trace to a
/// post-mortem JSON file and return its path — the error path logs the
/// reference. Returns `None` when tracing is off, the recorder is
/// disabled, or the dump cannot be written (a failing flight recorder
/// must never make a failing job worse).
pub fn flight_record(trace: u64, label: &str, error: &str) -> Option<std::path::PathBuf> {
    let t = tracer();
    if !t.is_enabled() || trace == 0 {
        return None;
    }
    let dir = flight_dir()?;
    let mut spans = t.spans_for(trace);
    if spans.len() > FLIGHT_SPANS {
        spans.drain(..spans.len() - FLIGHT_SPANS);
    }
    let clean: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("flight-{trace:016x}-{clean}.json"));
    let body = format!(
        "{{\"error\":\"{}\",\"trace\":{}}}",
        json_escape(error),
        render_chrome_trace(trace, &spans)
    );
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::write(&path, body).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, name: &'static str, flat: u64) -> Span {
        Span {
            trace,
            name: Cow::Borrowed(name),
            cat: cat::GRID,
            kind: SpanKind::Complete,
            flat,
            start_ns: 1_000,
            dur_ns: 500,
            pid: 1,
            tid: 2,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false, 16);
        t.record(7, name::SLOT, cat::GRID, 0, t.start());
        t.record_past(7, name::QUEUE_WAIT, cat::SERVICE, 0, 99);
        t.record_span(span(7, name::SLOT, 0));
        assert!(t.spans_for(7).is_empty());
    }

    #[test]
    fn zero_trace_is_never_recorded() {
        let t = Tracer::new(true, 16);
        t.record(0, name::SLOT, cat::GRID, 0, t.start());
        t.record_span(span(0, name::SLOT, 0));
        assert!(t.spans_for(0).is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(true, 4);
        for i in 0..10 {
            t.record_span(span(1, name::SLOT, i));
        }
        let spans = t.spans_for(1);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].flat, 6, "oldest spans evicted first");
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn take_for_removes_only_that_trace() {
        let t = Tracer::new(true, 16);
        t.record_span(span(1, name::SLOT, 0));
        t.record_span(span(2, name::SLOT, 1));
        t.record_span(span(1, name::ENGINE_RUN, 2));
        let taken = t.take_for(1);
        assert_eq!(taken.len(), 2);
        assert!(t.spans_for(1).is_empty());
        assert_eq!(t.spans_for(2).len(), 1);
    }

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        let a = span(9, name::SLOT, 3);
        let b = span(9, name::SLOT, 3);
        assert_eq!(a.span_id(), b.span_id());
        assert_ne!(a.span_id(), span(9, name::SLOT, 4).span_id());
        assert_ne!(a.span_id(), span(9, name::ENGINE_RUN, 3).span_id());
        assert_ne!(a.span_id(), span(8, name::SLOT, 3).span_id());
    }

    #[test]
    fn spans_round_trip_the_wire() {
        let mut spans = vec![span(5, name::SLOT, 1), span(5, name::ENGINE_RUN, 2)];
        spans.push(Span {
            trace: 5,
            name: Cow::Owned("profile/serve".to_string()),
            cat: cat::ENGINE,
            kind: SpanKind::Counter,
            flat: 42,
            start_ns: 7,
            dur_ns: 9,
            pid: 3,
            tid: 4,
        });
        let bytes = encode_spans(&spans);
        let mut r = Reader::new(&bytes);
        let back = decode_spans(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, spans);
        // Interned names compare pointer-equal to the constants.
        assert!(std::ptr::eq(back[0].name.as_ref(), name::SLOT));
    }

    #[test]
    fn decode_rejects_oversized_batches() {
        let mut body = Vec::new();
        wire::put_u32(&mut body, (RING_CAPACITY + 1) as u32);
        assert!(decode_spans(&mut Reader::new(&body)).is_err());
    }

    #[test]
    fn chrome_render_is_valid_shape() {
        let spans = vec![
            span(5, name::SLOT, 1),
            Span {
                kind: SpanKind::Counter,
                name: Cow::Owned("profile/\"odd\"".to_string()),
                ..span(5, name::SLOT, 7)
            },
        ];
        let json = render_chrome_trace(5, &spans);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"slot\""));
        assert!(json.contains("\\\"odd\\\""), "dynamic names are escaped");
        assert!(json.contains("\"ts\":1.000"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        // Serialized via the guard itself: this test owns the cell
        // while it holds the guards.
        let base = current();
        {
            let _a = enter(11);
            assert_eq!(current(), 11);
            {
                let _b = enter(22);
                assert_eq!(current(), 22);
            }
            assert_eq!(current(), 11);
        }
        assert_eq!(current(), base);
    }

    #[test]
    fn flight_record_writes_a_postmortem() {
        let t = tracer();
        if !t.is_enabled() {
            return; // REPRO_TRACE=off in this environment
        }
        let trace = 0xF11E_D00D;
        t.record_span(span(trace, name::SLOT, 0));
        let path = flight_record(trace, "unit/test", "boom \"quoted\"").expect("dump written");
        let body = std::fs::read_to_string(&path).expect("dump readable");
        assert!(body.contains("boom \\\"quoted\\\""));
        assert!(body.contains("\"traceEvents\""));
        std::fs::remove_file(path).ok();
    }
}
