//! Quickstart: build a tiny power-managed-CPU Petri net by hand, simulate
//! it, and read energy out — the library's core loop in ~60 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wsn_petri::prelude::*;

fn main() {
    // 1. Model: a CPU that sleeps after 0.5 s of idleness and takes 0.3 s
    //    to wake, fed by Poisson(0.2/s) jobs served at 10/s.
    let mut b = NetBuilder::new("quickstart-cpu");
    let buffer = b.place("Buffer").build();
    let sleeping = b.place("Sleeping").tokens(1).build();
    let waking = b.place("Waking").build();
    let idle = b.place("Idle").build();
    let active = b.place("Active").build();

    b.transition("arrive", Timing::exponential(0.2))
        .output(buffer, 1)
        .build();
    b.transition("wake", Timing::immediate_pri(4))
        .input(sleeping, 1)
        .output(waking, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    b.transition("wake_done", Timing::deterministic(0.3))
        .input(waking, 1)
        .output(idle, 1)
        .build();
    b.transition("start", Timing::immediate_pri(2))
        .input(idle, 1)
        .output(active, 1)
        .guard(Expr::count(buffer).gt_c(0))
        .build();
    b.transition("finish", Timing::immediate_pri(3))
        .input(active, 1)
        .output(idle, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    b.transition("serve", Timing::exponential(10.0))
        .input(active, 1)
        .input(buffer, 1)
        .output(active, 1)
        .build();
    b.transition("power_down", Timing::deterministic(0.5))
        .input(idle, 1)
        .output(sleeping, 1)
        .build();
    let net = b.build().expect("valid net");

    // 2. Simulate 1 hour of model time.
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(3600.0));
    let p_sleep = sim.reward_place(sleeping);
    let p_wake = sim.reward_place(waking);
    let p_idle = sim.reward_place(idle);
    let p_active = sim.reward_place(active);
    let out = sim.run(2024).expect("simulation runs");

    // 3. Energy via the PXA271 power table (Table III of the paper).
    let probs = [
        out.reward(p_sleep),
        out.reward(p_wake),
        out.reward(p_idle),
        out.reward(p_active),
    ];
    let avg = PXA271_CPU.average(probs[0], probs[1], probs[2], probs[3]);
    let energy = avg.over_seconds(3600.0);

    println!("state fractions over 1 h:");
    for (name, p) in ["sleep", "waking", "idle", "active"].iter().zip(probs) {
        println!("  {name:<8} {:6.2} %", 100.0 * p);
    }
    println!("average power : {:8.3} mW", avg.milliwatts());
    println!("energy        : {:8.3} J", energy.joules());
    println!(
        "battery life  : {:8.1} days on 2xAA",
        Battery::TWO_AA.lifetime_days(avg)
    );
}
