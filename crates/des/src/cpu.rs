//! Exact discrete-event simulation of the power-managed CPU.
//!
//! This is the reproduction of the paper's ground-truth "simulator"
//! (Sec. IV), built strictly from the four modeling assumptions of
//! Sec. III-A:
//!
//! 1. Poisson job arrivals with rate λ;
//! 2. exponential service times with mean 1/μ;
//! 3. the CPU enters standby after idling longer than the Power-Down
//!    Threshold `T`;
//! 4. powering up takes a constant delay `D` (jobs arriving meanwhile
//!    queue up).
//!
//! The simulator tracks exact dwell times in the four power states and
//! integrates energy with the Table III rates, giving the solid "Simulation"
//! curves of Figs. 4–9.

use crate::kernel::{EventId, EventQueue};
use crate::rng::DesRng;
use energy::{ComponentPower, Energy, PowerState, StateTimes, StateTracker};
use serde::{Deserialize, Serialize};

/// Parameters of a CPU simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSimParams {
    /// Job arrival rate λ (jobs/s).
    pub lambda: f64,
    /// Service rate μ (jobs/s); mean service time is `1/mu`.
    pub mu: f64,
    /// Power-Down Threshold `T` (s).
    pub power_down_threshold: f64,
    /// Power-Up Delay `D` (s).
    pub power_up_delay: f64,
    /// Simulated horizon (s). The paper uses 1000 s (Table II).
    pub horizon: f64,
}

impl CpuSimParams {
    /// Table II parameters: λ = 1/s, mean service 0.1 s (μ = 10/s),
    /// horizon 1000 s.
    pub fn paper_defaults(power_down_threshold: f64, power_up_delay: f64) -> Self {
        CpuSimParams {
            lambda: 1.0,
            mu: 10.0,
            power_down_threshold,
            power_up_delay,
            horizon: 1000.0,
        }
    }
}

/// Results of one CPU simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSimResult {
    /// Exact dwell times per power state.
    pub times: StateTimes,
    /// Number of sleep→wake transitions.
    pub wakeups: u64,
    /// Jobs completed within the horizon.
    pub jobs_served: u64,
    /// Jobs generated within the horizon.
    pub jobs_arrived: u64,
}

impl CpuSimResult {
    /// State-probability vector `[standby, powerup, idle, active]`
    /// (fractions of the horizon) — the y-axis of Figs. 4–6.
    pub fn probabilities(&self) -> [f64; 4] {
        [
            self.times.fraction(PowerState::Sleep),
            self.times.fraction(PowerState::Wakeup),
            self.times.fraction(PowerState::Idle),
            self.times.fraction(PowerState::Active),
        ]
    }

    /// Total energy under a power table (Eq. 7) — the y-axis of Figs. 7–9.
    pub fn energy(&self, power: &ComponentPower) -> Energy {
        self.times.energy(power)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrival,
    ServiceDone,
    WakeupDone,
    PdtExpire,
}

/// Run the CPU simulation for the given seed.
pub fn simulate_cpu(params: &CpuSimParams, seed: u64) -> CpuSimResult {
    assert!(
        params.lambda > 0.0 && params.mu > 0.0,
        "rates must be positive"
    );
    assert!(
        params.power_down_threshold >= 0.0 && params.power_up_delay >= 0.0,
        "delays must be non-negative"
    );
    assert!(params.horizon > 0.0, "horizon must be positive");

    let mut rng = DesRng::seed_from_u64(seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut tracker = StateTracker::new(PowerState::Sleep, 0.0);
    let mut buffer: u64 = 0;
    let mut pdt_timer: Option<EventId> = None;
    let mut jobs_served = 0u64;
    let mut jobs_arrived = 0u64;

    q.schedule_in(rng.exp(params.lambda), Ev::Arrival);

    while let Some(t_next) = q.peek_time() {
        if t_next >= params.horizon {
            break;
        }
        let (now, ev) = q.pop().expect("peeked");
        match ev {
            Ev::Arrival => {
                jobs_arrived += 1;
                buffer += 1;
                // Next arrival (Poisson stream never stops).
                q.schedule_in(rng.exp(params.lambda), Ev::Arrival);
                match tracker.state() {
                    PowerState::Sleep => {
                        // Begin the fixed power-up; jobs queue meanwhile.
                        tracker.transition_to(PowerState::Wakeup, now);
                        q.schedule_in(params.power_up_delay, Ev::WakeupDone);
                    }
                    PowerState::Wakeup => {
                        // Already waking; the job just queues.
                    }
                    PowerState::Idle => {
                        // Cancel the pending power-down and start service.
                        if let Some(id) = pdt_timer.take() {
                            q.cancel(id);
                        }
                        tracker.transition_to(PowerState::Active, now);
                        q.schedule_in(rng.exp(params.mu), Ev::ServiceDone);
                    }
                    PowerState::Active => {
                        // Served after the jobs ahead of it.
                    }
                }
            }
            Ev::WakeupDone => {
                debug_assert_eq!(tracker.state(), PowerState::Wakeup);
                if buffer > 0 {
                    tracker.transition_to(PowerState::Active, now);
                    q.schedule_in(rng.exp(params.mu), Ev::ServiceDone);
                } else {
                    // Unreachable under assumption 4 (wake-up only starts on
                    // an arrival and jobs cannot be cancelled), but kept for
                    // robustness.
                    tracker.transition_to(PowerState::Idle, now);
                    pdt_timer =
                        Some(q.schedule_in_pri(params.power_down_threshold, 1, Ev::PdtExpire));
                }
            }
            Ev::ServiceDone => {
                debug_assert_eq!(tracker.state(), PowerState::Active);
                debug_assert!(buffer > 0);
                buffer -= 1;
                jobs_served += 1;
                if buffer > 0 {
                    q.schedule_in(rng.exp(params.mu), Ev::ServiceDone);
                } else {
                    tracker.transition_to(PowerState::Idle, now);
                    pdt_timer =
                        Some(q.schedule_in_pri(params.power_down_threshold, 1, Ev::PdtExpire));
                }
            }
            Ev::PdtExpire => {
                debug_assert_eq!(tracker.state(), PowerState::Idle);
                pdt_timer = None;
                tracker.transition_to(PowerState::Sleep, now);
            }
        }
    }

    let (times, wakeups) = tracker.finish(params.horizon);
    CpuSimResult {
        times,
        wakeups,
        jobs_served,
        jobs_arrived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy::PXA271_CPU;

    fn run(t: f64, d: f64, seed: u64) -> CpuSimResult {
        let mut p = CpuSimParams::paper_defaults(t, d);
        p.horizon = 5000.0;
        simulate_cpu(&p, seed)
    }

    #[test]
    fn dwell_times_cover_horizon() {
        let r = run(0.1, 0.3, 1);
        assert!((r.times.total() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn active_fraction_near_utilization() {
        // Work conservation: active fraction ≈ rho = 0.1.
        let r = run(0.5, 0.001, 2);
        let [_, _, _, active] = r.probabilities();
        assert!((active - 0.1).abs() < 0.02, "active={active}");
    }

    #[test]
    fn tiny_threshold_sleeps_a_lot() {
        let r = run(0.001, 0.001, 3);
        let [standby, _, idle, _] = r.probabilities();
        assert!(standby > 0.8, "standby={standby}");
        assert!(idle < 0.01, "idle={idle}");
    }

    #[test]
    fn huge_threshold_never_sleeps() {
        let r = run(1e9, 0.001, 4);
        let [standby, powerup, idle, _] = r.probabilities();
        // Starts asleep; wakes once; never sleeps again.
        assert!(standby < 0.01, "standby={standby}");
        assert!(powerup < 0.01);
        assert!(idle > 0.8, "idle={idle}");
        assert!(r.wakeups <= 1);
    }

    #[test]
    fn idle_grows_with_threshold() {
        let small = run(0.01, 0.001, 5).probabilities()[2];
        let large = run(1.0, 0.001, 5).probabilities()[2];
        assert!(large > small, "idle: {small} -> {large}");
    }

    #[test]
    fn wakeups_fall_with_threshold() {
        let many = run(0.001, 0.001, 6).wakeups;
        let few = run(2.0, 0.001, 6).wakeups;
        assert!(few < many, "wakeups: {many} -> {few}");
    }

    #[test]
    fn large_powerup_delay_accumulates_queue() {
        // D = 10 s at lambda = 1/s queues ~10 jobs per wake-up; they all
        // get served (rho < 1), so served ≈ arrived over a long run.
        let r = run(0.001, 10.0, 7);
        assert!(r.jobs_arrived > 0);
        let served_frac = r.jobs_served as f64 / r.jobs_arrived as f64;
        assert!(served_frac > 0.95, "served fraction {served_frac}");
        // Substantial time spent powering up.
        let [_, powerup, _, _] = r.probabilities();
        assert!(powerup > 0.2, "powerup={powerup}");
    }

    #[test]
    fn energy_consistent_with_probabilities() {
        let r = run(0.1, 0.3, 8);
        let e = r.energy(&PXA271_CPU).joules();
        let [s, w, i, a] = r.probabilities();
        let manual = (s * 17.0 + w * 192.976 + i * 88.0 + a * 193.0) * 1e-3 * r.times.total();
        assert!((e - manual).abs() < 1e-9, "{e} vs {manual}");
    }

    #[test]
    fn reproducible_per_seed() {
        let a = run(0.05, 0.3, 42);
        let b = run(0.05, 0.3, 42);
        assert_eq!(a, b);
        let c = run(0.05, 0.3, 43);
        assert_ne!(a.times, c.times);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let r = run(0.2, 0.3, 9);
        let total: f64 = r.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let mut p = CpuSimParams::paper_defaults(0.1, 0.1);
        p.horizon = 0.0;
        let _ = simulate_cpu(&p, 1);
    }
}
