//! Deterministic random-number streams for simulation.
//!
//! Every simulation run is a pure function of `(net, config, seed)`. The
//! engine owns one [`SimRng`]; replication harnesses derive independent
//! child seeds with [`SimRng::child_seed`] (a SplitMix64 jump, so replication
//! `i` gets a stream decorrelated from replication `j`).
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 — the same construction the `rand` crate's
//! `SmallRng` uses — so the build has no external dependency while keeping
//! the statistical quality the engine's weighted choices and exponential
//! streams rely on.

/// Simulation RNG: a seeded, reproducible generator plus distribution
/// helpers used by the timing module.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64 (never yields the all-zero
        // state xoshiro must avoid).
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> the standard [0, 1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[low, high]`.
    #[inline]
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        low + (high - low) * self.unit()
    }

    /// Exponential with rate `rate` (mean `1/rate`), via inverse transform.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        // 1 - unit() is in (0, 1], so ln() is finite and <= 0.
        -(1.0 - self.unit()).ln() / rate
    }

    /// Standard normal (Box–Muller, one value per call; simple and fine for
    /// measurement-noise emulation).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Widening-multiply range reduction (Lemire); bias is < 2^-64 per
        // draw, far below anything a simulation estimate can resolve.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Pick an index in `[0, weights.len())` with probability proportional to
    /// `weights[i]`. Weights must be non-negative with a positive sum;
    /// falls back to index 0 if the sum degenerates.
    // `!(total > 0.0)` deliberately catches NaN too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        if !(total > 0.0) {
            return 0;
        }
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Derive a decorrelated child seed for replication `index` from a base
    /// seed (SplitMix64 finalizer over `base + golden-ratio * (index+1)`).
    pub fn child_seed(base: u64, index: u64) -> u64 {
        let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_in_range() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut rng = SimRng::seed_from_u64(17);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let i = rng.below(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exp_positive_and_mean() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.exp(2.0);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = rng.gaussian(10.0, 2.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::seed_from_u64(21);
        let w = [1.0, 3.0];
        let n = 40_000;
        let ones = (0..n).filter(|_| rng.weighted_choice(&w) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn weighted_choice_degenerate_sum() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(rng.weighted_choice(&[0.0, 0.0]), 0);
    }

    #[test]
    fn child_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(SimRng::child_seed(42, i)));
        }
        // Different bases give different streams too.
        assert_ne!(SimRng::child_seed(1, 0), SimRng::child_seed(2, 0));
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }
}
