//! Optional event-trace recording.

use crate::ids::TransitionId;

/// One recorded firing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the firing.
    pub time: f64,
    /// Which transition fired.
    pub transition: TransitionId,
}

/// Bounded trace buffer: keeps the first `capacity` firings.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Number of firings not recorded because the buffer was full.
    pub(crate) dropped: u64,
}

impl TraceBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, time: f64, transition: TransitionId) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { time, transition });
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_up_to_capacity() {
        let mut buf = TraceBuffer::new(2);
        buf.record(0.0, TransitionId::from_index(0));
        buf.record(1.0, TransitionId::from_index(1));
        buf.record(2.0, TransitionId::from_index(0));
        assert_eq!(buf.dropped, 1);
        let events = buf.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].time, 1.0);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut buf = TraceBuffer::new(0);
        buf.record(0.5, TransitionId::from_index(3));
        assert_eq!(buf.dropped, 1);
        assert!(buf.into_events().is_empty());
    }
}
