//! Structural lints: cheap sanity checks run before simulating.

use crate::ids::TransitionId;
use crate::net::Net;
use std::fmt;

/// One structural finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A place is connected to no transition at all.
    IsolatedPlace {
        /// Place name.
        place: String,
    },
    /// An immediate transition with no input arcs and no guard would fire
    /// forever at t = 0 (guaranteed livelock).
    UnguardedImmediateSource {
        /// Transition name.
        transition: String,
    },
    /// Two immediate transitions share an input place but have different
    /// priorities — legal and well-defined, but worth confirming the
    /// intent (the lower-priority one can starve).
    PriorityShadowing {
        /// The higher-priority transition.
        winner: String,
        /// The potentially starved transition.
        loser: String,
    },
    /// A timed transition has a guard but no input arcs: it can only be
    /// paced by its guard, which is a common modeling mistake (the clock
    /// restarts at every marking change under RaceEnable).
    GuardOnlyTimedSource {
        /// Transition name.
        transition: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::IsolatedPlace { place } => write!(f, "place {place:?} is isolated"),
            Lint::UnguardedImmediateSource { transition } => write!(
                f,
                "immediate transition {transition:?} has no inputs and no guard: it will livelock"
            ),
            Lint::PriorityShadowing { winner, loser } => write!(
                f,
                "immediate {loser:?} shares an input place with higher-priority {winner:?} and may starve"
            ),
            Lint::GuardOnlyTimedSource { transition } => write!(
                f,
                "timed transition {transition:?} is paced only by its guard; its clock resets at every relevant marking change"
            ),
        }
    }
}

/// Run all lints over a net.
pub fn lint(net: &Net) -> Vec<Lint> {
    let mut lints = Vec::new();

    // Isolated places.
    let mut touched = vec![false; net.num_places()];
    for tid in net.transition_ids() {
        let t = net.transition(tid);
        for a in &t.inputs {
            touched[a.place.index()] = true;
        }
        for a in &t.outputs {
            touched[a.place.index()] = true;
        }
        for a in &t.inhibitors {
            touched[a.place.index()] = true;
        }
        if let Some(g) = &t.guard {
            let mut ps = Vec::new();
            g.collect_places(&mut ps);
            for p in ps {
                touched[p.index()] = true;
            }
        }
    }
    for (i, &t) in touched.iter().enumerate() {
        if !t {
            lints.push(Lint::IsolatedPlace {
                place: net.place(crate::ids::PlaceId::from_index(i)).name.clone(),
            });
        }
    }

    // Immediate sources and guard-only timed sources.
    for tid in net.transition_ids() {
        let t = net.transition(tid);
        if t.inputs.is_empty() && t.inhibitors.is_empty() && t.guard.is_none() {
            if t.timing.is_immediate() {
                lints.push(Lint::UnguardedImmediateSource {
                    transition: t.name.clone(),
                });
            }
        } else if !t.timing.is_immediate() && t.inputs.is_empty() && t.guard.is_some() {
            lints.push(Lint::GuardOnlyTimedSource {
                transition: t.name.clone(),
            });
        }
    }

    // Priority shadowing between immediates sharing an input place.
    let ids: Vec<TransitionId> = net.transition_ids().collect();
    for (i, &a) in ids.iter().enumerate() {
        let ta = net.transition(a);
        let Some(pa) = ta.timing.priority() else {
            continue;
        };
        for &b in &ids[i + 1..] {
            let tb = net.transition(b);
            let Some(pb) = tb.timing.priority() else {
                continue;
            };
            if pa == pb {
                continue;
            }
            let shares_place = ta
                .inputs
                .iter()
                .any(|x| tb.inputs.iter().any(|y| y.place == x.place));
            if shares_place {
                let (winner, loser) = if pa > pb { (ta, tb) } else { (tb, ta) };
                lints.push(Lint::PriorityShadowing {
                    winner: winner.name.clone(),
                    loser: loser.name.clone(),
                });
            }
        }
    }

    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::expr::Expr;
    use crate::timing::Timing;

    #[test]
    fn isolated_place_flagged() {
        let mut b = NetBuilder::new("iso");
        let p = b.place("used").tokens(1).build();
        b.place("orphan").build();
        b.transition("t", Timing::exponential(1.0))
            .input(p, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        let lints = lint(&net);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::IsolatedPlace { place } if place == "orphan")));
    }

    #[test]
    fn guard_reference_counts_as_touched() {
        let mut b = NetBuilder::new("guardref");
        let p = b.place("p").tokens(1).build();
        let watched = b.place("watched").build();
        b.transition("t", Timing::exponential(1.0))
            .input(p, 1)
            .output(p, 1)
            .guard(Expr::count(watched).eq_c(0))
            .build();
        let net = b.build().unwrap();
        assert!(lint(&net)
            .iter()
            .all(|l| !matches!(l, Lint::IsolatedPlace { .. })));
    }

    #[test]
    fn unguarded_immediate_source_flagged() {
        let mut b = NetBuilder::new("src");
        let q = b.place("q").build();
        b.transition("bad", Timing::immediate())
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        assert!(lint(&net).iter().any(
            |l| matches!(l, Lint::UnguardedImmediateSource { transition } if transition == "bad")
        ));
    }

    #[test]
    fn priority_shadowing_flagged() {
        let mut b = NetBuilder::new("shadow");
        let p = b.place("p").tokens(1).build();
        b.transition("hi", Timing::immediate_pri(2))
            .input(p, 1)
            .build();
        b.transition("lo", Timing::immediate_pri(1))
            .input(p, 1)
            .build();
        let net = b.build().unwrap();
        assert!(lint(&net).iter().any(|l| matches!(
            l,
            Lint::PriorityShadowing { winner, loser } if winner == "hi" && loser == "lo"
        )));
    }

    #[test]
    fn guard_only_timed_source_flagged() {
        let mut b = NetBuilder::new("guardpaced");
        let gate = b.place("gate").tokens(1).build();
        let q = b.place("q").build();
        b.transition("gen", Timing::deterministic(1.0))
            .output(q, 1)
            .guard(Expr::count(gate).gt_c(0))
            .build();
        b.transition("drain", Timing::exponential(1.0))
            .input(q, 1)
            .build();
        let net = b.build().unwrap();
        assert!(lint(&net).iter().any(
            |l| matches!(l, Lint::GuardOnlyTimedSource { transition } if transition == "gen")
        ));
    }

    #[test]
    fn clean_net_produces_no_lints() {
        let mut b = NetBuilder::new("clean");
        let p = b.place("p").tokens(1).build();
        let q = b.place("q").build();
        b.transition("pq", Timing::exponential(1.0))
            .input(p, 1)
            .output(q, 1)
            .build();
        b.transition("qp", Timing::exponential(1.0))
            .input(q, 1)
            .output(p, 1)
            .build();
        let net = b.build().unwrap();
        assert!(lint(&net).is_empty());
    }
}
