//! Differential tests for the batched SoA engine: `BatchSimulator` must
//! reproduce the scalar engine (`Simulator::run`) **bit for bit** — per
//! replication, at every batch width — across every feature the engine
//! supports: uncolored and colored nets, guards, inhibitors, priorities and
//! weights, all three memory policies, traces, warm-up windows, and lanes
//! that retire mid-batch (per-lane horizons and per-lane errors).
//!
//! Lanes never interact and each consumes its RNG exactly as the scalar
//! engine does, so any divergence is a real indexing/striping bug in the
//! batch machinery, not floating-point noise — hence `assert_eq` on `f64`
//! values, not tolerances.

use petri_core::arc::ColorExpr;
use petri_core::prelude::*;
use petri_core::sim::RewardSpec;
use proptest::prelude::*;

/// The batch widths every net is checked at (1 = degenerate batch, primes
/// and non-divisors of the seed count to exercise ragged tail chunks).
const WIDTHS: [usize; 5] = [1, 2, 3, 8, 33];
const SEEDS: std::ops::Range<u64> = 0..33;

fn assert_same_output(a: &SimOutput, b: &SimOutput, label: &str, seed: u64, width: usize) {
    let ctx = format!("{label} seed {seed} width {width}");
    assert_eq!(
        a.firing_counts, b.firing_counts,
        "{ctx}: firing counts diverged"
    );
    assert_eq!(a.rewards, b.rewards, "{ctx}: rewards diverged");
    assert_eq!(
        a.final_marking, b.final_marking,
        "{ctx}: final markings diverged"
    );
    assert_eq!(a.trace, b.trace, "{ctx}: traces diverged");
    assert_eq!(a.trace_dropped, b.trace_dropped, "{ctx}: trace_dropped");
    assert_eq!(a.observed_time, b.observed_time, "{ctx}: observed_time");
}

/// Run the scalar engine once per seed, then every batch width over the
/// same seeds — on both the interpreter's batch engine and the default
/// (lowered) path — and require bit-identical per-replication results.
fn assert_batch_identical(sim: &Simulator<'_>, label: &str) {
    let seeds: Vec<u64> = SEEDS.collect();
    let scalar: Vec<_> = seeds.iter().map(|&s| sim.run(s)).collect();
    let batcher = BatchSimulator::new(sim);
    for &w in &WIDTHS {
        for (ci, chunk) in seeds.chunks(w).enumerate() {
            for batched in [batcher.run(chunk), batcher.run_interp(chunk)] {
                for (j, res) in batched.iter().enumerate() {
                    let i = ci * w + j;
                    match (&scalar[i], res) {
                        (Ok(a), Ok(b)) => assert_same_output(a, b, label, seeds[i], w),
                        (Err(a), Err(b)) => {
                            assert_eq!(a, b, "{label} seed {} width {w}: errors diverged", seeds[i])
                        }
                        (a, b) => panic!(
                            "{label} seed {} width {w}: scalar {a:?} vs batched {b:?}",
                            seeds[i]
                        ),
                    }
                }
            }
        }
    }
}

// --- the seven differential nets (same shapes as tests/differential.rs) ---

fn mm1_net() -> Net {
    let mut b = NetBuilder::new("mm1");
    let q = b.place("q").build();
    b.transition("arrive", Timing::exponential(1.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(2.0))
        .input(q, 1)
        .build();
    b.build().unwrap()
}

fn mm1_rewards(net: &Net, sim: &mut Simulator<'_>) {
    sim.reward_place(net.place_by_name("q").unwrap());
    sim.reward(RewardSpec::Throughput(
        net.transition_by_name("arrive").unwrap(),
    ))
    .unwrap();
}

fn dvs_net() -> Net {
    let dvs1 = Color(1);
    let dvs2 = Color(2);
    let dvs3 = Color(3);
    let mut b = NetBuilder::new("dvs");
    let buffer = b.place("Buffer").build();
    let stage = b.place("Stage").build();
    let idle = b.place("Idle").tokens(1).build();
    let slept = b.place("Slept").build();
    let done = b.place("Done").build();
    b.transition("gen", Timing::exponential(0.8))
        .output_colored(
            buffer,
            1,
            ColorExpr::Choice(vec![(dvs1, 0.5), (dvs2, 0.3), (dvs3, 0.2)]),
        )
        .build();
    b.transition("dispatch", Timing::immediate())
        .input(buffer, 1)
        .output_colored(stage, 1, ColorExpr::Transfer { arc_index: 0 })
        .build();
    b.transition("exec1", Timing::exponential(10.0))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs1))
        .output(done, 1)
        .build();
    b.transition("exec2", Timing::exponential(5.0))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs2))
        .output(done, 1)
        .build();
    b.transition("exec3", Timing::exponential(2.5))
        .input_filtered(stage, 1, ColorFilter::Eq(dvs3))
        .output(done, 1)
        .build();
    b.transition("sleep", Timing::deterministic(0.7))
        .input(idle, 1)
        .output(slept, 1)
        .inhibitor(stage, 1)
        .guard(Expr::count(buffer).eq_c(0))
        .build();
    b.transition("wake", Timing::exponential(1.0))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    b.transition("collect", Timing::deterministic(2.0))
        .input(done, 1)
        .guard(Expr::count(done).gt_c(0))
        .build();
    b.build().unwrap()
}

fn dvs_rewards(net: &Net, sim: &mut Simulator<'_>) {
    sim.reward_place(net.place_by_name("Buffer").unwrap());
    sim.reward_predicate(Expr::count_color(net.place_by_name("Stage").unwrap(), Color(1)).gt_c(0))
        .unwrap();
}

fn memory_policy_net(policy: MemoryPolicy) -> Net {
    let mut b = NetBuilder::new("memory");
    let idle = b.place("idle").tokens(1).build();
    let buf = b.place("buf").build();
    let slept = b.place("slept").build();
    b.transition("arrive", Timing::exponential(1.4))
        .output(buf, 1)
        .build();
    b.transition("serve", Timing::exponential(6.0))
        .input(buf, 1)
        .build();
    b.transition("sleep", Timing::uniform(0.3, 1.1))
        .input(idle, 1)
        .output(slept, 1)
        .guard(Expr::count(buf).eq_c(0))
        .memory(policy)
        .build();
    b.transition("wake", Timing::erlang(3, 9.0))
        .input(slept, 1)
        .output(idle, 1)
        .build();
    b.build().unwrap()
}

fn memory_rewards(net: &Net, sim: &mut Simulator<'_>) {
    sim.reward_place(net.place_by_name("slept").unwrap());
}

fn conflicts_net() -> Net {
    let mut b = NetBuilder::new("conflicts");
    let src = b.place("src").build();
    let a = b.place("a").build();
    let z = b.place("z").build();
    let gate = b.place("gate").tokens(1).build();
    b.transition("gen", Timing::exponential(3.0))
        .output(src, 1)
        .build();
    b.transition(
        "hi",
        Timing::Immediate {
            priority: 2,
            weight: 1.0,
        },
    )
    .input(src, 1)
    .output(a, 1)
    .inhibitor(a, 4)
    .build();
    b.transition(
        "lo1",
        Timing::Immediate {
            priority: 1,
            weight: 1.0,
        },
    )
    .input(src, 1)
    .output(z, 1)
    .build();
    b.transition(
        "lo2",
        Timing::Immediate {
            priority: 1,
            weight: 2.5,
        },
    )
    .input(src, 1)
    .output(z, 2)
    .build();
    b.transition("drain_a", Timing::deterministic(0.9))
        .input(a, 1)
        .guard(Expr::count(gate).gt_c(0))
        .build();
    b.transition("drain_z", Timing::exponential(4.0))
        .input(z, 1)
        .build();
    b.transition("flap", Timing::uniform(0.2, 0.6))
        .input(gate, 1)
        .output(gate, 1)
        .build();
    b.build().unwrap()
}

fn conflicts_rewards(net: &Net, sim: &mut Simulator<'_>) {
    sim.reward_place(net.place_by_name("a").unwrap());
    sim.reward_place(net.place_by_name("z").unwrap());
}

fn tandem_net() -> Net {
    let mut b = NetBuilder::new("tandem");
    let p0 = b.place("p0").build();
    let p1 = b.place("p1").build();
    let p2 = b.place("p2").build();
    b.transition("source", Timing::exponential(2.0))
        .output(p0, 1)
        .build();
    b.transition("batch", Timing::deterministic(0.4))
        .input(p0, 3)
        .output(p1, 3)
        .build();
    b.transition("step", Timing::exponential(3.0))
        .input(p1, 1)
        .output(p2, 1)
        .build();
    b.transition("sink", Timing::exponential(2.5))
        .input(p2, 1)
        .build();
    b.build().unwrap()
}

fn tandem_rewards(net: &Net, sim: &mut Simulator<'_>) {
    sim.reward_place(net.place_by_name("p0").unwrap());
    sim.reward_place(net.place_by_name("p1").unwrap());
}

// --- per-net batch-vs-scalar identity at every width ---

#[test]
fn batch_differential_mm1() {
    let net = mm1_net();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(500.0).with_trace(64));
    mm1_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "mm1");
}

#[test]
fn batch_differential_colored_dvs() {
    let net = dvs_net();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0).with_warmup(20.0));
    dvs_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "colored-dvs");
}

#[test]
fn batch_differential_race_enable() {
    let net = memory_policy_net(MemoryPolicy::RaceEnable);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
    memory_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "race-enable");
}

#[test]
fn batch_differential_race_age() {
    let net = memory_policy_net(MemoryPolicy::RaceAge);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
    memory_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "race-age");
}

#[test]
fn batch_differential_resample() {
    let net = memory_policy_net(MemoryPolicy::Resample);
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
    memory_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "resample");
}

#[test]
fn batch_differential_immediate_conflicts() {
    let net = conflicts_net();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(200.0));
    conflicts_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "immediate-conflicts");
}

#[test]
fn batch_differential_tandem_batching() {
    let net = tandem_net();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
    tandem_rewards(&net, &mut sim);
    assert_batch_identical(&sim, "tandem-batching");
}

/// A 40-stage tandem line: with more than 32 transitions the batch engine
/// falls back from the stripe-scan scheduler to the per-lane lazy-deletion
/// heaps, so this net keeps the heap path under differential coverage.
#[test]
fn batch_differential_wide_net_heap_scheduler() {
    const STAGES: usize = 40;
    let mut b = NetBuilder::new("wide-tandem");
    let places: Vec<_> = (0..STAGES)
        .map(|i| b.place(format!("p{i}")).build())
        .collect();
    b.transition("source", Timing::exponential(1.5))
        .output(places[0], 1)
        .build();
    for i in 0..STAGES - 1 {
        b.transition(format!("t{i}"), Timing::exponential(2.0 + (i % 3) as f64))
            .input(places[i], 1)
            .output(places[i + 1], 1)
            .build();
    }
    b.transition("sink", Timing::exponential(2.0))
        .input(places[STAGES - 1], 1)
        .build();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, SimConfig::for_horizon(60.0).with_trace(32));
    sim.reward_place(net.place_by_name("p0").unwrap());
    sim.reward_place(net.place_by_name("p20").unwrap());
    assert_batch_identical(&sim, "wide-tandem-heap");
}

// --- mid-batch retirement: lanes with different horizons, and lanes that
// --- error, must each match the scalar engine run to that lane's horizon.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mid_batch_retirement_is_bit_identical(
        horizons in proptest::collection::vec(0.5f64..250.0, 2..12),
        seed0 in 0u64..1_000,
    ) {
        let net = dvs_net();
        let mut sim = Simulator::new(&net, SimConfig::for_horizon(250.0).with_warmup(5.0));
        dvs_rewards(&net, &mut sim);
        let seeds: Vec<u64> = (0..horizons.len() as u64).map(|i| seed0 + i).collect();
        let batched = BatchSimulator::new(&sim).run_with_horizons(&seeds, &horizons);
        for (i, (&seed, &h)) in seeds.iter().zip(&horizons).enumerate() {
            let mut cfg = sim.config().clone();
            cfg.end_time = h;
            let mut oracle = Simulator::new(&net, cfg);
            dvs_rewards(&net, &mut oracle);
            let scalar = oracle.run(seed).unwrap();
            let b = batched[i].as_ref().unwrap();
            prop_assert_eq!(&b.firing_counts, &scalar.firing_counts);
            prop_assert_eq!(&b.rewards, &scalar.rewards);
            prop_assert_eq!(&b.final_marking, &scalar.final_marking);
            prop_assert_eq!(b.observed_time, scalar.observed_time);
        }
    }

    #[test]
    fn mixed_horizons_under_memory_policies(
        horizons in proptest::collection::vec(1.0f64..300.0, 2..9),
        seed0 in 0u64..1_000,
    ) {
        for policy in [MemoryPolicy::RaceEnable, MemoryPolicy::RaceAge, MemoryPolicy::Resample] {
            let net = memory_policy_net(policy);
            let mut sim = Simulator::new(&net, SimConfig::for_horizon(300.0));
            memory_rewards(&net, &mut sim);
            let seeds: Vec<u64> = (0..horizons.len() as u64).map(|i| seed0 + 31 * i).collect();
            let batched = BatchSimulator::new(&sim).run_with_horizons(&seeds, &horizons);
            for (i, (&seed, &h)) in seeds.iter().zip(&horizons).enumerate() {
                let mut cfg = sim.config().clone();
                cfg.end_time = h;
                let mut oracle = Simulator::new(&net, cfg);
                memory_rewards(&net, &mut oracle);
                let scalar = oracle.run(seed).unwrap();
                let b = batched[i].as_ref().unwrap();
                prop_assert_eq!(&b.firing_counts, &scalar.firing_counts);
                prop_assert_eq!(&b.rewards, &scalar.rewards);
                prop_assert_eq!(&b.final_marking, &scalar.final_marking);
            }
        }
    }
}

/// A lane that trips `TokenOverflow` retires with exactly the scalar error
/// while its batchmates run to their horizons undisturbed.
#[test]
fn erroring_lanes_match_scalar_errors() {
    let mut b = NetBuilder::new("boom");
    let q = b.place("q").build();
    b.transition("gen", Timing::exponential(5.0))
        .output(q, 1)
        .build();
    b.transition("serve", Timing::exponential(1.0))
        .input(q, 1)
        .build();
    let net = b.build().unwrap();
    let mut cfg = SimConfig::for_horizon(10_000.0);
    cfg.max_tokens_per_place = 40;
    let sim = Simulator::new(&net, cfg);
    // Long lanes overflow; the 0.5 s lane finishes cleanly first.
    let seeds = [3u64, 4, 5, 6];
    let horizons = [10_000.0, 0.5, 10_000.0, 0.5];
    let batched = BatchSimulator::new(&sim).run_with_horizons(&seeds, &horizons);
    for (i, (&seed, &h)) in seeds.iter().zip(&horizons).enumerate() {
        let mut cfg = sim.config().clone();
        cfg.end_time = h;
        let oracle = Simulator::new(&net, cfg);
        match (oracle.run(seed), &batched[i]) {
            (Ok(a), Ok(b)) => assert_same_output(&a, b, "boom", seed, 4),
            (Err(a), Err(b)) => assert_eq!(&a, b, "lane {i}: errors diverged"),
            (a, b) => panic!("lane {i}: scalar {a:?} vs batched {b:?}"),
        }
    }
    // The long lanes really did overflow (the test is not vacuous).
    assert!(matches!(batched[0], Err(SimError::TokenOverflow { .. })));
}
