//! Error types for net construction and simulation.

use std::fmt;

/// Errors produced while building or validating a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A place name was used twice.
    DuplicatePlaceName(String),
    /// A transition name was used twice.
    DuplicateTransitionName(String),
    /// A transition's timing parameters are invalid (message from
    /// [`crate::timing::Timing::validate`]).
    InvalidTiming {
        /// Offending transition name.
        transition: String,
        /// Problem description.
        message: String,
    },
    /// An arc has multiplicity (or inhibitor threshold) zero.
    ZeroMultiplicity {
        /// Offending transition name.
        transition: String,
    },
    /// A `ColorExpr::Transfer` refers to an input arc that does not exist.
    BadTransferIndex {
        /// Offending transition name.
        transition: String,
        /// The out-of-range index.
        index: usize,
        /// Number of input arcs actually present.
        num_inputs: usize,
    },
    /// A `ColorExpr::Choice` has no entries or a non-positive total weight.
    BadChoice {
        /// Offending transition name.
        transition: String,
    },
    /// A guard expression is not boolean-typed.
    IllTypedGuard {
        /// Offending transition name.
        transition: String,
    },
    /// A guard references a place index outside the net.
    GuardPlaceOutOfRange {
        /// Offending transition name.
        transition: String,
    },
    /// The reserved color `u32::MAX` was used (it is the canonical-key
    /// sentinel).
    ReservedColor {
        /// Where it was used.
        context: String,
    },
    /// The net has no transitions.
    NoTransitions,
    /// A transition has two input (or two inhibitor) arcs on the same place.
    ///
    /// Enabling tests count tokens per place; two consuming arcs on one
    /// place would double-count. Use a single arc with a higher
    /// multiplicity instead.
    DuplicateArcPlace {
        /// Offending transition name.
        transition: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicatePlaceName(n) => write!(f, "duplicate place name: {n:?}"),
            BuildError::DuplicateTransitionName(n) => {
                write!(f, "duplicate transition name: {n:?}")
            }
            BuildError::InvalidTiming {
                transition,
                message,
            } => write!(f, "transition {transition:?}: {message}"),
            BuildError::ZeroMultiplicity { transition } => {
                write!(f, "transition {transition:?}: arc multiplicity must be >= 1")
            }
            BuildError::BadTransferIndex {
                transition,
                index,
                num_inputs,
            } => write!(
                f,
                "transition {transition:?}: Transfer arc_index {index} out of range ({num_inputs} input arcs)"
            ),
            BuildError::BadChoice { transition } => write!(
                f,
                "transition {transition:?}: Choice color expression needs entries with positive total weight"
            ),
            BuildError::IllTypedGuard { transition } => {
                write!(f, "transition {transition:?}: guard is not boolean-typed")
            }
            BuildError::GuardPlaceOutOfRange { transition } => {
                write!(f, "transition {transition:?}: guard references unknown place")
            }
            BuildError::ReservedColor { context } => {
                write!(f, "{context}: color u32::MAX is reserved")
            }
            BuildError::NoTransitions => write!(f, "net has no transitions"),
            BuildError::DuplicateArcPlace { transition } => write!(
                f,
                "transition {transition:?}: two input/inhibitor arcs on the same place; merge them into one arc with higher multiplicity"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The vanishing-marking loop fired more immediates than the configured
    /// bound without time advancing — the net has an immediate-transition
    /// livelock (e.g. two unguarded immediates shuttling a token).
    ImmediateLivelock {
        /// Simulated time at which the livelock was detected.
        time: f64,
        /// The configured bound that was exceeded.
        limit: u64,
    },
    /// A place exceeded the configured global token bound — the net is
    /// (practically) unbounded, e.g. an open generator whose consumer
    /// deadlocked.
    TokenOverflow {
        /// Index of the offending place.
        place: usize,
        /// Simulated time of the overflow.
        time: f64,
        /// The configured bound that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ImmediateLivelock { time, limit } => write!(
                f,
                "immediate-transition livelock at t={time}: more than {limit} immediate firings without time advancing"
            ),
            SimError::TokenOverflow { place, time, limit } => write!(
                f,
                "place P{place} exceeded {limit} tokens at t={time}; net appears unbounded"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::DuplicatePlaceName("Idle".into());
        assert!(e.to_string().contains("Idle"));
        let e = BuildError::BadTransferIndex {
            transition: "T1".into(),
            index: 3,
            num_inputs: 1,
        };
        assert!(e.to_string().contains('3'));
        let e = SimError::ImmediateLivelock {
            time: 1.5,
            limit: 100,
        };
        assert!(e.to_string().contains("1.5"));
        let e = SimError::TokenOverflow {
            place: 2,
            time: 0.0,
            limit: 10,
        };
        assert!(e.to_string().contains("P2"));
    }

    #[test]
    fn errors_are_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BuildError::NoTransitions);
        takes_err(&SimError::ImmediateLivelock {
            time: 0.0,
            limit: 1,
        });
    }
}
