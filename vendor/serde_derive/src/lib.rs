//! Offline stand-in for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! (no code actually serializes anything in the offline build), so emitting
//! no impls keeps every type compiling without pulling in the real serde.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
