//! In-process overlap for I/O-bound work, without an async runtime.
//!
//! The simulation slots this workspace schedules are CPU-bound, so
//! [`crate::exec::InProcessBackend`] sizes its pool by core count. Driving
//! *sockets* is different: a task that spends its life blocked in
//! `read(2)` costs no CPU, and the right concurrency is "one per in-flight
//! I/O", not "one per core". The offline vendor tree has no tokio (and no
//! libc for a real `poll(2)`), so this module provides the two std-only
//! pieces the remote subsystem needs:
//!
//! * [`AsyncBackend`] — an [`ExecBackend`] (and a plain [`overlap`]
//!   combinator) that oversubscribes OS threads up to an explicit
//!   concurrency budget. Blocked threads overlap for free; the claim/fold
//!   discipline is the shared scheduling core, so results stay in
//!   flat-index order and **byte-identical** to every other backend.
//! * [`probe_live`] — poll-style readiness over a **nonblocking** socket:
//!   a zero-copy `peek` that classifies a peer as alive (no data yet /
//!   data pending) or dead (EOF, reset) without consuming stream bytes.
//!   [`crate::remote::RemoteBackend`] uses it as its connection heartbeat:
//!   peers are probed after connect and before every chunk dispatch, so a
//!   peer that died while idle is detected *before* work is committed to
//!   it rather than by a mid-chunk write failure.
//!
//! [`overlap`]: AsyncBackend::overlap

use crate::exec::{ExecBackend, ExecError, InProcessBackend, PortableJob, TaskManifest};
use crate::grid::ProgressFn;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An executor for I/O-bound jobs: up to `concurrency` slots in flight at
/// once on oversubscribed OS threads (deliberately *not* clamped to the
/// core count — a slot blocked on a socket holds no core).
#[derive(Debug, Clone, Copy)]
pub struct AsyncBackend {
    /// Maximum slots in flight at once.
    pub concurrency: usize,
}

impl AsyncBackend {
    /// A backend with the given in-flight budget (clamped to ≥ 1).
    pub fn new(concurrency: usize) -> Self {
        AsyncBackend {
            concurrency: concurrency.max(1),
        }
    }

    /// Run `tasks` with at most `self.concurrency` in flight, returning
    /// their outputs in task order. This is the primitive behind the
    /// `ExecBackend` impl, exposed directly for I/O chores that are not
    /// portable jobs — e.g. [`crate::remote::RemoteBackend`] establishing
    /// its peer connections concurrently.
    pub fn overlap<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let total = tasks.len();
        if total == 0 {
            return Vec::new();
        }
        let threads = self.concurrency.min(total);
        if threads == 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let task = tasks[i]
                        .lock()
                        .expect("task cell never poisoned")
                        .take()
                        .expect("each task claimed once");
                    let out = task();
                    *slots[i].lock().expect("slot never poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot never poisoned")
                    .expect("every task ran")
            })
            .collect()
    }
}

impl ExecBackend for AsyncBackend {
    fn run_segments(
        &self,
        job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        // Same claim order and fold as the in-process pool — only the
        // thread budget differs (I/O in flight, not cores).
        InProcessBackend {
            threads: self.concurrency,
            batch: 1,
        }
        .run_segments(job, manifest, progress)
    }

    fn label(&self) -> String {
        format!("async(concurrency={})", self.concurrency)
    }
}

/// Poll-style liveness probe of a connected peer, without consuming stream
/// data: flip the socket to nonblocking, `peek` one byte, flip back.
///
/// * `WouldBlock` — peer idle but connected: **alive**;
/// * `Ok(n > 0)` — response bytes already queued: **alive**;
/// * `Ok(0)` — orderly shutdown (EOF): **dead**;
/// * any other error (reset, aborted): **dead**.
///
/// Interrupted probes retry; a socket whose mode cannot be restored is
/// reported dead (its blocking reads would spin).
pub fn probe_live(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let verdict = loop {
        let mut byte = [0u8; 1];
        break match stream.peek(&mut byte) {
            Ok(0) => false,
            Ok(_) => true,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => false,
        };
    };
    stream.set_nonblocking(false).is_ok() && verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn overlap_preserves_task_order() {
        let out = AsyncBackend::new(4).overlap(
            (0..32)
                .map(|i| {
                    move || {
                        if i % 3 == 0 {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        i * 10
                    }
                })
                .collect(),
        );
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn overlap_actually_overlaps_blocking_tasks() {
        // 8 tasks that each sleep 30 ms: serially 240 ms, with a budget of
        // 8 they finish in roughly one sleep.
        let t0 = std::time::Instant::now();
        let out = AsyncBackend::new(8).overlap(
            (0..8)
                .map(|i| {
                    move || {
                        std::thread::sleep(Duration::from_millis(30));
                        i
                    }
                })
                .collect(),
        );
        assert_eq!(out.len(), 8);
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "no overlap: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn overlap_caps_in_flight_tasks() {
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let backend = AsyncBackend::new(3);
        backend.overlap(
            (0..16)
                .map(|_| {
                    let in_flight = &in_flight;
                    let peak = &peak;
                    move || {
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(2));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                })
                .collect(),
        );
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn probe_classifies_live_and_dead_peers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        // Connected and idle: alive from both ends.
        assert!(probe_live(&client));
        assert!(probe_live(&server));
        // Peer hangs up: EOF → dead (may need a beat to propagate).
        drop(server);
        let dead = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(2));
            !probe_live(&client)
        });
        assert!(dead, "closed peer still probes alive");
    }

    #[test]
    fn probe_leaves_stream_data_intact() {
        use std::io::{Read, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.write_all(b"xyz").unwrap();
        server.flush().unwrap();
        // Wait until the bytes are visible, probing as we go.
        let mut seen = false;
        for _ in 0..100 {
            if probe_live(&client) {
                seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(seen);
        let mut buf = [0u8; 3];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"xyz");
    }

    #[test]
    fn async_backend_matches_in_process_bytes() {
        use crate::exec::tests::MulJob;
        use crate::grid::Segment;
        let job = MulJob { factor: 3 };
        let segments = vec![
            Segment {
                point: 0,
                base_rep: 0,
                count: 3,
            },
            Segment {
                point: 1,
                base_rep: 0,
                count: 5,
            },
        ];
        let m = TaskManifest::for_job(&job, segments, &|p, r| (p as u64) << 8 | r);
        let base = InProcessBackend::new(1)
            .run_segments(&job, &m, None)
            .unwrap();
        let over = AsyncBackend::new(16).run_segments(&job, &m, None).unwrap();
        assert_eq!(base, over);
        assert!(AsyncBackend::new(16).label().contains("async"));
    }
}
