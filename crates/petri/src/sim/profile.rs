//! Per-transition engine profiler for the lowered engine.
//!
//! Armed by `REPRO_PROFILE=1` (or `on`/`true`), the lowered engine wraps
//! every fire-section execution in a monotonic-clock measurement and, when
//! a lane retires, folds its per-transition firing counts and attributed
//! nanoseconds into this process-global table keyed by transition name.
//! Disarmed (the default) the hot loop takes the branch-predicted
//! `profile_on == false` path and never touches a clock.
//!
//! The profiler is **observably inert**: it reads wall time and counters
//! the engine already maintains, never the RNG or any simulation state, so
//! armed and disarmed runs produce byte-identical artifacts (asserted by
//! the CI `--profile` smoke). Attributed time is the fire-section body
//! only — scheduling, rechecks and reward integration are deliberately
//! outside the measurement so the table answers "which transition's firing
//! logic is hot", not "where does all wall time go".

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Whether `REPRO_PROFILE` arms the profiler for this process (computed
/// once; workers inherit the variable through the environment).
pub fn armed() -> bool {
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| {
        matches!(
            std::env::var("REPRO_PROFILE").as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        )
    })
}

/// One transition's aggregated profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Transition name (the net's, not an index — stable across nets
    /// built the same way, which is what makes re-run tables comparable).
    pub transition: String,
    /// Total firings attributed to this transition.
    pub firings: u64,
    /// Total nanoseconds spent in this transition's fire section.
    pub ns: u64,
}

fn table() -> &'static Mutex<BTreeMap<String, (u64, u64)>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, (u64, u64)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fold one retired lane's counts into the global table. Zero-work rows
/// are skipped so nets with many never-enabled transitions stay readable.
pub fn record(transition: &str, firings: u64, ns: u64) {
    if firings == 0 && ns == 0 {
        return;
    }
    let mut t = table().lock().expect("profile table poisoned");
    let e = t.entry(transition.to_string()).or_insert((0, 0));
    e.0 += firings;
    e.1 += ns;
}

/// Snapshot the table, sorted by attributed time descending (name
/// ascending on ties, for deterministic rendering).
pub fn snapshot() -> Vec<ProfileRow> {
    let t = table().lock().expect("profile table poisoned");
    let mut rows: Vec<ProfileRow> = t
        .iter()
        .map(|(name, &(firings, ns))| ProfileRow {
            transition: name.clone(),
            firings,
            ns,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ns.cmp(&a.ns)
            .then_with(|| a.transition.cmp(&b.transition))
    });
    rows
}

/// Clear the table (tests; also lets one process profile two phases).
pub fn reset() {
    table().lock().expect("profile table poisoned").clear();
}

/// Render a snapshot as an aligned text table.
pub fn render_table(rows: &[ProfileRow]) -> String {
    if rows.is_empty() {
        return "engine profile: no transitions fired\n".to_string();
    }
    let name_w = rows
        .iter()
        .map(|r| r.transition.len())
        .max()
        .unwrap_or(0)
        .max("transition".len());
    let mut out = String::new();
    out.push_str(&format!(
        "{:name_w$}  {:>12}  {:>14}  {:>10}\n",
        "transition", "firings", "total_ns", "ns/firing"
    ));
    for r in rows {
        let per = r.ns.checked_div(r.firings).unwrap_or(0);
        out.push_str(&format!(
            "{:name_w$}  {:>12}  {:>14}  {:>10}\n",
            r.transition, r.firings, r.ns, per
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_aggregates_and_snapshot_sorts_by_time() {
        reset();
        record("serve", 10, 500);
        record("arrive", 10, 900);
        record("serve", 5, 100);
        record("idle", 0, 0); // skipped
        let rows = snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].transition, "arrive");
        assert_eq!(rows[0].ns, 900);
        assert_eq!(rows[1].transition, "serve");
        assert_eq!((rows[1].firings, rows[1].ns), (15, 600));
        reset();
    }

    #[test]
    fn table_renders_header_and_per_firing_column() {
        let rows = vec![ProfileRow {
            transition: "arrive".into(),
            firings: 4,
            ns: 100,
        }];
        let txt = render_table(&rows);
        assert!(txt.contains("transition"));
        assert!(txt.contains("ns/firing"));
        assert!(txt.contains("arrive"));
        assert!(txt.lines().nth(1).unwrap().trim_end().ends_with("25"));
        assert_eq!(render_table(&[]), "engine profile: no transitions fired\n");
    }
}
