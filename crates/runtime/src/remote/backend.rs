//! The multi-host executor backend: manifests over TCP to `--worker
//! --listen` peers.

use crate::exec::{ExecBackend, ExecError, PortableJob, TaskManifest};
use crate::grid::{ProgressFn, Segment};
use crate::remote::async_backend::{probe_live, AsyncBackend};
use crate::remote::protocol::{
    collect_results, drain_chunk, encode_manifest_request, first_undelivered, keep_lowest_error,
    ChunkSink, Drained,
};
use crate::remote::transport::{FrameTransport, TcpTransport};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicUsize;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The remote-host backend: partitions a [`TaskManifest`] across N TCP
/// peers (`<exe> --worker --listen <addr>`), streams per-slot results with
/// one drain thread per peer, and gathers in global flat-index order — so
/// the fold downstream is **byte-identical** to [`crate::exec::InProcessBackend`]
/// at any host × thread count.
///
/// **Failure semantics.** A task error travels in-band (`E` frame) and is
/// deterministic, so it is never retried; across peers the lowest global
/// flat index wins, exactly as in `Runner::try_grid` and the sharded
/// backend. A *peer death* (dropped connection, protocol violation) is
/// different: slots are seeded and pure, so the dead peer's undelivered
/// slots are re-dispatched to surviving peers — retry cannot change a
/// single output byte — up to `retry_budget` times per chunk before the
/// failure surfaces as [`ExecError::Worker`]. Peers are liveness-probed
/// (see [`probe_live`]) after connect and before every chunk dispatch, so
/// a peer that died while idle never gets work committed to it.
///
/// Connections are per-dispatch: each `run_segments` call connects (all
/// peers concurrently, via [`AsyncBackend::overlap`]), runs the manifest,
/// and drops the connections; listen-mode workers simply accept the next
/// connection. Workers therefore survive any number of dispatches —
/// adaptive stopping rounds included — until an explicit shutdown frame.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    /// Peer addresses (`host:port`).
    pub hosts: Vec<String>,
    /// Worker threads *per peer*, carried in every request frame.
    pub worker_threads: usize,
    /// Re-dispatches allowed per chunk after a peer dies mid-chunk
    /// (dispatch attempts = `retry_budget + 1`).
    pub retry_budget: usize,
    /// Per-peer connection timeout.
    pub connect_timeout: Duration,
    /// Read timeout while draining a chunk. Executing workers stream a
    /// heartbeat frame every ~500 ms, so a peer silent for this long is
    /// not "slow" — its machine vanished without FIN/RST (power loss,
    /// network partition) and its chunk must re-dispatch rather than
    /// block the gather forever. `None` disables the bound.
    pub io_timeout: Option<Duration>,
}

impl RemoteBackend {
    /// A backend over the given peers (must be non-empty), with the
    /// default retry budget of 2 re-dispatches per chunk.
    pub fn new(hosts: Vec<String>, worker_threads: usize) -> Self {
        assert!(!hosts.is_empty(), "remote backend needs at least one host");
        RemoteBackend {
            hosts,
            worker_threads: worker_threads.max(1),
            retry_budget: 2,
            connect_timeout: Duration::from_secs(10),
            io_timeout: Some(Duration::from_secs(15)),
        }
    }

    /// Override the per-chunk re-dispatch budget.
    pub fn with_retry_budget(mut self, retries: usize) -> Self {
        self.retry_budget = retries;
        self
    }

    /// Override the silent-peer read timeout (`None` disables it).
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Connect to every configured host concurrently; returns the live
    /// transports. Unreachable peers are reported on stderr and skipped —
    /// results are byte-identical however many peers survive — but zero
    /// reachable peers is an error.
    fn connect_all(&self) -> Result<Vec<TcpTransport>, ExecError> {
        let connector = AsyncBackend::new(self.hosts.len());
        let attempts: Vec<Result<TcpStream, String>> = connector.overlap(
            self.hosts
                .iter()
                .map(|host| {
                    let timeout = self.connect_timeout;
                    move || -> Result<TcpStream, String> {
                        let addr = host
                            .to_socket_addrs()
                            .map_err(|e| format!("{host}: cannot resolve: {e}"))?
                            .next()
                            .ok_or_else(|| format!("{host}: resolves to no address"))?;
                        TcpStream::connect_timeout(&addr, timeout)
                            .map_err(|e| format!("{host}: connect failed: {e}"))
                    }
                })
                .collect(),
        );
        let mut peers = Vec::with_capacity(attempts.len());
        let mut failures = Vec::new();
        for attempt in attempts {
            match attempt {
                Ok(stream) => {
                    let t = TcpTransport::new(stream);
                    if probe_live(t.stream()) {
                        // Reads are bounded because workers heartbeat;
                        // writes are bounded because a healthy worker
                        // drains its request promptly — either timeout
                        // firing means the peer is gone, and Broken
                        // re-dispatches its chunk.
                        let _ = t.set_read_timeout(self.io_timeout);
                        let _ = t.set_write_timeout(self.io_timeout);
                        peers.push(t);
                    } else {
                        failures.push(format!("{}: dead right after connect", t.peer()));
                    }
                }
                Err(msg) => failures.push(msg),
            }
        }
        for f in &failures {
            eprintln!("[remote] peer unavailable: {f}");
        }
        if peers.is_empty() {
            return Err(ExecError::Protocol(format!(
                "no reachable remote peer among {:?}: {}",
                self.hosts,
                failures.join("; ")
            )));
        }
        Ok(peers)
    }

    /// Dispatch one chunk over one peer connection and drain its
    /// responses into the shared gather state.
    fn run_chunk(
        &self,
        transport: &mut TcpTransport,
        chunk: &Pending,
        results: &[OnceLock<Vec<u8>>],
        completed: &AtomicUsize,
        grand_total: usize,
        progress: Option<&ProgressFn>,
    ) -> (Drained, Vec<bool>) {
        let slots = chunk.manifest.slots();
        let mut delivered = vec![false; slots.len()];
        let request = encode_manifest_request(self.worker_threads, &chunk.manifest);
        if let Err(e) = transport.send(&request).and_then(|_| transport.flush()) {
            return (
                Drained::Broken(format!("request write failed: {e}")),
                delivered,
            );
        }
        let outcome = drain_chunk(
            transport,
            ChunkSink {
                slots: &slots,
                global_flat: &chunk.global_flat,
                results,
                delivered: &mut delivered,
                completed,
                grand_total,
                progress,
            },
        );
        (outcome, delivered)
    }
}

/// One unit of dispatchable work: a sub-manifest plus the global flat
/// index of each of its slots (contiguous for the initial split; possibly
/// gappy for a re-dispatched remainder).
struct Pending {
    manifest: TaskManifest,
    global_flat: Vec<usize>,
    /// Dispatch attempts already burnt on this work.
    retries: usize,
}

impl Pending {
    /// The remainder of `self` after a partial drain: every undelivered
    /// slot, re-packed into merged segments. `None` if everything landed.
    fn remainder(&self, delivered: &[bool]) -> Option<Pending> {
        let slots = self.manifest.slots();
        let mut segments: Vec<Segment> = Vec::new();
        let mut seeds = Vec::new();
        let mut global_flat = Vec::new();
        for (local, &(point, rep, seed)) in slots.iter().enumerate() {
            if delivered[local] {
                continue;
            }
            match segments.last_mut() {
                Some(seg) if seg.point == point && seg.base_rep + seg.count as u64 == rep => {
                    seg.count += 1;
                }
                _ => segments.push(Segment {
                    point,
                    base_rep: rep,
                    count: 1,
                }),
            }
            seeds.push(seed);
            global_flat.push(self.global_flat[local]);
        }
        if seeds.is_empty() {
            return None;
        }
        Some(Pending {
            manifest: TaskManifest {
                kind: self.manifest.kind.clone(),
                payload: self.manifest.payload.clone(),
                segments,
                seeds,
            },
            global_flat,
            retries: self.retries,
        })
    }
}

/// Gather state shared by the per-peer drain threads.
struct GatherState {
    queue: Vec<Pending>,
    /// Chunks currently being driven by some peer.
    in_flight: usize,
    /// Error candidates; the lowest global flat index wins at the end.
    errors: Vec<ExecError>,
}

struct Gather {
    state: Mutex<GatherState>,
    work: Condvar,
}

impl Gather {
    /// Block until a chunk is available or all work is finished; `None`
    /// means the gather is complete (or failed) and the peer may retire.
    fn claim(&self) -> Option<Pending> {
        let mut st = self.state.lock().expect("gather mutex never poisoned");
        loop {
            if let Some(chunk) = st.queue.pop() {
                st.in_flight += 1;
                return Some(chunk);
            }
            if st.in_flight == 0 {
                self.work.notify_all();
                return None;
            }
            st = self.work.wait(st).expect("gather mutex never poisoned");
        }
    }

    /// Mark a claimed chunk finished, optionally pushing follow-up work
    /// (a retry remainder) and/or an error candidate.
    fn settle(&self, requeue: Option<Pending>, error: Option<ExecError>) {
        let mut st = self.state.lock().expect("gather mutex never poisoned");
        st.in_flight -= 1;
        if let Some(chunk) = requeue {
            st.queue.push(chunk);
        }
        if let Some(e) = error {
            st.errors.push(e);
        }
        self.work.notify_all();
    }
}

impl ExecBackend for RemoteBackend {
    fn run_segments(
        &self,
        _job: &dyn PortableJob,
        manifest: &TaskManifest,
        progress: Option<&ProgressFn>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        manifest.validate()?;
        let total = manifest.total_slots();
        if total == 0 {
            return Ok(Vec::new());
        }
        let mut peers = self.connect_all()?;
        let chunks: Vec<Pending> = manifest
            .split(peers.len())
            .into_iter()
            .map(|(start, m)| {
                let n = m.total_slots();
                Pending {
                    manifest: m,
                    global_flat: (start..start + n).collect(),
                    retries: 0,
                }
            })
            .collect();

        let results: Vec<OnceLock<Vec<u8>>> = (0..total).map(|_| OnceLock::new()).collect();
        let completed = AtomicUsize::new(0);
        let gather = Gather {
            state: Mutex::new(GatherState {
                queue: chunks,
                in_flight: 0,
                errors: Vec::new(),
            }),
            work: Condvar::new(),
        };

        // One drain thread per peer. A peer claims chunks until the queue
        // drains; a peer that dies re-queues its chunk's undelivered
        // remainder (retry budget permitting) and retires, leaving the
        // remainder to the survivors. Like the sharded backend, there is
        // no cross-peer cancellation on task errors: every chunk drains,
        // so lowest-flat-index error selection stays deterministic.
        std::thread::scope(|scope| {
            for transport in peers.iter_mut() {
                let gather = &gather;
                let results = &results;
                let completed = &completed;
                scope.spawn(move || {
                    while let Some(chunk) = gather.claim() {
                        // Heartbeat: never commit work to a peer that died
                        // while idle. Not counted against the chunk's
                        // budget — it was never dispatched.
                        if !probe_live(transport.stream()) {
                            gather.settle(Some(chunk), None);
                            return;
                        }
                        let (outcome, delivered) =
                            self.run_chunk(transport, &chunk, results, completed, total, progress);
                        match outcome {
                            Drained::Complete => gather.settle(None, None),
                            Drained::TaskError(e) => gather.settle(None, Some(e)),
                            Drained::Broken(message) => {
                                let flat = first_undelivered(&chunk.global_flat, &delivered)
                                    .unwrap_or_else(|| {
                                        chunk.global_flat.first().copied().unwrap_or(0)
                                    });
                                let remainder = chunk.remainder(&delivered);
                                match remainder {
                                    Some(mut rest) if rest.retries < self.retry_budget => {
                                        eprintln!(
                                            "[remote] peer {} died mid-chunk ({message}); \
                                             re-dispatching {} slot(s) (attempt {} of {})",
                                            transport.peer(),
                                            rest.global_flat.len(),
                                            rest.retries + 2,
                                            self.retry_budget + 1,
                                        );
                                        rest.retries += 1;
                                        gather.settle(Some(rest), None);
                                    }
                                    Some(rest) => gather.settle(
                                        None,
                                        Some(ExecError::Worker {
                                            flat_index: flat,
                                            message: format!(
                                                "peer {}: {message} ({} slot(s) undelivered \
                                                 after {} dispatch attempt(s))",
                                                transport.peer(),
                                                rest.global_flat.len(),
                                                rest.retries + 1,
                                            ),
                                        }),
                                    ),
                                    // Every slot landed before the break
                                    // (e.g. the stream died after the last
                                    // R frame but before D).
                                    None => gather.settle(None, None),
                                }
                                return; // this peer is dead
                            }
                        }
                    }
                });
            }
        });

        let st = gather
            .state
            .into_inner()
            .expect("gather mutex never poisoned");
        let mut first_error: Option<ExecError> = None;
        for e in st.errors {
            keep_lowest_error(&mut first_error, e);
        }
        // Chunks stranded because every peer died.
        for chunk in st.queue {
            keep_lowest_error(
                &mut first_error,
                ExecError::Worker {
                    flat_index: chunk.global_flat.first().copied().unwrap_or(0),
                    message: format!(
                        "no surviving remote peer for {} queued slot(s) (hosts {:?})",
                        chunk.global_flat.len(),
                        self.hosts
                    ),
                },
            );
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        collect_results(results)
    }

    fn label(&self) -> String {
        format!(
            "remote(hosts={}, threads/peer={})",
            self.hosts.len(),
            self.worker_threads
        )
    }
}
