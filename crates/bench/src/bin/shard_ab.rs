//! Paired A/B of the in-process executor backend against the sharded
//! multi-process backend on the `repro fig14 --quick` workload (24-point
//! closed node sweep, 200 s horizon, one deterministic replication per
//! point).
//!
//! Three measurements:
//!
//! 1. **Byte identity** (asserted before any timing): the sharded gather at
//!    1, 2 and 4 shards must reproduce the in-process slot bytes exactly.
//! 2. **Wall clock + per-task IPC overhead** (paired adjacent blocks,
//!    median — robust on noisy shared hosts): the whole manifest through
//!    each backend. On this 1-CPU container the sharded run adds only its
//!    IPC cost (spawn + frame round-trip, amortized over 24 tasks); the
//!    binary asserts that the per-task overhead stays below
//!    [`OVERHEAD_BUDGET`] of the in-process wall clock.
//! 3. **Modeled multi-host makespan**: per-task costs are measured
//!    serially, then replayed through the sharded schedule — contiguous
//!    manifest chunks per host, greedy claim order inside each host, plus
//!    the *measured* per-worker spawn overhead — at hypothetical host
//!    counts. This is how the same manifest lands on a real cluster.
//!
//! ```text
//! cargo run --release -p bench --bin shard_ab [--pairs K]
//! ```

use des::Workload;
use sim_runtime::{Exec, PortableJob};
use std::time::Instant;
use wsn::experiments::jobs::NodeSweepJob;
use wsn::sweep::FIG14_15_PDT_GRID;

const HORIZON: f64 = 200.0; // fig14 --quick
const SEED: u64 = 0xF14;

/// Maximum tolerated per-task IPC overhead, as a fraction of the
/// in-process wall clock of the whole sweep ("a few percent").
const OVERHEAD_BUDGET: f64 = 0.04;

fn job() -> NodeSweepJob {
    NodeSweepJob {
        workload: Workload::Closed { interval: 1.0 },
        horizon: HORIZON,
        grid: FIG14_15_PDT_GRID.to_vec(),
    }
}

fn seed_of(_p: usize, r: u64) -> u64 {
    petri_core::rng::SimRng::child_seed(SEED, r)
}

/// The sibling `repro` binary doubles as the worker (shared lookup).
fn worker_cmd() -> Vec<String> {
    vec![bench::remote::sibling_repro_bin(), "--worker".into()]
}

fn run(exec: &Exec) -> Vec<Vec<Vec<u8>>> {
    let reps = vec![1u64; FIG14_15_PDT_GRID.len()];
    exec.runner()
        .run_job(&job(), &reps, &seed_of)
        .expect("fig14 sweep runs")
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|x, y| x.total_cmp(y));
    v[v.len() / 2]
}

fn main() {
    let mut pairs = 9usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pairs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => pairs = n,
                _ => {
                    eprintln!("--pairs needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }
    let tasks = FIG14_15_PDT_GRID.len();
    let in_process = Exec::in_process(1);
    let sharded = |shards: usize| Exec::sharded(1, shards).with_worker_cmd(worker_cmd());

    // Correctness first: byte-identical gathers at every shard count.
    let baseline = run(&in_process);
    for shards in [1usize, 2, 4] {
        assert_eq!(
            baseline,
            run(&sharded(shards)),
            "sharded({shards}) diverged from in-process bytes"
        );
    }
    eprintln!("byte-identity: in-process == sharded(1|2|4) on {tasks} slots");

    // Paired wall clock: in-process vs sharded(2), alternating order.
    let timed = |exec: &Exec| {
        let t0 = Instant::now();
        std::hint::black_box(run(exec));
        t0.elapsed().as_secs_f64()
    };
    let shard2 = sharded(2);
    let mut in_ms = Vec::new();
    let mut sh_ms = Vec::new();
    for p in 0..pairs {
        if p % 2 == 0 {
            in_ms.push(timed(&in_process) * 1e3);
            sh_ms.push(timed(&shard2) * 1e3);
        } else {
            sh_ms.push(timed(&shard2) * 1e3);
            in_ms.push(timed(&in_process) * 1e3);
        }
    }
    let wall_in = median(&mut in_ms);
    let wall_sh = median(&mut sh_ms);
    let per_task_overhead_ms = (wall_sh - wall_in) / tasks as f64;

    // Spawn + protocol round-trip in isolation: a 1-slot trivial manifest.
    let mut spawn_ms = Vec::new();
    for _ in 0..pairs.max(5) {
        let tiny = Exec::sharded(1, 1).with_worker_cmd(worker_cmd());
        let t0 = Instant::now();
        let out = tiny
            .runner()
            .run_job(
                &bench::shard::FailJob {
                    fail_point: 99,
                    fail_rep: 0,
                },
                &[1],
                &|_, _| 0,
            )
            .expect("trivial manifest runs");
        std::hint::black_box(out);
        spawn_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let spawn_overhead_ms = median(&mut spawn_ms);

    // Modeled multi-host makespan over serially measured per-task costs.
    let j = job();
    let mut costs = Vec::with_capacity(tasks);
    for (p, _) in FIG14_15_PDT_GRID.iter().enumerate() {
        let t0 = Instant::now();
        std::hint::black_box(j.run_slot(p, 0, seed_of(p, 0)).expect("slot runs"));
        costs.push(t0.elapsed().as_secs_f64());
    }
    // Contiguous chunks per host (the ShardedBackend split), greedy claim
    // order inside each host's worker pool, plus the measured spawn cost.
    let makespan = |hosts: usize, workers: usize| -> f64 {
        let total = costs.len();
        let mut start = 0usize;
        let mut worst = 0.0f64;
        for h in 0..hosts.min(total) {
            let size = total / hosts + usize::from(h < total % hosts);
            let chunk = &costs[start..start + size];
            start += size;
            let mut free_at = vec![0.0f64; workers.max(1)];
            for &c in chunk {
                let w = free_at
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("worker");
                free_at[w] += c;
            }
            let host_span = spawn_overhead_ms / 1e3 + free_at.iter().fold(0.0f64, |m, &t| m.max(t));
            worst = worst.max(host_span);
        }
        worst
    };

    println!("{{");
    println!(
        "  \"workload\": \"fig14 --quick: {tasks}-point closed node sweep, {HORIZON} s horizon, 1 replication/point\","
    );
    println!("  \"byte_identity\": \"in-process == sharded(1|2|4), asserted on raw slot bytes before timing\",");
    println!("  \"wall_clock\": {{");
    println!("    \"pairs\": {pairs},");
    println!("    \"in_process_ms\": {wall_in:.2},");
    println!("    \"sharded_2_ms\": {wall_sh:.2},");
    println!("    \"per_task_ipc_overhead_ms\": {per_task_overhead_ms:.4},");
    println!(
        "    \"per_task_overhead_vs_wall\": {:.4},",
        per_task_overhead_ms / wall_in
    );
    println!("    \"worker_spawn_roundtrip_ms\": {spawn_overhead_ms:.2}");
    println!("  }},");
    print!("  \"modeled_multi_host_makespan\": [");
    let single = makespan(1, 8);
    let mut first = true;
    for hosts in [1usize, 2, 4, 8] {
        let m = makespan(hosts, 8);
        if !first {
            print!(", ");
        }
        first = false;
        print!(
            "{{\"hosts\": {hosts}, \"workers_per_host\": 8, \"makespan_ms\": {:.2}, \"speedup_vs_1_host\": {:.3}}}",
            m * 1e3,
            single / m
        );
    }
    println!("],");
    println!(
        "  \"note\": \"modeled makespan replays serially measured per-task costs through the contiguous-chunk shard split + greedy claim order, plus the measured worker spawn round-trip\""
    );
    println!("}}");

    // The acceptance bound: per-task IPC overhead under a few percent of
    // the whole sweep's in-process wall clock.
    assert!(
        per_task_overhead_ms <= OVERHEAD_BUDGET * wall_in,
        "per-task IPC overhead {per_task_overhead_ms:.3} ms exceeds {OVERHEAD_BUDGET:.0}% of the {wall_in:.1} ms in-process sweep",
        OVERHEAD_BUDGET = OVERHEAD_BUDGET * 100.0
    );
    eprintln!(
        "per-task IPC overhead {per_task_overhead_ms:.3} ms <= {:.0}% of {wall_in:.1} ms: ok",
        OVERHEAD_BUDGET * 100.0
    );
}
