//! Paired A/B of the experiment service daemon on the `repro fig14
//! --quick` workload (24-point closed node sweep, 200 s horizon, one
//! deterministic replication per point), against a real `repro serve`
//! process on loopback.
//!
//! Seven measurements:
//!
//! 1. **Byte identity** (asserted before any timing): the served gather —
//!    fresh *and* cache-hit — must reproduce the in-process slot bytes
//!    exactly.
//! 2. **Cache-hit speedup**: cold submit+fetch (a genuine miss — the
//!    daemon simulates the whole sweep) vs warm submit+fetch of the same
//!    manifest (answered from the content-addressed cache). Distinct seeds
//!    per pair keep every cold run a real miss; medians over `--pairs`
//!    pairs. The binary asserts the warm path is at least
//!    [`MIN_HIT_SPEEDUP`]× faster — the service's reason to exist.
//! 3. **Submission throughput**: trivial 1-slot jobs (distinct seeds, so
//!    every one is a miss) submitted + fetched sequentially over one
//!    connection, and pipelined (all submits first, then all fetches) —
//!    the queue/protocol overhead floor in jobs/second.
//! 4. **Warm vs cold fleet**: the same sustained small-job flood against
//!    a `--shards 1` daemon with the worker pool off (every dispatch
//!    spawns a fresh worker subprocess) and on (workers stay warm across
//!    dispatches). Per-job p50/p99 latencies; the binary asserts the warm
//!    fleet beats per-job spawning at the median — the pool's reason to
//!    exist.
//! 5. **Latency vs offered load**: paced submissions against the warm
//!    fleet at 0.25×/0.5×/1×/2× of the closed-loop capacity estimated
//!    from the warm p50, with per-job sojourn anchored to the wall-clock
//!    *schedule* (not the possibly-late actual submission), so queueing
//!    delay accumulates in the measure once the offered rate crosses
//!    capacity instead of being absorbed by coordinated omission.
//! 6. **Telemetry overhead**: paired daemons with `REPRO_TELEMETRY` on
//!    vs off running the same cold sweep (interleaved, alternating
//!    order), byte identity asserted, then the median-of-pairs on/off
//!    time ratio. The registry's whole point is to be observably inert:
//!    the binary asserts the overhead stays under [`MAX_TELEMETRY_PCT`].
//! 7. **Trace overhead**: the same paired protocol with `REPRO_TRACE` on
//!    vs off — the span ring records on every submit/dispatch/slot, so it
//!    gets its own inertness gate under [`MAX_TRACE_PCT`].
//!
//! Fleet counters are process-global and monotone; every per-phase fleet
//! number below is a [`FleetSnapshot::delta_since`] against the phase
//! baseline (and each daemon's `stats` verb is baseline-relative to its
//! own construction), so phases report their own activity rather than
//! the accumulated total.
//!
//! ```text
//! cargo run --release -p bench --bin service_ab [--pairs K]
//! ```

use bench::remote::LocalService;
use bench::shard::FailJob;
use des::Workload;
use sim_runtime::service::protocol::{ServiceRequest, ServiceResponse};
use sim_runtime::{Exec, TaskManifest};
use std::time::Instant;
use wsn::experiments::jobs::NodeSweepJob;
use wsn::sweep::FIG14_15_PDT_GRID;

const HORIZON: f64 = 200.0; // fig14 --quick
const SEED: u64 = 0xF14;

/// Minimum accepted cold/warm speedup: a cache hit skips the whole
/// simulation, so even with protocol overhead it must be far faster than
/// re-simulating the sweep.
const MIN_HIT_SPEEDUP: f64 = 2.0;

/// Maximum accepted telemetry-on vs telemetry-off overhead, in percent of
/// the cold submit+fetch time. Recording is a handful of relaxed atomics
/// per engine run / grid slot / protocol verb, so it must vanish next to
/// the simulation itself.
const MAX_TELEMETRY_PCT: f64 = 2.0;

/// Maximum accepted trace-on vs trace-off overhead, in percent of the
/// cold submit+fetch time. A span is one ring-buffer push off the result
/// path, so like telemetry it must vanish next to the simulation.
const MAX_TRACE_PCT: f64 = 2.0;

fn job() -> NodeSweepJob {
    NodeSweepJob {
        workload: Workload::Closed { interval: 1.0 },
        horizon: HORIZON,
        grid: FIG14_15_PDT_GRID.to_vec(),
    }
}

fn seed_of(base: u64) -> impl Fn(usize, u64) -> u64 {
    move |_p, r| petri_core::rng::SimRng::child_seed(base, r)
}

fn run(exec: &Exec, base_seed: u64) -> Vec<Vec<Vec<u8>>> {
    let reps = vec![1u64; FIG14_15_PDT_GRID.len()];
    exec.runner()
        .run_job(&job(), &reps, &seed_of(base_seed))
        .expect("fig14 sweep runs")
}

/// The sibling `repro` binary (shared harness helper).
fn repro_bin() -> String {
    bench::remote::sibling_repro_bin()
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|x, y| x.total_cmp(y));
    v[v.len() / 2]
}

fn percentile(v: &mut [f64], q: f64) -> f64 {
    v.sort_by(|x, y| x.total_cmp(y));
    v[(((v.len() - 1) as f64) * q).round() as usize]
}

fn main() {
    let mut pairs = 9usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pairs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => pairs = n,
                _ => {
                    eprintln!("--pairs needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }
    let tasks = FIG14_15_PDT_GRID.len();
    // The pipelined phase bursts every submission before fetching any, so
    // the daemon's queue must hold the whole burst — size it explicitly
    // instead of relying on the default 256 staying ahead of --pairs.
    let n_jobs = (pairs * 10).max(30) as u64;
    let queue_capacity = (2 * n_jobs + 16).to_string();
    let cache_dir = std::env::temp_dir().join(format!("service-ab-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let daemon = LocalService::spawn(
        &repro_bin(),
        &[
            "--threads",
            "1",
            "--queue-capacity",
            &queue_capacity,
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ],
    )
    .expect("daemon spawns");
    let served = daemon.exec(1);
    let in_process = Exec::in_process(1);

    // Correctness first: byte identity fresh and from cache.
    let baseline = run(&in_process, SEED);
    assert_eq!(baseline, run(&served, SEED), "served sweep diverged");
    assert_eq!(
        baseline,
        run(&served, SEED),
        "cache-hit sweep diverged from in-process bytes"
    );
    eprintln!("byte-identity: in-process == served (miss) == served (hit) on {tasks} slots");

    // Cache-hit speedup: distinct seed per pair → cold is a genuine miss.
    // The client-side fleet counters (connection churn in *this* process)
    // are reported as a delta over the phase, not the process lifetime.
    let cache_fleet_base = sim_runtime::fleet_stats().snapshot();
    let timed = |base_seed: u64| {
        let t0 = Instant::now();
        std::hint::black_box(run(&served, base_seed));
        t0.elapsed().as_secs_f64() * 1e3
    };
    let mut cold_ms = Vec::new();
    let mut warm_ms = Vec::new();
    for p in 0..pairs {
        let base = SEED ^ (0x1000 + p as u64);
        cold_ms.push(timed(base));
        warm_ms.push(timed(base));
    }
    let cold = median(&mut cold_ms);
    let warm = median(&mut warm_ms);
    let speedup = cold / warm;
    let cache_fleet = sim_runtime::fleet_stats()
        .snapshot()
        .delta_since(&cache_fleet_base);

    // Submission throughput on trivial jobs (protocol + queue floor).
    // FailJob with an unreachable boundary is the cheapest success.
    let trivial = |i: u64| {
        TaskManifest::for_job(
            &FailJob {
                fail_point: 99,
                fail_rep: 0,
            },
            vec![sim_runtime::Segment {
                point: 0,
                base_rep: 0,
                count: 1,
            }],
            &|_, _| i,
        )
    };
    let mut client = daemon.client();
    let t0 = Instant::now();
    for i in 0..n_jobs {
        let (id, _) = client.submit(&trivial(i), 1).expect("submit");
        std::hint::black_box(client.fetch_blob(id).expect("fetch"));
    }
    let sequential_jobs_per_s = n_jobs as f64 / t0.elapsed().as_secs_f64();

    // Pipelined: burst all submits, then all fetches, on one connection.
    let t0 = Instant::now();
    for i in 0..n_jobs {
        client
            .send(&ServiceRequest::Submit {
                threads: 1,
                manifest: trivial(0x10_0000 + i),
            })
            .expect("pipelined submit");
    }
    let mut ids = Vec::with_capacity(n_jobs as usize);
    for _ in 0..n_jobs {
        match client.recv().expect("pipelined response") {
            ServiceResponse::Submitted { job, .. } => ids.push(job),
            other => panic!("unexpected {other:?}"),
        }
    }
    for id in ids {
        std::hint::black_box(client.fetch_blob(id).expect("pipelined fetch"));
    }
    let pipelined_jobs_per_s = n_jobs as f64 / t0.elapsed().as_secs_f64();
    drop(client);
    daemon.shutdown();

    // Warm vs cold fleet: the same flood of trivial distinct jobs through
    // a sharded daemon, with and without the worker pool. Caches are off
    // so every submission is a real dispatch (a worker spawn when cold, a
    // pool checkout when warm).
    let n_flood = (pairs * 8).max(30) as u64;
    let flood =
        |pool: &str, tag: u64| -> (Vec<f64>, sim_runtime::service::protocol::ServiceStats) {
            let daemon = LocalService::spawn(
                &repro_bin(),
                &[
                    "--threads",
                    "1",
                    "--shards",
                    "1",
                    "--pool",
                    pool,
                    "--mem-cache",
                    "0",
                    "--no-disk-cache",
                    "--queue-capacity",
                    &queue_capacity,
                ],
            )
            .expect("fleet daemon spawns");
            let mut client = daemon.client();
            let mut lat = Vec::with_capacity(n_flood as usize);
            for i in 0..n_flood {
                let t0 = Instant::now();
                let (id, _) = client.submit(&trivial(tag + i), 1).expect("flood submit");
                std::hint::black_box(client.fetch_blob(id).expect("flood fetch"));
                lat.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            // Per-phase daemon counters: each daemon's stats verb is already
            // relative to its own construction baseline, so a fresh daemon
            // per phase reports only this flood's activity.
            let stats = client.stats().expect("flood stats");
            drop(client);
            daemon.shutdown();
            (lat, stats)
        };
    let (mut cold_fleet, cold_stats) = flood("off", 0x20_0000);
    let (mut warm_fleet, warm_stats) = flood("on", 0x30_0000);
    let cold_p50 = percentile(&mut cold_fleet, 0.5);
    let cold_p99 = percentile(&mut cold_fleet, 0.99);
    let warm_p50 = percentile(&mut warm_fleet, 0.5);
    let warm_p99 = percentile(&mut warm_fleet, 0.99);

    // Latency vs offered load. Closed-loop warm p50 gives the capacity
    // estimate; the sweep offers fixed fractions/multiples of it,
    // open-loop: each submission is sent at its scheduled instant
    // regardless of how far behind the daemon is, so above capacity the
    // queue grows and per-job sojourn time (submit → result bytes in
    // hand) climbs instead of the offered rate silently throttling.
    let capacity_jobs_per_s = 1e3 / warm_p50;
    let n_rate = (pairs * 4).max(24) as u64;
    struct RatePoint {
        offered: f64,
        achieved: f64,
        p50_ms: f64,
        p99_ms: f64,
    }
    let mut rate_points: Vec<RatePoint> = Vec::new();
    for (k, frac) in [0.25, 0.5, 1.0, 2.0].into_iter().enumerate() {
        let offered = capacity_jobs_per_s * frac;
        let interval_s = 1.0 / offered;
        let daemon = LocalService::spawn(
            &repro_bin(),
            &[
                "--threads",
                "1",
                "--shards",
                "1",
                "--pool",
                "on",
                "--mem-cache",
                "0",
                "--no-disk-cache",
                "--queue-capacity",
                &queue_capacity,
            ],
        )
        .expect("rate-sweep daemon spawns");
        let mut client = daemon.client();
        let tag = 0x40_0000 + ((k as u64) << 16);
        // Warm the worker pool before timing: the first dispatches spawn
        // the workers, and that cold-start would land entirely on the
        // lowest-rate point's latency numbers.
        for i in 0..8 {
            let (id, _) = client
                .submit(&trivial(tag + 0x8000 + i), 1)
                .expect("warmup");
            std::hint::black_box(client.fetch_blob(id).expect("warmup fetch"));
        }
        // Paced submit+fetch, latency anchored to the *schedule*: job i is
        // due at `i * interval`, and its sojourn is result-bytes-in-hand
        // minus that instant. When the daemon keeps up, that is just its
        // service time; when the offered rate crosses capacity, every job
        // starts later than scheduled and the slip accumulates in the
        // measure instead of being absorbed by a slower submit loop
        // (coordinated omission). Sleeping (not spinning) to the deadline
        // matters on the 1-CPU container: a busy-wait would steal the
        // core from the daemon it is trying to load.
        let t_base = Instant::now();
        let mut lat_ms = Vec::with_capacity(n_rate as usize);
        let mut last_done = 0.0f64;
        for i in 0..n_rate {
            let due = interval_s * i as f64;
            let now = t_base.elapsed().as_secs_f64();
            if now < due {
                std::thread::sleep(std::time::Duration::from_secs_f64(due - now));
            }
            let (id, _) = client.submit(&trivial(tag + i), 1).expect("paced submit");
            std::hint::black_box(client.fetch_blob(id).expect("paced fetch"));
            last_done = t_base.elapsed().as_secs_f64();
            lat_ms.push((last_done - due) * 1e3);
        }
        drop(client);
        daemon.shutdown();
        rate_points.push(RatePoint {
            offered,
            achieved: n_rate as f64 / last_done,
            p50_ms: percentile(&mut lat_ms, 0.5),
            p99_ms: percentile(&mut lat_ms, 0.99),
        });
    }

    // Telemetry overhead: paired daemons with recording enabled vs
    // disabled, caches off so every sweep is a genuine cold simulation.
    // Byte identity is asserted before any timing — the registry must be
    // observably inert, not just cheap.
    let telemetry_daemon = |value: &str| {
        LocalService::spawn_with_env(
            &repro_bin(),
            &["--threads", "1", "--mem-cache", "0", "--no-disk-cache"],
            &[("REPRO_TELEMETRY".to_string(), value.to_string())],
        )
        .expect("telemetry daemon spawns")
    };
    let tele_on = telemetry_daemon("on");
    let tele_off = telemetry_daemon("off");
    let on_exec = tele_on.exec(1);
    let off_exec = tele_off.exec(1);
    assert_eq!(
        run(&on_exec, SEED ^ 0x7E7E),
        run(&off_exec, SEED ^ 0x7E7E),
        "telemetry on/off artifacts diverged"
    );
    eprintln!("telemetry on == telemetry off on raw slot bytes: ok");
    // One sweep per sample, arms back to back per pair with alternating
    // order, and the *median per-pair ratio* as the estimator: on a noisy
    // 1-CPU container the absolute sweep time swings far more than any
    // real telemetry cost, but adjacent-in-time pairs see the same
    // machine state, so their ratio isolates the on/off difference and
    // the median discards pairs a scheduler hiccup polluted.
    let timed_sweep = |exec: &Exec, tag: u64| {
        let t0 = Instant::now();
        std::hint::black_box(run(exec, tag));
        t0.elapsed().as_secs_f64() * 1e3
    };
    let sweeps = (pairs * 4).max(20) as u64;
    let mut on_ms = Vec::new();
    let mut off_ms = Vec::new();
    let mut ratios = Vec::new();
    for i in 0..sweeps {
        let tag = SEED ^ (0x5000 + i);
        let (on, off) = if i % 2 == 0 {
            let on = timed_sweep(&on_exec, tag);
            (on, timed_sweep(&off_exec, tag))
        } else {
            let off = timed_sweep(&off_exec, tag);
            (timed_sweep(&on_exec, tag), off)
        };
        on_ms.push(on);
        off_ms.push(off);
        ratios.push(on / off);
    }
    tele_on.shutdown();
    tele_off.shutdown();
    let on_med = median(&mut on_ms);
    let off_med = median(&mut off_ms);
    let telemetry_pct = (median(&mut ratios) - 1.0) * 100.0;

    // Trace overhead: the identical paired protocol for the span tracer.
    let trace_daemon = |value: &str| {
        LocalService::spawn_with_env(
            &repro_bin(),
            &["--threads", "1", "--mem-cache", "0", "--no-disk-cache"],
            &[("REPRO_TRACE".to_string(), value.to_string())],
        )
        .expect("trace daemon spawns")
    };
    let trace_on = trace_daemon("on");
    let trace_off = trace_daemon("off");
    let tron_exec = trace_on.exec(1);
    let troff_exec = trace_off.exec(1);
    assert_eq!(
        run(&tron_exec, SEED ^ 0x7ACE),
        run(&troff_exec, SEED ^ 0x7ACE),
        "trace on/off artifacts diverged"
    );
    eprintln!("trace on == trace off on raw slot bytes: ok");
    let mut tr_on_ms = Vec::new();
    let mut tr_off_ms = Vec::new();
    let mut tr_ratios = Vec::new();
    for i in 0..sweeps {
        let tag = SEED ^ (0x6000 + i);
        let (on, off) = if i % 2 == 0 {
            let on = timed_sweep(&tron_exec, tag);
            (on, timed_sweep(&troff_exec, tag))
        } else {
            let off = timed_sweep(&troff_exec, tag);
            (timed_sweep(&tron_exec, tag), off)
        };
        tr_on_ms.push(on);
        tr_off_ms.push(off);
        tr_ratios.push(on / off);
    }
    trace_on.shutdown();
    trace_off.shutdown();
    let tr_on_med = median(&mut tr_on_ms);
    let tr_off_med = median(&mut tr_off_ms);
    let trace_pct = (median(&mut tr_ratios) - 1.0) * 100.0;

    println!("{{");
    println!(
        "  \"workload\": \"fig14 --quick: {tasks}-point closed node sweep, {HORIZON} s horizon, 1 replication/point\","
    );
    println!("  \"byte_identity\": \"in-process == served fresh == served cache-hit, asserted on raw slot bytes before timing\",");
    println!("  \"cache\": {{");
    println!("    \"pairs\": {pairs},");
    println!("    \"cold_submit_fetch_ms\": {cold:.2},");
    println!("    \"warm_submit_fetch_ms\": {warm:.2},");
    println!("    \"cache_hit_speedup\": {speedup:.1},");
    println!(
        "    \"client_fleet_delta\": {{ \"reconnects\": {}, \"fallbacks\": {} }}",
        cache_fleet.reconnects, cache_fleet.fallbacks
    );
    println!("  }},");
    println!("  \"submission_throughput\": {{");
    println!("    \"jobs\": {n_jobs},");
    println!("    \"sequential_jobs_per_s\": {sequential_jobs_per_s:.0},");
    println!("    \"pipelined_jobs_per_s\": {pipelined_jobs_per_s:.0}");
    println!("  }},");
    println!("  \"fleet\": {{");
    println!("    \"flood_jobs\": {n_flood},");
    println!("    \"cold_spawn_p50_ms\": {cold_p50:.2},");
    println!("    \"cold_spawn_p99_ms\": {cold_p99:.2},");
    println!("    \"warm_pool_p50_ms\": {warm_p50:.2},");
    println!("    \"warm_pool_p99_ms\": {warm_p99:.2},");
    println!("    \"warm_pool_p50_speedup\": {:.1},", cold_p50 / warm_p50);
    println!(
        "    \"cold_phase_stats\": {{ \"executed\": {}, \"restarts\": {}, \"fallbacks\": {} }},",
        cold_stats.executed, cold_stats.restarts, cold_stats.fallbacks
    );
    println!(
        "    \"warm_phase_stats\": {{ \"executed\": {}, \"restarts\": {}, \"fallbacks\": {} }}",
        warm_stats.executed, warm_stats.restarts, warm_stats.fallbacks
    );
    println!("  }},");
    println!("  \"rate_sweep\": {{");
    println!("    \"jobs_per_rate\": {n_rate},");
    println!("    \"capacity_estimate_jobs_per_s\": {capacity_jobs_per_s:.1},");
    println!("    \"points\": [");
    for (i, p) in rate_points.iter().enumerate() {
        let comma = if i + 1 < rate_points.len() { "," } else { "" };
        println!(
            "      {{ \"offered_jobs_per_s\": {:.1}, \"achieved_jobs_per_s\": {:.1}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2} }}{comma}",
            p.offered, p.achieved, p.p50_ms, p.p99_ms
        );
    }
    println!("    ]");
    println!("  }},");
    println!("  \"telemetry\": {{");
    println!("    \"paired_sweeps\": {sweeps},");
    println!("    \"on_p50_ms\": {on_med:.2},");
    println!("    \"off_p50_ms\": {off_med:.2},");
    println!("    \"overhead_pct\": {telemetry_pct:.2},");
    println!("    \"estimator\": \"median per-pair on/off time ratio, arms adjacent in time with alternating order\",");
    println!("    \"byte_identity\": \"telemetry on == telemetry off, asserted on raw slot bytes before timing\"");
    println!("  }},");
    println!("  \"trace\": {{");
    println!("    \"paired_sweeps\": {sweeps},");
    println!("    \"on_p50_ms\": {tr_on_med:.2},");
    println!("    \"off_p50_ms\": {tr_off_med:.2},");
    println!("    \"overhead_pct\": {trace_pct:.2},");
    println!("    \"estimator\": \"median per-pair on/off time ratio, arms adjacent in time with alternating order\",");
    println!("    \"byte_identity\": \"trace on == trace off, asserted on raw slot bytes before timing\"");
    println!("  }},");
    println!(
        "  \"note\": \"cold = submit+fetch of a fresh manifest (daemon simulates the sweep); warm = identical resubmission answered from the content-addressed cache; throughput jobs are trivial 1-slot manifests, so the figure is the protocol+queue floor, not simulation speed; fleet = the same flood through a --shards 1 daemon with the worker pool off (fresh subprocess per dispatch) vs on (workers stay warm); rate_sweep = paced submissions against the warm fleet at fractions of the closed-loop capacity estimate, per-job sojourn anchored to the wall-clock schedule so slip past capacity accumulates as queueing delay; 1-CPU container — daemon and client share the core\""
    );
    println!("}}");

    assert!(
        speedup >= MIN_HIT_SPEEDUP,
        "cache-hit speedup {speedup:.1}x below the {MIN_HIT_SPEEDUP}x floor \
         (cold {cold:.1} ms vs warm {warm:.1} ms)"
    );
    eprintln!("cache-hit speedup {speedup:.1}x >= {MIN_HIT_SPEEDUP}x: ok");
    assert!(
        warm_p50 < cold_p50,
        "warm fleet p50 {warm_p50:.2} ms must beat per-job spawning p50 {cold_p50:.2} ms"
    );
    eprintln!("warm fleet p50 {warm_p50:.2} ms < cold spawn p50 {cold_p50:.2} ms: ok");
    assert!(
        telemetry_pct < MAX_TELEMETRY_PCT,
        "telemetry overhead {telemetry_pct:.2}% exceeds the {MAX_TELEMETRY_PCT}% ceiling \
         (on {on_med:.2} ms vs off {off_med:.2} ms)"
    );
    eprintln!("telemetry overhead {telemetry_pct:.2}% < {MAX_TELEMETRY_PCT}%: ok");
    assert!(
        trace_pct < MAX_TRACE_PCT,
        "trace overhead {trace_pct:.2}% exceeds the {MAX_TRACE_PCT}% ceiling \
         (on {tr_on_med:.2} ms vs off {tr_off_med:.2} ms)"
    );
    eprintln!("trace overhead {trace_pct:.2}% < {MAX_TRACE_PCT}%: ok");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
