//! The scheduler half of the service: dispatcher threads that claim
//! queued jobs and execute them on the configured
//! [`ExecBackend`](crate::exec::ExecBackend).
//!
//! Dispatchers are plain threads (no async runtime in the offline vendor
//! tree): each one blocks on the service's work condvar, claims the oldest
//! queued job, executes it **outside** the service lock — a dispatch may
//! run for minutes across shards or remote peers — and publishes the
//! terminal state. Parallelism *within* a job comes from the backend
//! (threads, worker subprocesses, TCP peers); parallelism *across* jobs
//! comes from running several dispatchers.
//!
//! Each execution writes its backend progress callbacks into the job's
//! shared [`ProgressCell`](super::queue::ProgressCell), which is what the
//! fetch keep-alive path and the HTTP gateway render — observation only,
//! never control flow.

use super::cache::encode_blob;
use super::queue::ClaimedJob;
use super::Service;
use std::sync::Arc;

/// The dispatcher thread body: claim → execute → publish, until the
/// service stops.
pub(super) fn dispatcher_loop(service: &Service) {
    while let Some(claimed) = service.next_claim() {
        execute(service, claimed);
    }
}

/// Execute one claimed job on the service's backend and publish the
/// outcome (result blob into both cache tiers, or the executor error).
pub(super) fn execute(service: &Service, claimed: ClaimedJob) {
    let ClaimedJob {
        job,
        manifest,
        key,
        progress,
        queue_wait,
    } = claimed;
    let tele = crate::telemetry::telemetry();
    tele.histogram("service_queue_wait_ns")
        .record_duration(queue_wait);
    progress.set_total(manifest.total_slots() as u64);
    let cell = progress.clone();
    let on_progress = move |p: crate::grid::Progress| {
        cell.record(p.completed as u64, p.point as u64, p.replication);
    };
    let outcome = service
        .registry()
        .decode(&manifest.kind, &manifest.payload)
        .map_err(crate::exec::ExecError::from)
        .and_then(|decoded| {
            service
                .backend()
                .run_segments(decoded.as_ref(), &manifest, Some(&on_progress))
        });
    match outcome {
        Ok(slots) => {
            let blob = Arc::new(encode_blob(&slots));
            service.publish_done(job, key, blob);
        }
        Err(e) => service.publish_failed(job, e),
    }
}
