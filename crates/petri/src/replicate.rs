//! Parallel independent replications.
//!
//! Simulation of one trajectory is inherently sequential, so the honest
//! parallelism for this workload is *across* independent replications (and,
//! one level up, across parameter-sweep points — see `wsn::sweep`). This
//! module fans replications out over scoped threads with a work-stealing
//! atomic counter: no unsafe, no channels in the hot path, deterministic
//! results regardless of thread count.

use crate::error::SimError;
use crate::sim::Simulator;
use crate::stats::{ConfidenceInterval, ConfidenceLevel, Welford};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Aggregated results of `n` independent replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Per-reward statistics across replications (same order as the
    /// simulator's rewards).
    pub rewards: Vec<Welford>,
    /// Number of successful replications.
    pub replications: u64,
}

impl ReplicationSummary {
    /// Mean of reward `i` across replications.
    pub fn mean(&self, i: usize) -> f64 {
        self.rewards[i].mean()
    }

    /// Confidence interval of reward `i`.
    pub fn ci(&self, i: usize, level: ConfidenceLevel) -> ConfidenceInterval {
        self.rewards[i].confidence_interval(level)
    }
}

/// Run `replications` independent simulations sequentially.
///
/// Replication `i` uses seed `SimRng::child_seed(base_seed, i)`, so results
/// are identical to [`run_replications_parallel`] with any thread count.
pub fn run_replications(
    sim: &Simulator<'_>,
    base_seed: u64,
    replications: u64,
) -> Result<ReplicationSummary, SimError> {
    let num_rewards = sim.reward_count();
    let mut rewards = vec![Welford::new(); num_rewards];
    for i in 0..replications {
        let seed = crate::rng::SimRng::child_seed(base_seed, i);
        let out = sim.run(seed)?;
        for (w, &x) in rewards.iter_mut().zip(out.rewards.iter()) {
            w.push(x);
        }
    }
    Ok(ReplicationSummary {
        rewards,
        replications,
    })
}

/// Run `replications` independent simulations across `threads` worker
/// threads (scoped; no detached work).
///
/// Each worker claims replication indices from a shared atomic counter, so
/// load balances even when trajectories differ wildly in event count. The
/// per-replication seed depends only on `(base_seed, index)`, making the
/// aggregate *statistically* identical to the sequential runner; per-reward
/// means may differ in the last ulp because merge order differs.
pub fn run_replications_parallel(
    sim: &Simulator<'_>,
    base_seed: u64,
    replications: u64,
    threads: usize,
) -> Result<ReplicationSummary, SimError> {
    let threads = threads.max(1).min(replications.max(1) as usize);
    if threads == 1 {
        return run_replications(sim, base_seed, replications);
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Result<Vec<Welford>, SimError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = vec![Welford::new(); sim.reward_count()];
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as u64;
                    if i >= replications {
                        break;
                    }
                    let seed = crate::rng::SimRng::child_seed(base_seed, i);
                    match sim.run(seed) {
                        Ok(out) => {
                            for (w, &x) in local.iter_mut().zip(out.rewards.iter()) {
                                w.push(x);
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(local)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("replication worker panicked"))
            .collect()
    });

    let mut rewards = vec![Welford::new(); sim.reward_count()];
    for r in results {
        let local = r?;
        for (w, l) in rewards.iter_mut().zip(local.iter()) {
            w.merge(l);
        }
    }
    Ok(ReplicationSummary {
        rewards,
        replications,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::sim::SimConfig;
    use crate::timing::Timing;

    fn mm1_sim(net: &crate::net::Net) -> (Simulator<'_>, crate::sim::RewardId) {
        let mut sim = Simulator::new(net, SimConfig::for_horizon(2000.0).with_warmup(100.0));
        let q = net.place_by_name("q").unwrap();
        let r = sim.reward_place(q);
        (sim, r)
    }

    fn mm1_net() -> crate::net::Net {
        let mut b = NetBuilder::new("mm1");
        let q = b.place("q").build();
        b.transition("arrive", Timing::exponential(1.0))
            .output(q, 1)
            .build();
        b.transition("serve", Timing::exponential(2.0))
            .input(q, 1)
            .build();
        let _ = q;
        b.build().unwrap()
    }

    #[test]
    fn sequential_replications_estimate_mm1() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let summary = run_replications(&sim, 7, 16).unwrap();
        assert_eq!(summary.replications, 16);
        let mean = summary.mean(r.index());
        assert!((mean - 1.0).abs() < 0.15, "E[N]={mean}");
        let ci = summary.ci(r.index(), ConfidenceLevel::P95);
        assert!(ci.contains(mean));
        assert!(ci.half_width < 0.2);
    }

    #[test]
    fn parallel_matches_sequential_statistics() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let seq = run_replications(&sim, 11, 12).unwrap();
        let par = run_replications_parallel(&sim, 11, 12, 4).unwrap();
        // Same seeds, same per-replication outputs; merged moments agree to
        // floating-point reassociation.
        assert_eq!(seq.replications, par.replications);
        assert!((seq.mean(r.index()) - par.mean(r.index())).abs() < 1e-9);
        assert!(
            (seq.rewards[r.index()].variance() - par.rewards[r.index()].variance()).abs() < 1e-9
        );
    }

    #[test]
    fn parallel_single_thread_falls_back() {
        let net = mm1_net();
        let (sim, r) = mm1_sim(&net);
        let a = run_replications_parallel(&sim, 3, 4, 1).unwrap();
        let b = run_replications(&sim, 3, 4).unwrap();
        assert_eq!(a.mean(r.index()), b.mean(r.index()));
    }

    #[test]
    fn errors_propagate_from_workers() {
        // Unbounded net trips TokenOverflow inside workers.
        let mut b = NetBuilder::new("boom");
        let q = b.place("q").build();
        b.transition("gen", Timing::deterministic(0.001))
            .output(q, 1)
            .build();
        let net = b.build().unwrap();
        let mut cfg = SimConfig::for_horizon(1e9);
        cfg.max_tokens_per_place = 100;
        let sim = Simulator::new(&net, cfg);
        assert!(run_replications_parallel(&sim, 1, 8, 4).is_err());
    }
}
