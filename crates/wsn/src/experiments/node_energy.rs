//! Figs. 14/15: Power-Down-Threshold sweeps of the node models with full
//! energy breakdowns, plus the paper's optimum-threshold analysis
//! (Sec. VII).

use crate::node::simulate_node_model;
use des::{NodeSimParams, Workload};
use energy::{NodeBreakdown, CC2420_RADIO, PXA271_CPU};
use serde::{Deserialize, Serialize};
use sim_runtime::Runner;

/// One sweep point: threshold, energy breakdown, and wake-up counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSweepPoint {
    /// Power-Down Threshold (s).
    pub pdt: f64,
    /// The eight-series energy breakdown.
    pub breakdown: NodeBreakdown,
    /// CPU wake-ups over the horizon.
    pub cpu_wakeups: f64,
    /// Radio wake-ups over the horizon.
    pub radio_wakeups: f64,
    /// Completed cycles.
    pub cycles: f64,
}

impl NodeSweepPoint {
    /// Total node energy (J).
    pub fn total_j(&self) -> f64 {
        self.breakdown.total().joules()
    }
}

/// A full Fig. 14/15 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSweep {
    /// The workload that was swept.
    pub workload: Workload,
    /// Horizon (s); the paper evaluates 15 min = 900 s.
    pub horizon: f64,
    /// Replications averaged per point (1 for the deterministic closed
    /// model).
    pub replications: u32,
    /// Points in threshold order.
    pub points: Vec<NodeSweepPoint>,
}

/// The paper's Sec. VII headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimumAnalysis {
    /// Threshold minimizing total energy.
    pub optimal_pdt: f64,
    /// Energy at the optimum (J).
    pub optimal_energy_j: f64,
    /// Energy at the smallest swept threshold ("immediately powered down").
    pub immediate_energy_j: f64,
    /// Energy at the largest swept threshold ("never powered down").
    pub never_energy_j: f64,
    /// Percent saved vs immediate power-down (paper: 35 % closed / 55 %
    /// open).
    pub savings_vs_immediate_pct: f64,
    /// Percent saved vs never powering down (paper: 29 % closed / 26 %
    /// open).
    pub savings_vs_never_pct: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct NodeSweepConfig {
    /// Horizon (s).
    pub horizon: f64,
    /// Replications per point (averaged; use > 1 for the open model).
    pub replications: u32,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for NodeSweepConfig {
    fn default() -> Self {
        NodeSweepConfig {
            horizon: 900.0,
            replications: 1,
            seed: 0xF14,
            threads: crate::sweep::default_threads(),
        }
    }
}

/// Run a Fig. 14/15 sweep over `grid` thresholds.
///
/// The `(threshold × replication)` grid — heterogeneous, since the
/// deterministic closed model needs exactly one replication per point
/// while the open model averages `cfg.replications` — is flattened into
/// one task stream on the shared executor; per-point averages fold in
/// replication order, so the sweep is bit-identical at any thread count.
pub fn run_node_sweep(workload: Workload, grid: &[f64], cfg: &NodeSweepConfig) -> NodeSweep {
    assert!(cfg.replications >= 1, "need at least one replication");
    // The closed model is deterministic, so one replication is exact.
    let reps = match workload {
        Workload::Closed { .. } => 1,
        Workload::Open { .. } => cfg.replications,
    };
    let reps_per_point = vec![reps as u64; grid.len()];
    let per_point = Runner::new(cfg.threads).grid(&reps_per_point, |point, r| {
        let mut params = NodeSimParams::paper_defaults(workload, grid[point]);
        params.horizon = cfg.horizon;
        let seed = petri_core::rng::SimRng::child_seed(cfg.seed, r);
        simulate_node_model(&params, seed)
    });
    let points = grid
        .iter()
        .zip(per_point)
        .map(|(&pdt, outputs)| {
            // Replication-index-ordered fold (deterministic aggregation).
            let mut acc = NodeBreakdown::default();
            let mut cpu_wakeups = 0.0;
            let mut radio_wakeups = 0.0;
            let mut cycles = 0.0;
            for out in outputs {
                let b = out.breakdown(&PXA271_CPU, &CC2420_RADIO);
                acc.cpu.sleep += b.cpu.sleep;
                acc.cpu.wakeup += b.cpu.wakeup;
                acc.cpu.idle += b.cpu.idle;
                acc.cpu.active += b.cpu.active;
                acc.radio.sleep += b.radio.sleep;
                acc.radio.wakeup += b.radio.wakeup;
                acc.radio.idle += b.radio.idle;
                acc.radio.active += b.radio.active;
                cpu_wakeups += out.cpu_wakeups;
                radio_wakeups += out.radio_wakeups;
                cycles += out.cycles_completed;
            }
            let n = reps as f64;
            let scale = 1.0 / n;
            let avg = NodeBreakdown {
                cpu: energy::ComponentBreakdown {
                    sleep: acc.cpu.sleep * scale,
                    wakeup: acc.cpu.wakeup * scale,
                    idle: acc.cpu.idle * scale,
                    active: acc.cpu.active * scale,
                },
                radio: energy::ComponentBreakdown {
                    sleep: acc.radio.sleep * scale,
                    wakeup: acc.radio.wakeup * scale,
                    idle: acc.radio.idle * scale,
                    active: acc.radio.active * scale,
                },
            };
            NodeSweepPoint {
                pdt,
                breakdown: avg,
                cpu_wakeups: cpu_wakeups / n,
                radio_wakeups: radio_wakeups / n,
                cycles: cycles / n,
            }
        })
        .collect();
    NodeSweep {
        workload,
        horizon: cfg.horizon,
        replications: cfg.replications,
        points,
    }
}

impl NodeSweep {
    /// The minimum-energy point.
    pub fn optimum(&self) -> &NodeSweepPoint {
        self.points
            .iter()
            .min_by(|a, b| a.total_j().total_cmp(&b.total_j()))
            .expect("non-empty sweep")
    }

    /// The Sec. VII analysis: optimum vs the two extremes.
    pub fn optimum_analysis(&self) -> OptimumAnalysis {
        let opt = self.optimum();
        let first = self.points.first().expect("non-empty sweep");
        let last = self.points.last().expect("non-empty sweep");
        OptimumAnalysis {
            optimal_pdt: opt.pdt,
            optimal_energy_j: opt.total_j(),
            immediate_energy_j: first.total_j(),
            never_energy_j: last.total_j(),
            savings_vs_immediate_pct: 100.0 * (1.0 - opt.total_j() / first.total_j()),
            savings_vs_never_pct: 100.0 * (1.0 - opt.total_j() / last.total_j()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::FIG14_15_PDT_GRID;

    fn quick_cfg() -> NodeSweepConfig {
        NodeSweepConfig {
            horizon: 300.0,
            replications: 2,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn closed_sweep_has_interior_optimum() {
        let grid = [1e-9, 0.00177, 0.01, 1.0, 100.0];
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &quick_cfg());
        let a = sweep.optimum_analysis();
        assert!(a.savings_vs_immediate_pct > 0.0, "{a:?}");
        assert!(a.savings_vs_never_pct > 0.0, "{a:?}");
        // The optimum lands at one of the interior knees, not an extreme.
        assert!(a.optimal_pdt > 1e-9 && a.optimal_pdt < 100.0, "{a:?}");
    }

    #[test]
    fn closed_optimum_at_the_gap() {
        // With the full grid the optimum is the 0.00177 s knee (or a point
        // in its flat basin up to the 1 s event period).
        let cfg = NodeSweepConfig {
            horizon: 300.0,
            ..quick_cfg()
        };
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &FIG14_15_PDT_GRID, &cfg);
        let a = sweep.optimum_analysis();
        assert!(
            (0.00177..=1.0).contains(&a.optimal_pdt),
            "optimum at {}",
            a.optimal_pdt
        );
    }

    #[test]
    fn open_sweep_has_interior_optimum() {
        let grid = [1e-9, 0.00177, 0.01, 1.0, 100.0];
        let sweep = run_node_sweep(Workload::Open { rate: 1.0 }, &grid, &quick_cfg());
        let a = sweep.optimum_analysis();
        assert!(a.savings_vs_immediate_pct > 0.0, "{a:?}");
        assert!(a.savings_vs_never_pct > 0.0, "{a:?}");
    }

    #[test]
    fn wakeups_monotone_nonincreasing_closed() {
        let grid = [1e-9, 0.00177, 0.01, 5.0, 100.0];
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &quick_cfg());
        for w in sweep.points.windows(2) {
            assert!(
                w[1].cpu_wakeups <= w[0].cpu_wakeups + 1.0,
                "wakeups must not rise with threshold: {:?}",
                sweep
                    .points
                    .iter()
                    .map(|p| (p.pdt, p.cpu_wakeups))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn breakdown_series_respond_to_threshold() {
        let grid = [1e-9, 100.0];
        let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &quick_cfg());
        let tiny = &sweep.points[0];
        let huge = &sweep.points[1];
        // Tiny threshold: more wake-up transitional energy.
        assert!(
            tiny.breakdown.cpu.wakeup.joules() > huge.breakdown.cpu.wakeup.joules(),
            "wakeup energy must fall with threshold"
        );
        // Huge threshold: more idle energy.
        assert!(
            huge.breakdown.cpu.idle.joules() > tiny.breakdown.cpu.idle.joules(),
            "idle energy must rise with threshold"
        );
    }
}
