//! The paper's headline question (Sec. I): *should a processor be put to
//! sleep immediately after computation, or after some time has elapsed? Or
//! never?* — answered by sweeping the Power-Down Threshold of the full
//! sensor-node model (Figs. 14/15).
//!
//! ```sh
//! cargo run --release --example power_down_threshold
//! ```

use wsn_petri::prelude::*;
use wsn_petri::wsn::sweep::FIG14_15_PDT_GRID;

fn main() {
    // The whole (threshold × replication) grid runs as one flattened task
    // stream on the shared runtime; results are bit-identical for any
    // worker count (SWEEP_THREADS overrides the one-per-core default).
    let threads = wsn_petri::sim_runtime::env_threads("SWEEP_THREADS")
        .unwrap_or_else(wsn_petri::sim_runtime::default_threads);
    for (label, workload, reps) in [
        (
            "closed workload (Fig. 14)",
            Workload::Closed { interval: 1.0 },
            1,
        ),
        ("open workload (Fig. 15)", Workload::Open { rate: 1.0 }, 4),
    ] {
        let cfg = NodeSweepConfig {
            horizon: 900.0, // the paper's 15 minutes
            replications: reps,
            exec: wsn_petri::sim_runtime::Exec::in_process(threads),
            ..Default::default()
        };
        let sweep = run_node_sweep(workload, &FIG14_15_PDT_GRID, &cfg);

        println!("=== {label} ===");
        println!(
            "{:>12} {:>12} {:>14} {:>10}",
            "PDT (s)", "energy (J)", "CPU wakeups", "cycles"
        );
        for p in &sweep.points {
            println!(
                "{:>12} {:>12.2} {:>14.0} {:>10.0}",
                p.pdt,
                p.total_j(),
                p.cpu_wakeups,
                p.cycles
            );
        }
        let a = sweep.optimum_analysis();
        println!(
            "\noptimum: PDT = {} s at {:.2} J — {:.0}% below immediate power-down, {:.0}% below never-power-down\n",
            a.optimal_pdt, a.optimal_energy_j, a.savings_vs_immediate_pct, a.savings_vs_never_pct
        );
    }
    println!(
        "(the closed-model knee sits at exactly 0.000194 + 0.001 + 0.000576 = 0.00177 s,\n\
         the CPU-visible gap inside one communication cycle — see DESIGN.md §5)"
    );
}
