//! # des — discrete-event simulation substrate
//!
//! The reproduction of the paper's unpublished ground-truth simulator
//! (Sec. IV) plus a full node-level simulator used to cross-validate the
//! Petri-net models:
//!
//! * [`kernel`] — generic event queue with exact tie-breaking and
//!   cancellation.
//! * [`cpu`] — the power-managed CPU simulator built strictly from the
//!   paper's four assumptions (the solid "Simulation" curves of Figs. 4–9).
//! * [`node`] — the whole sensor node (radio + CPU + closed/open workload),
//!   the independent oracle for Figs. 14/15.
//! * [`rng`] — seeded sampling, deliberately separate from petri-core's.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cpu;
pub mod kernel;
pub mod node;
pub mod rng;

pub use cpu::{simulate_cpu, CpuSimParams, CpuSimResult};
pub use kernel::{EventId, EventQueue};
pub use node::{simulate_node, NodeSimParams, NodeSimResult, Workload};
