//! TAB8–10 regeneration cost: the simple sensor system (Fig. 10) and the
//! emulated IMote2 rig.

use criterion::{criterion_group, criterion_main, Criterion};
use wsn::imote2::{run_rig, Imote2RigConfig};
use wsn::{analytic_probabilities, simulate_simple_node, SimpleNodeParams};

fn bench_simple_node_sim(c: &mut Criterion) {
    let params = SimpleNodeParams::default();
    c.bench_function("simple/petri_1000s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulate_simple_node(&params, 1000.0, seed)
        })
    });
}

fn bench_simple_node_analytic(c: &mut Criterion) {
    let params = SimpleNodeParams::default();
    c.bench_function("simple/analytic", |b| {
        b.iter(|| analytic_probabilities(&params))
    });
}

fn bench_imote2_rig(c: &mut Criterion) {
    let node = SimpleNodeParams::default();
    let rig = Imote2RigConfig::default();
    c.bench_function("simple/imote2_rig_100ev", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_rig(&node, &rig, &energy::IMOTE2_MEASURED, seed)
        })
    });
}

criterion_group! {
    name = benches;
    // Short windows: these benches document magnitudes, not micro-regressions.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_simple_node_sim,
    bench_simple_node_analytic,
    bench_imote2_rig
}
criterion_main!(benches);
