//! M/M/1 queue closed forms — the textbook baseline the paper's CPU model
//! degenerates to when the power-management states are removed (T → ∞,
//! D → 0: the CPU never sleeps, so it is exactly an M/M/1 server).

/// Closed-form metrics of a stable M/M/1 queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
}

impl Mm1 {
    /// New queue; panics unless `0 < lambda < mu` (stability).
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        assert!(lambda < mu, "unstable queue: lambda >= mu");
        Mm1 { lambda, mu }
    }

    /// Utilization ρ = λ/μ (also the probability the server is busy).
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// P(system empty) = 1 - ρ.
    pub fn p_empty(&self) -> f64 {
        1.0 - self.rho()
    }

    /// P(exactly n in system) = (1-ρ)ρⁿ.
    pub fn p_n(&self, n: u32) -> f64 {
        self.p_empty() * self.rho().powi(n as i32)
    }

    /// Mean number in system L = ρ/(1-ρ).
    pub fn mean_in_system(&self) -> f64 {
        let r = self.rho();
        r / (1.0 - r)
    }

    /// Mean number in queue Lq = ρ²/(1-ρ).
    pub fn mean_in_queue(&self) -> f64 {
        let r = self.rho();
        r * r / (1.0 - r)
    }

    /// Mean time in system W = 1/(μ-λ).
    pub fn mean_time_in_system(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time Wq = ρ/(μ-λ).
    pub fn mean_wait(&self) -> f64 {
        self.rho() / (self.mu - self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let q = Mm1::new(1.0, 2.0);
        assert!((q.rho() - 0.5).abs() < 1e-15);
        assert!((q.p_empty() - 0.5).abs() < 1e-15);
        assert!((q.p_n(1) - 0.25).abs() < 1e-15);
        assert!((q.mean_in_system() - 1.0).abs() < 1e-15);
        assert!((q.mean_in_queue() - 0.5).abs() < 1e-15);
        assert!((q.mean_time_in_system() - 1.0).abs() < 1e-15);
        assert!((q.mean_wait() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1::new(0.3, 1.7);
        assert!((q.mean_in_system() - q.lambda * q.mean_time_in_system()).abs() < 1e-12);
        assert!((q.mean_in_queue() - q.lambda * q.mean_wait()).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let q = Mm1::new(2.0, 5.0);
        let total: f64 = (0..200).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_rejected() {
        let _ = Mm1::new(2.0, 1.0);
    }

    #[test]
    fn paper_parameters() {
        // The paper's CPU: lambda = 1/s, mean service 0.1 s => mu = 10/s.
        let q = Mm1::new(1.0, 10.0);
        assert!((q.rho() - 0.1).abs() < 1e-15);
        // Active fraction ~10 %, matching Fig. 4's flat Active curve.
    }
}
