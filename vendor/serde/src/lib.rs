//! Offline stand-in for `serde`: re-exports the no-op derive macros.
//!
//! `use serde::{Serialize, Deserialize}` resolves to these derives, exactly
//! as with the real crate. No trait machinery is provided because nothing in
//! this workspace serializes at runtime when built offline.

pub use serde_derive::{Deserialize, Serialize};
