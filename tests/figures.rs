//! Figure-shape tests: reduced-horizon versions of every figure pipeline,
//! asserting the qualitative claims the paper's evaluation makes about
//! each plot. These are the regression net for the `repro` binary.

use wsn_petri::prelude::*;
use wsn_petri::wsn::sweep::{fig4_9_pdt_grid, FIG14_15_PDT_GRID};

fn quick_cpu_cfg() -> CpuComparisonConfig {
    CpuComparisonConfig {
        horizon: 2500.0,
        ..Default::default()
    }
}

/// Fig. 4: at PUD = 0.001 s, Idle rises with the threshold, Standby falls,
/// Active stays flat near ρ = 0.1, and Power-Up is negligible.
#[test]
fn fig4_shapes() {
    let c = run_cpu_comparison(0.001, &fig4_9_pdt_grid(), &quick_cpu_cfg());
    let first = &c.points[0];
    let last = c.points.last().unwrap();
    // Idle rises (sim, markov, petri all).
    assert!(last.sim_probs[2] > first.sim_probs[2] + 0.3);
    assert!(last.markov_probs[2] > first.markov_probs[2] + 0.3);
    assert!(last.petri_probs[2] > first.petri_probs[2] + 0.3);
    // Standby falls.
    assert!(last.sim_probs[0] < first.sim_probs[0] - 0.3);
    // Active flat near 0.1.
    for p in &c.points {
        assert!(
            (p.sim_probs[3] - 0.1).abs() < 0.03,
            "active {}",
            p.sim_probs[3]
        );
    }
    // Power-up negligible at D = 1 ms.
    for p in &c.points {
        assert!(p.sim_probs[1] < 0.01);
    }
}

/// Fig. 6: at PUD = 10 s the CPU spends a large share of time powering up,
/// and the Markov curve departs from the simulator while Petri stays close.
#[test]
fn fig6_shapes() {
    let grid = [0.001, 0.25, 0.5, 0.75, 1.0];
    let c = run_cpu_comparison(10.0, &grid, &quick_cpu_cfg());
    // Substantial power-up share at small thresholds.
    assert!(
        c.points[0].sim_probs[1] > 0.2,
        "powerup {}",
        c.points[0].sim_probs[1]
    );
    // Markov vs sim error dwarfs petri vs sim error, pointwise.
    for p in &c.points {
        let markov_err = (p.markov_probs[3] - p.sim_probs[3]).abs();
        let petri_err = (p.petri_probs[3] - p.sim_probs[3]).abs();
        assert!(
            markov_err > petri_err,
            "pdt={}: markov_err {markov_err} <= petri_err {petri_err}",
            p.pdt
        );
    }
}

/// Figs. 7 vs 9: energy *rises* with the threshold at PUD = 1 ms but
/// *falls* at PUD = 10 s — the paper's "more efficient to idle than to
/// repeatedly wake" observation.
#[test]
fn fig7_vs_fig9_energy_trend_inverts() {
    let grid = [0.001, 0.5, 1.0];
    let small = run_cpu_comparison(0.001, &grid, &quick_cpu_cfg());
    let large = run_cpu_comparison(10.0, &grid, &quick_cpu_cfg());
    let rows_small = small.energy_rows();
    let rows_large = large.energy_rows();
    assert!(rows_small[2].1 > rows_small[0].1, "PUD=1ms: rising");
    assert!(rows_large[2].1 < rows_large[0].1, "PUD=10s: falling");
}

/// Tables IV–VI trend: the Petri net's advantage over the Markov model
/// grows with the Power-Up Delay.
#[test]
fn delta_tables_trend() {
    let grid = fig4_9_pdt_grid();
    let cfg = quick_cpu_cfg();
    let t4 = run_cpu_comparison(0.001, &grid, &cfg).delta_table();
    let t5 = run_cpu_comparison(0.3, &grid, &cfg).delta_table();
    let t6 = run_cpu_comparison(10.0, &grid, &cfg).delta_table();
    // Table IV regime: both close to sim; Markov-Petri tiny relative to
    // the energies involved (paper: 0.05 J on ~10-50 J curves).
    assert!(t4.markov_petri.avg < 2.0, "{t4:?}");
    // Table V regime: Petri at least as good as Markov.
    assert!(t5.sim_petri.avg <= t5.sim_markov.avg * 1.1, "{t5:?}");
    // Table VI regime: Markov off by a large factor (paper: 42.41 vs 0.12).
    assert!(
        t6.sim_markov.avg > 5.0 * t6.sim_petri.avg,
        "markov {} vs petri {}",
        t6.sim_markov.avg,
        t6.sim_petri.avg
    );
}

/// Fig. 14: the closed-model sweep over the full published grid has its
/// optimum at the 0.00177 s knee (or inside the flat basin up to ~1 s) and
/// beats both extremes.
#[test]
fn fig14_optimum_location_and_savings() {
    let cfg = NodeSweepConfig {
        horizon: 600.0,
        ..Default::default()
    };
    let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &FIG14_15_PDT_GRID, &cfg);
    let a = sweep.optimum_analysis();
    assert!(
        (0.00177..=1.0).contains(&a.optimal_pdt),
        "optimum {}",
        a.optimal_pdt
    );
    assert!(a.savings_vs_immediate_pct > 5.0, "{a:?}");
    assert!(a.savings_vs_never_pct > 5.0, "{a:?}");
}

/// Fig. 15: the open-model sweep also has an interior optimum with
/// positive savings against both extremes.
#[test]
fn fig15_optimum_interior() {
    let cfg = NodeSweepConfig {
        horizon: 600.0,
        replications: 4,
        ..Default::default()
    };
    let sweep = run_node_sweep(Workload::Open { rate: 1.0 }, &FIG14_15_PDT_GRID, &cfg);
    let a = sweep.optimum_analysis();
    assert!(a.optimal_pdt > 1e-9 && a.optimal_pdt < 100.0, "{a:?}");
    assert!(a.savings_vs_immediate_pct > 5.0, "{a:?}");
    assert!(a.savings_vs_never_pct > 0.0, "{a:?}");
}

/// Fig. 14's stacked series: wake-up transitional energy shrinks with the
/// threshold while idle energy grows — the visual story of the figure.
#[test]
fn fig14_series_trends() {
    let cfg = NodeSweepConfig {
        horizon: 400.0,
        ..Default::default()
    };
    let grid = [1e-9, 0.00177, 1.0, 100.0];
    let sweep = run_node_sweep(Workload::Closed { interval: 1.0 }, &grid, &cfg);
    let wakeup: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.breakdown.cpu.wakeup.joules())
        .collect();
    let idle: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.breakdown.cpu.idle.joules())
        .collect();
    assert!(
        wakeup.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "wakeup {wakeup:?}"
    );
    assert!(
        idle.windows(2).all(|w| w[1] >= w[0] - 1e-9),
        "idle {idle:?}"
    );
}

/// Tables VIII/IX/X: the simple-system pipeline reports self-consistent
/// probabilities and a small measured-vs-predicted gap.
#[test]
fn simple_system_tables() {
    let report = run_simple_system(10_000.0, 3);
    let total: f64 = report.rows.iter().map(|r| r.probability_pct).sum();
    assert!((total - 100.0).abs() < 1e-9);
    assert!((report.analytic.total() - 1.0).abs() < 1e-12);
    let x = run_table_x(3);
    assert!(x.percent_difference < 6.0, "{x:?}");
}
