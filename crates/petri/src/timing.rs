//! Transition timing semantics and firing-delay distributions.
//!
//! EDSPNs (Extended Deterministic and Stochastic Petri Nets, the class the
//! paper's Fig. 3 model belongs to) combine three transition kinds:
//!
//! * **Immediate** — fires as soon as enabled, before simulated time
//!   advances; conflicts resolved by priority, then weight.
//! * **Deterministic** — fires a fixed delay after becoming enabled
//!   (the `Power_Down_Threshold` and `Power_Up_Delay` transitions).
//! * **Exponential** — fires after an exponentially distributed delay
//!   (the `Arrival_Rate` and `Service_Rate` transitions).
//!
//! We additionally support `Uniform` and `Erlang` distributions: Erlang is
//! the phase-type stand-in used by the ABL-ERLANG ablation to show how many
//! exponential stages a Markov chain needs to mimic a deterministic delay.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// How and when an enabled transition fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Timing {
    /// Fires at the current instant, before any timed transition.
    ///
    /// `priority`: higher fires first. `weight`: probabilistic share among
    /// equal-priority enabled immediates.
    Immediate {
        /// Conflict-resolution priority (higher wins).
        priority: u8,
        /// Relative probability among equal-priority conflicts. Must be > 0.
        weight: f64,
    },
    /// Fires exactly `delay` seconds after (re-)enabling.
    Deterministic {
        /// The fixed firing delay in seconds (>= 0).
        delay: f64,
    },
    /// Fires after Exp(rate)-distributed delay (mean `1/rate` seconds).
    Exponential {
        /// Rate parameter λ (> 0), in events per second.
        rate: f64,
    },
    /// Fires after a Uniform(low, high) delay.
    Uniform {
        /// Lower bound (>= 0).
        low: f64,
        /// Upper bound (>= low).
        high: f64,
    },
    /// Fires after an Erlang(k, rate) delay: the sum of `k` independent
    /// Exp(rate) stages, with mean `k / rate`.
    Erlang {
        /// Number of exponential stages (>= 1).
        k: u32,
        /// Per-stage rate (> 0).
        rate: f64,
    },
}

impl Timing {
    /// Immediate with priority 1 and weight 1.
    pub fn immediate() -> Timing {
        Timing::Immediate {
            priority: 1,
            weight: 1.0,
        }
    }

    /// Immediate with the given priority and weight 1.
    pub fn immediate_pri(priority: u8) -> Timing {
        Timing::Immediate {
            priority,
            weight: 1.0,
        }
    }

    /// Deterministic delay of `delay` seconds.
    pub fn deterministic(delay: f64) -> Timing {
        Timing::Deterministic { delay }
    }

    /// Exponential with rate `rate` (mean `1/rate`).
    pub fn exponential(rate: f64) -> Timing {
        Timing::Exponential { rate }
    }

    /// Exponential with mean delay `mean` seconds.
    ///
    /// The paper's parameter tables (e.g. Table VIII: "Job_Arrival,
    /// Exponential, Delay 3.0") quote exponential transitions by their mean,
    /// so this constructor mirrors that convention.
    pub fn exponential_mean(mean: f64) -> Timing {
        Timing::Exponential { rate: 1.0 / mean }
    }

    /// Uniform on `[low, high]`.
    pub fn uniform(low: f64, high: f64) -> Timing {
        Timing::Uniform { low, high }
    }

    /// Erlang with `k` stages of rate `rate`.
    pub fn erlang(k: u32, rate: f64) -> Timing {
        Timing::Erlang { k, rate }
    }

    /// Is this an immediate transition?
    #[inline]
    pub fn is_immediate(&self) -> bool {
        matches!(self, Timing::Immediate { .. })
    }

    /// Priority if immediate.
    #[inline]
    pub fn priority(&self) -> Option<u8> {
        match self {
            Timing::Immediate { priority, .. } => Some(*priority),
            _ => None,
        }
    }

    /// Weight if immediate.
    #[inline]
    pub fn weight(&self) -> Option<f64> {
        match self {
            Timing::Immediate { weight, .. } => Some(*weight),
            _ => None,
        }
    }

    /// Mean firing delay (0 for immediates).
    pub fn mean_delay(&self) -> f64 {
        match self {
            Timing::Immediate { .. } => 0.0,
            Timing::Deterministic { delay } => *delay,
            Timing::Exponential { rate } => 1.0 / rate,
            Timing::Uniform { low, high } => 0.5 * (low + high),
            Timing::Erlang { k, rate } => *k as f64 / rate,
        }
    }

    /// Sample a firing delay. Immediates return 0.
    #[inline]
    pub fn sample_delay(&self, rng: &mut SimRng) -> f64 {
        match self {
            Timing::Immediate { .. } => 0.0,
            Timing::Deterministic { delay } => *delay,
            Timing::Exponential { rate } => rng.exp(*rate),
            Timing::Uniform { low, high } => rng.uniform(*low, *high),
            Timing::Erlang { k, rate } => {
                let mut total = 0.0;
                for _ in 0..*k {
                    total += rng.exp(*rate);
                }
                total
            }
        }
    }

    /// Validate the parameters; returns a human-readable problem description
    /// if invalid. Called by the net builder.
    // Negated comparisons are deliberate: they reject NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Timing::Immediate { weight, .. } => {
                if !(*weight > 0.0) || !weight.is_finite() {
                    return Err(format!(
                        "immediate weight must be finite and > 0, got {weight}"
                    ));
                }
            }
            Timing::Deterministic { delay } => {
                if !(*delay >= 0.0) || !delay.is_finite() {
                    return Err(format!(
                        "deterministic delay must be finite and >= 0, got {delay}"
                    ));
                }
            }
            Timing::Exponential { rate } => {
                if !(*rate > 0.0) || !rate.is_finite() {
                    return Err(format!(
                        "exponential rate must be finite and > 0, got {rate}"
                    ));
                }
            }
            Timing::Uniform { low, high } => {
                if !(*low >= 0.0) || !low.is_finite() || !high.is_finite() || high < low {
                    return Err(format!("uniform bounds invalid: [{low}, {high}]"));
                }
            }
            Timing::Erlang { k, rate } => {
                if *k == 0 {
                    return Err("erlang stage count must be >= 1".to_string());
                }
                if !(*rate > 0.0) || !rate.is_finite() {
                    return Err(format!("erlang rate must be finite and > 0, got {rate}"));
                }
            }
        }
        Ok(())
    }
}

/// Memory policy: what happens to a timed transition's sampled firing time
/// when the enabling condition flickers.
///
/// The paper's `Power_Down_Threshold` transition *requires* [`RaceEnable`]
/// semantics: the idle countdown restarts whenever the CPU re-enters the
/// idle state and is discarded the moment a job arrives.
///
/// [`RaceEnable`]: MemoryPolicy::RaceEnable
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Keep the firing clock while continuously enabled; discard it on
    /// disable; resample on re-enable ("enabling memory"). The TimeNET
    /// default and ours.
    #[default]
    RaceEnable,
    /// Freeze the remaining time on disable and resume it on re-enable
    /// ("age memory").
    RaceAge,
    /// Resample the delay at every marking change, even while the transition
    /// stays enabled. (Memoryless for exponentials; for deterministic
    /// transitions this can postpone firing forever — exposed for the
    /// ABL-MEMORY ablation.)
    Resample,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn constructors_and_accessors() {
        let t = Timing::immediate_pri(4);
        assert!(t.is_immediate());
        assert_eq!(t.priority(), Some(4));
        assert_eq!(t.weight(), Some(1.0));
        assert_eq!(t.mean_delay(), 0.0);

        let d = Timing::deterministic(0.25);
        assert!(!d.is_immediate());
        assert_eq!(d.priority(), None);
        assert_eq!(d.mean_delay(), 0.25);

        let e = Timing::exponential(2.0);
        assert!((e.mean_delay() - 0.5).abs() < 1e-12);

        let em = Timing::exponential_mean(3.0);
        assert!((em.mean_delay() - 3.0).abs() < 1e-12);

        let u = Timing::uniform(1.0, 3.0);
        assert!((u.mean_delay() - 2.0).abs() < 1e-12);

        let er = Timing::erlang(4, 8.0);
        assert!((er.mean_delay() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_sampling_is_exact() {
        let mut rng = SimRng::seed_from_u64(1);
        let t = Timing::deterministic(0.125);
        for _ in 0..10 {
            assert_eq!(t.sample_delay(&mut rng), 0.125);
        }
    }

    #[test]
    fn exponential_sampling_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let t = Timing::exponential(4.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| t.sample_delay(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 0.25).abs() < 0.01,
            "sampled mean {mean} too far from 0.25"
        );
    }

    #[test]
    fn uniform_sampling_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        let t = Timing::uniform(0.5, 1.5);
        for _ in 0..1000 {
            let d = t.sample_delay(&mut rng);
            assert!((0.5..=1.5).contains(&d));
        }
    }

    #[test]
    fn erlang_sampling_mean_and_lower_variance() {
        let mut rng = SimRng::seed_from_u64(11);
        let exp = Timing::exponential(1.0);
        let erl = Timing::erlang(16, 16.0); // same mean 1.0, much tighter
        let n = 20_000;
        let mut sum_e = 0.0;
        let mut sum2_e = 0.0;
        let mut sum_k = 0.0;
        let mut sum2_k = 0.0;
        for _ in 0..n {
            let a = exp.sample_delay(&mut rng);
            let b = erl.sample_delay(&mut rng);
            sum_e += a;
            sum2_e += a * a;
            sum_k += b;
            sum2_k += b * b;
        }
        let mean_e = sum_e / n as f64;
        let var_e = sum2_e / n as f64 - mean_e * mean_e;
        let mean_k = sum_k / n as f64;
        let var_k = sum2_k / n as f64 - mean_k * mean_k;
        assert!((mean_e - 1.0).abs() < 0.05);
        assert!((mean_k - 1.0).abs() < 0.05);
        // Erlang-16 variance is 1/16 of the exponential's.
        assert!(var_k < var_e * 0.25, "var_k={var_k} var_e={var_e}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Timing::deterministic(-1.0).validate().is_err());
        assert!(Timing::deterministic(f64::NAN).validate().is_err());
        assert!(Timing::exponential(0.0).validate().is_err());
        assert!(Timing::exponential(-2.0).validate().is_err());
        assert!(Timing::uniform(2.0, 1.0).validate().is_err());
        assert!(Timing::uniform(-0.1, 1.0).validate().is_err());
        assert!(Timing::erlang(0, 1.0).validate().is_err());
        assert!(Timing::erlang(2, 0.0).validate().is_err());
        assert!(Timing::Immediate {
            priority: 1,
            weight: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validation_accepts_good_parameters() {
        assert!(Timing::immediate().validate().is_ok());
        assert!(Timing::deterministic(0.0).validate().is_ok());
        assert!(Timing::exponential(1.0).validate().is_ok());
        assert!(Timing::uniform(0.0, 0.0).validate().is_ok());
        assert!(Timing::erlang(3, 2.0).validate().is_ok());
    }

    #[test]
    fn memory_policy_default_is_race_enable() {
        assert_eq!(MemoryPolicy::default(), MemoryPolicy::RaceEnable);
    }
}
