//! The process-global warm pool of worker subprocesses and remote peer
//! connections.
//!
//! Every execution tier used to treat its fleet as disposable: the
//! sharded backend spawned a fresh `repro --worker` subprocess per shard
//! per dispatch, and the remote backend reconnected to every peer per
//! dispatch — ruinous for the service tier, where a flood of small jobs
//! re-paid the whole fleet-startup cost on each one. The pool gives
//! both tiers checkout/return semantics over long-lived members:
//!
//! * **checkout** pops an idle member and health-checks it (`try_wait`
//!   for subprocesses, a socket liveness probe for TCP peers); dead or
//!   over-age members are discarded and the next candidate tried. A
//!   miss spawns/connects cold.
//! * **return** parks a healthy member for the next dispatch, unless
//!   the recycling policy retires it (served [`MAX_DISPATCHES`], or the
//!   idle shelf for its key is full).
//!
//! The pool is process-global (a `OnceLock` singleton) because the
//! service constructs a fresh `ExecBackend` per dispatch — per-backend
//! pools would never be warm. Pooled workers need no teardown hook: a
//! worker idles blocked in `recv` on its stdin pipe, so parent exit
//! closes the pipe, the serve loop sees EOF, and the worker exits 0.

use super::{fleet_stats, FleetStats};
use crate::remote::probe_live;
use crate::remote::transport::{PipeTransport, TcpTransport};
use std::collections::HashMap;
use std::io;
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A pooled member is retired after serving this many dispatches
/// (max-lifetime recycling bounds leaked state in long-lived workers).
pub const MAX_DISPATCHES: u64 = 256;

/// Idle members older than this are discarded on checkout instead of
/// being health-probed and reused.
pub const MAX_IDLE_AGE: Duration = Duration::from_secs(300);

/// At most this many idle members are parked per key; surplus returns
/// are discarded.
pub const MAX_IDLE_PER_KEY: usize = 8;

/// A warm `--worker` subprocess checked out of (or destined for) the
/// pool.
pub struct PooledWorker {
    child: Child,
    transport: PipeTransport,
    /// Dispatches this worker has served so far.
    pub dispatches: u64,
    parked_at: Instant,
}

impl PooledWorker {
    /// The duplex pipe transport to the worker.
    pub fn transport(&mut self) -> &mut PipeTransport {
        &mut self.transport
    }

    /// Kill the subprocess and reap it. Killing is safe even when the
    /// worker already exited on its own (the wait below reaps either
    /// way); the pipes close on drop.
    pub fn discard(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

struct IdlePeer {
    transport: TcpTransport,
    dispatches: u64,
    parked_at: Instant,
}

/// The warm pool. Worker shelves are keyed by the spawn command line;
/// peer shelves by `host:port`.
#[derive(Default)]
pub struct WorkerPool {
    workers: Mutex<HashMap<String, Vec<PooledWorker>>>,
    peers: Mutex<HashMap<String, Vec<IdlePeer>>>,
}

/// The process-global pool.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::default)
}

fn worker_key(cmd: &[String]) -> String {
    cmd.join("\u{1f}")
}

fn spawn_worker(cmd: &[String]) -> io::Result<PooledWorker> {
    let (exe, args) = cmd
        .split_first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty worker command"))?;
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    FleetStats::bump(&fleet_stats().spawned);
    Ok(PooledWorker {
        child,
        transport: PipeTransport::new(stdin, stdout),
        dispatches: 0,
        parked_at: Instant::now(),
    })
}

impl WorkerPool {
    /// Check out a warm worker for `cmd`, or spawn one cold. Idle
    /// members that died, aged out, or hit the dispatch cap are
    /// discarded along the way.
    pub fn checkout_worker(&self, cmd: &[String]) -> io::Result<PooledWorker> {
        let key = worker_key(cmd);
        loop {
            let candidate = {
                let mut shelves = self.workers.lock().unwrap();
                shelves.get_mut(&key).and_then(Vec::pop)
            };
            let Some(mut w) = candidate else { break };
            let stale = w.parked_at.elapsed() > MAX_IDLE_AGE || w.dispatches >= MAX_DISPATCHES;
            if stale {
                FleetStats::bump(&fleet_stats().recycled);
                w.discard();
                continue;
            }
            if !w.is_alive() {
                w.discard();
                continue;
            }
            FleetStats::bump(&fleet_stats().pool_hits);
            return Ok(w);
        }
        spawn_worker(cmd)
    }

    /// Park a healthy worker for the next dispatch (or retire it if the
    /// recycling policy says so).
    pub fn return_worker(&self, cmd: &[String], mut w: PooledWorker) {
        w.dispatches += 1;
        w.parked_at = Instant::now();
        if w.dispatches >= MAX_DISPATCHES {
            FleetStats::bump(&fleet_stats().recycled);
            w.discard();
            return;
        }
        let key = worker_key(cmd);
        let mut shelves = self.workers.lock().unwrap();
        let shelf = shelves.entry(key).or_default();
        if shelf.len() >= MAX_IDLE_PER_KEY {
            drop(shelves);
            FleetStats::bump(&fleet_stats().recycled);
            w.discard();
        } else {
            shelf.push(w);
        }
    }

    /// Check out a warm, liveness-probed connection to `addr`. `None`
    /// means no healthy idle connection — the caller connects cold (and
    /// should count a reconnect if it was replacing a dead one).
    pub fn checkout_peer(&self, addr: &str) -> Option<(TcpTransport, u64)> {
        loop {
            let candidate = {
                let mut shelves = self.peers.lock().unwrap();
                shelves.get_mut(addr).and_then(Vec::pop)
            };
            let p = candidate?;
            if p.parked_at.elapsed() > MAX_IDLE_AGE || p.dispatches >= MAX_DISPATCHES {
                FleetStats::bump(&fleet_stats().recycled);
                continue;
            }
            if !probe_live(p.transport.stream()) {
                // The peer closed (or died) while the connection idled.
                continue;
            }
            FleetStats::bump(&fleet_stats().pool_hits);
            return Some((p.transport, p.dispatches));
        }
    }

    /// Park a healthy peer connection. `dispatches` counts the jobs
    /// this connection has served (pass the value from checkout + 1).
    pub fn return_peer(&self, addr: &str, transport: TcpTransport, dispatches: u64) {
        if dispatches >= MAX_DISPATCHES {
            FleetStats::bump(&fleet_stats().recycled);
            return;
        }
        let mut shelves = self.peers.lock().unwrap();
        let shelf = shelves.entry(addr.to_string()).or_default();
        if shelf.len() >= MAX_IDLE_PER_KEY {
            FleetStats::bump(&fleet_stats().recycled);
        } else {
            shelf.push(IdlePeer {
                transport,
                dispatches,
                parked_at: Instant::now(),
            });
        }
    }

    /// Discard every pooled member (tests; also useful before fork-like
    /// operations). Workers are killed and reaped; peer connections
    /// drop closed.
    pub fn drain(&self) {
        let workers: Vec<PooledWorker> = {
            let mut shelves = self.workers.lock().unwrap();
            shelves.drain().flat_map(|(_, v)| v).collect()
        };
        for w in workers {
            w.discard();
        }
        self.peers.lock().unwrap().clear();
    }

    /// Number of idle members parked for `cmd` (tests/diagnostics).
    pub fn idle_workers(&self, cmd: &[String]) -> usize {
        self.workers
            .lock()
            .unwrap()
            .get(&worker_key(cmd))
            .map_or(0, Vec::len)
    }

    /// Number of idle connections parked for `addr` (tests/diagnostics).
    pub fn idle_peers(&self, addr: &str) -> usize {
        self.peers.lock().unwrap().get(addr).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn cat_cmd() -> Vec<String> {
        vec!["/bin/cat".into()]
    }

    #[test]
    fn checkout_return_reuses_the_same_subprocess() {
        let pool = WorkerPool::default();
        let w = pool.checkout_worker(&cat_cmd()).unwrap();
        let pid = w.child.id();
        pool.return_worker(&cat_cmd(), w);
        assert_eq!(pool.idle_workers(&cat_cmd()), 1);
        let w2 = pool.checkout_worker(&cat_cmd()).unwrap();
        assert_eq!(w2.child.id(), pid, "warm checkout must reuse the member");
        assert_eq!(w2.dispatches, 1);
        w2.discard();
        pool.drain();
    }

    #[test]
    fn dead_idle_workers_are_skipped_on_checkout() {
        let pool = WorkerPool::default();
        let mut dead = pool.checkout_worker(&cat_cmd()).unwrap();
        let _ = dead.child.kill();
        let _ = dead.child.wait();
        let dead_pid = dead.child.id();
        pool.return_worker(&cat_cmd(), dead);
        let fresh = pool.checkout_worker(&cat_cmd()).unwrap();
        assert_ne!(fresh.child.id(), dead_pid, "dead member must be discarded");
        fresh.discard();
        pool.drain();
    }

    #[test]
    fn dispatch_cap_retires_members() {
        let pool = WorkerPool::default();
        let mut w = pool.checkout_worker(&cat_cmd()).unwrap();
        w.dispatches = MAX_DISPATCHES - 1;
        pool.return_worker(&cat_cmd(), w);
        assert_eq!(
            pool.idle_workers(&cat_cmd()),
            0,
            "member at the dispatch cap is retired, not parked"
        );
        pool.drain();
    }

    #[test]
    fn idle_shelf_is_bounded() {
        let pool = WorkerPool::default();
        let members: Vec<_> = (0..MAX_IDLE_PER_KEY + 2)
            .map(|_| pool.checkout_worker(&cat_cmd()).unwrap())
            .collect();
        for w in members {
            pool.return_worker(&cat_cmd(), w);
        }
        assert_eq!(pool.idle_workers(&cat_cmd()), MAX_IDLE_PER_KEY);
        pool.drain();
    }

    #[test]
    fn peer_checkout_probes_liveness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepted = std::sync::Arc::new(Mutex::new(Vec::new()));
        let keep = accepted.clone();
        let addr2 = addr.clone();
        let server = std::thread::spawn(move || {
            for stream in listener.incoming().take(2) {
                keep.lock().unwrap().push(stream.unwrap());
            }
            addr2
        });
        let pool = WorkerPool::default();
        assert!(pool.checkout_peer(&addr).is_none(), "cold pool misses");
        let t = TcpTransport::new(std::net::TcpStream::connect(&addr).unwrap());
        pool.return_peer(&addr, t, 1);
        assert_eq!(pool.idle_peers(&addr), 1);
        let (live, dispatches) = pool.checkout_peer(&addr).expect("live idle peer");
        assert_eq!(dispatches, 1);
        drop(live);
        // Park a connection, then close the server side: the probe must
        // reject it on the next checkout.
        let t = TcpTransport::new(std::net::TcpStream::connect(&addr).unwrap());
        let _ = server.join().unwrap();
        accepted.lock().unwrap().clear(); // server-side FIN on both
        pool.return_peer(&addr, t, 1);
        assert!(
            pool.checkout_peer(&addr).is_none(),
            "dead idle peer must be probed out"
        );
    }
}
