//! Hand-rolled compact binary encoding for the executor's wire types.
//!
//! The offline build vendors a no-op `serde` shim, so everything that
//! crosses a process boundary — task manifests, per-slot results, worker
//! frames — is encoded with this tiny explicit codec instead: fixed-width
//! little-endian integers, `f64` as raw IEEE-754 bits (so results round-trip
//! **bit-identically**), and length-prefixed byte strings. Frames on a
//! stream are `u32` length + body.

use std::io::{self, Read, Write};

/// Decoding failure: truncated buffer, bad tag, oversized frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// A decode error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }
}

/// Frames larger than this are rejected on read — a corrupted length prefix
/// must not look like a multi-gigabyte allocation request.
pub const MAX_FRAME_LEN: usize = 256 << 20;

// --- writers (infallible; append to a Vec) -------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its raw bit pattern (exact round-trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

/// Append a length-prefixed `f64` vector (the observation-vector
/// convention used by portable adaptive jobs).
pub fn put_f64s(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

// --- reader --------------------------------------------------------------

/// Cursor over an encoded buffer; every `get_*` checks bounds.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole buffer was consumed (catches layout drift
    /// between encoder and decoder versions).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::new(format!(
                "{} trailing byte(s) after decode",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "need {n} byte(s), have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| WireError::new("string field is not UTF-8"))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.get_u32()? as usize;
        if self.remaining() < n.saturating_mul(8) {
            return Err(WireError::new(format!("f64 vector of {n} overruns buffer")));
        }
        (0..n).map(|_| self.get_f64()).collect()
    }
}

/// Decode a whole buffer as one length-prefixed `f64` vector (the portable
/// observation-vector convention; see [`put_f64s`]).
pub fn decode_f64s(buf: &[u8]) -> Result<Vec<f64>, WireError> {
    let mut r = Reader::new(buf);
    let v = r.get_f64s()?;
    r.finish()?;
    Ok(v)
}

// --- framing -------------------------------------------------------------

/// Write one length-prefixed frame (`u32` LE length, then the body).
///
/// Enforces the same [`MAX_FRAME_LEN`] cap readers apply: an oversized
/// body errors here, at the producer, instead of being shipped only for
/// the peer to reject it (or, past `u32::MAX`, silently truncating the
/// length prefix and corrupting the stream).
pub fn write_frame(w: &mut dyn Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF **before** the
/// length prefix; EOF mid-frame is an error (a peer died mid-write).
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 123_456);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_str(&mut buf, "grüß");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        // Bit-exact, sign of zero and NaN payload included.
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_str().unwrap(), "grüß");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut r = Reader::new(&buf[..5]);
        assert!(r.get_u64().is_err());
        // Oversized inner length prefix.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000);
        let mut r = Reader::new(&buf);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u8(&mut buf, 9);
        let mut r = Reader::new(&buf);
        let _ = r.get_u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn f64_vector_round_trips() {
        let v = [1.5, -0.0, f64::INFINITY, 1e-300];
        let mut buf = Vec::new();
        put_f64s(&mut buf, &v);
        let back = decode_f64s(&buf).unwrap();
        assert_eq!(back.len(), 4);
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn frames_round_trip_and_eof_cases() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
        // EOF mid-prefix and mid-body are hard errors.
        let mut r = &stream[..2];
        assert!(read_frame(&mut r).is_err());
        let mut r = &stream[..6];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn frame_length_cap_enforced() {
        let huge = (u32::MAX - 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn write_frame_rejects_oversized_bodies() {
        // The producer enforces the same cap the reader applies; nothing
        // (not even the length prefix) reaches the stream.
        let body = vec![0u8; MAX_FRAME_LEN + 1];
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &body).is_err());
        assert!(out.is_empty());
    }
}
